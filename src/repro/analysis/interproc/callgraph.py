"""mochi-deps project index and call graph.

The whole-program layer starts here: every Python file under the lint
roots is parsed once (the engine's shared parse cache hands the trees
over) and indexed into modules, classes, and functions with stable
qualified names (``module.Class.method`` / ``module.func``).  A linking
pass then resolves every call site it can prove -- bare names, imports,
``self.method`` through the project class hierarchy, ``super()``,
constructors -- into edges of two kinds:

* ``call`` -- a plain invocation: the callee body runs now;
* ``delegate`` -- ``yield from callee(...)``: the callee is a generator
  whose body runs inline under the caller's ULT.

A plain (non-``yield from``) call to a *generator* function only builds
the generator object, so it produces **no** edge -- running it is the
kernel's (or ``parallel``'s) business, not the caller's frame.

Soundness caveats are counted, never silently dropped:
``getattr(obj, name)(...)`` call edges are skipped and tallied in
:class:`CallGraphStats` so ``--stats`` can report exactly how much of
the program the analysis refused to reason about.

Everything is walked and emitted in sorted order; two runs over the same
tree produce byte-identical structures.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..rules import FunctionNode, dotted_name, last_attr, own_body_walk

__all__ = [
    "CallEdge",
    "CallGraphStats",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_project",
    "module_name_for",
]


@dataclass
class CallEdge:
    """One resolved call site inside a function body."""

    callee: str  #: qualified name of the target function
    line: int
    kind: str  #: ``call`` or ``delegate`` (yield from)
    display: str  #: source spelling of the target, for messages


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: str
    path: str
    name: str
    node: ast.AST
    cls: Optional["ClassInfo"] = None
    is_generator: bool = False
    edges: list[CallEdge] = field(default_factory=list)

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition in the project."""

    qualname: str
    module: str
    path: str
    name: str
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: simple ``NAME = <expr>`` statements in the class body.
    class_attrs: dict[str, ast.expr] = field(default_factory=dict)

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str
    path: str
    tree: ast.Module
    #: ``import x.y as z`` -> {"z": "x.y"}
    imports: dict[str, str] = field(default_factory=dict)
    #: ``from x import y as z`` -> {"z": "x.y"}
    import_froms: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: names bound at module level -> first binding line.
    module_globals: dict[str, int] = field(default_factory=dict)


@dataclass
class CallGraphStats:
    """Coverage accounting for the linking pass."""

    files: int = 0
    functions: int = 0
    classes: int = 0
    resolved_edges: int = 0
    #: ``getattr(...)(...)`` invocations: conservatively skipped.
    dynamic_getattr_calls: int = 0
    #: plain calls to project generator functions (not executed here).
    generator_constructions: int = 0


def module_name_for(path: str) -> str:
    """Dotted module name derived from the filesystem package layout.

    Ascends from the file while an ``__init__.py`` marks the directory
    as a package, so ``src/repro/yokan/provider.py`` becomes
    ``repro.yokan.provider`` and a fixture tree rooted at a plain
    directory keeps its own short names.
    """
    path = os.path.normpath(path)
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts = [] if stem == "__init__" else [stem]
    while directory and os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.insert(0, pkg)
    return ".".join(parts) if parts else stem


def _package_of(module: str) -> str:
    """The package a module lives in (itself when it is a package)."""
    return module.rsplit(".", 1)[0] if "." in module else ""


class ProjectIndex:
    """All modules of one lint run, with name resolution across them."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.stats = CallGraphStats()

    # -- indexing ------------------------------------------------------
    def add_module(self, path: str, tree: ast.Module) -> ModuleInfo:
        name = module_name_for(path)
        mod = ModuleInfo(name=name, path=path, tree=tree)
        self._scan_imports(mod)
        for node in tree.body:
            if isinstance(node, FunctionNode):
                self._add_function(mod, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(mod, node)
            else:
                for target in _binding_targets(node):
                    mod.module_globals.setdefault(target, node.lineno)
        self.modules[name] = mod
        self.stats.files += 1
        return mod

    def _scan_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mod.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        mod.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_import_base(mod, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    mod.import_froms[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    @staticmethod
    def _resolve_import_base(mod: ModuleInfo, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        # Relative import: ``from ..core import x`` inside repro.yokan.provider
        # resolves against the containing package (repro.yokan), one level up
        # per extra dot.
        package = _package_of(mod.name)
        parts = package.split(".") if package else []
        drop = node.level - 1
        if drop > len(parts):
            return None
        base_parts = parts[: len(parts) - drop]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    def _add_function(
        self, mod: ModuleInfo, node: ast.AST, cls: Optional[ClassInfo]
    ) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        qualname = f"{cls.qualname}.{name}" if cls else f"{mod.name}.{name}"
        info = FunctionInfo(
            qualname=qualname,
            module=mod.name,
            path=mod.path,
            name=name,
            node=node,
            cls=cls,
            is_generator=_is_generator(node),
        )
        if cls is not None:
            cls.methods[name] = info
        else:
            mod.functions[name] = info
        self.functions[qualname] = info
        self.stats.functions += 1
        return info

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        cls = ClassInfo(
            qualname=f"{mod.name}.{node.name}",
            module=mod.name,
            path=mod.path,
            name=node.name,
            node=node,
            base_names=[b for b in (dotted_name(base) for base in node.bases) if b],
        )
        for item in node.body:
            if isinstance(item, FunctionNode):
                self._add_function(mod, item, cls=cls)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        cls.class_attrs[target.id] = item.value
            elif isinstance(item, ast.AnnAssign):
                if isinstance(item.target, ast.Name) and item.value is not None:
                    cls.class_attrs[item.target.id] = item.value
        mod.classes[node.name] = cls
        self.classes[cls.qualname] = cls
        self.stats.classes += 1
        return cls

    # -- resolution ----------------------------------------------------
    def resolve_name(self, mod: ModuleInfo, dotted: str):
        """Resolve ``dotted`` as seen from ``mod``.

        Returns a :class:`FunctionInfo`, :class:`ClassInfo`,
        :class:`ModuleInfo`, or ``None`` when the name leaves the
        project (stdlib, third-party, builtins).
        """
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        if head in mod.import_froms:
            return self._resolve_absolute(mod.import_froms[head].split(".") + rest)
        if head in mod.imports:
            return self._resolve_absolute(mod.imports[head].split(".") + rest)
        if not rest:
            if head in mod.functions:
                return mod.functions[head]
            if head in mod.classes:
                return mod.classes[head]
            return self.modules.get(head)
        if head in mod.classes:
            return self._resolve_into_class(mod.classes[head], rest)
        return self._resolve_absolute(parts)

    def _resolve_absolute(self, parts: list[str]):
        # Longest module prefix wins, then descend into its namespace.
        for split in range(len(parts), 0, -1):
            mod = self.modules.get(".".join(parts[:split]))
            if mod is None:
                continue
            rest = parts[split:]
            if not rest:
                return mod
            if rest[0] in mod.functions and len(rest) == 1:
                return mod.functions[rest[0]]
            if rest[0] in mod.classes:
                if len(rest) == 1:
                    return mod.classes[rest[0]]
                return self._resolve_into_class(mod.classes[rest[0]], rest[1:])
            # Re-exported name: follow one ``from x import y`` hop.
            if rest[0] in mod.import_froms:
                return self._resolve_absolute(
                    mod.import_froms[rest[0]].split(".") + rest[1:]
                )
            return None
        return None

    def _resolve_into_class(self, cls: ClassInfo, rest: list[str]):
        if len(rest) != 1:
            return None
        method = self.find_method(cls, rest[0])
        if method is not None:
            return method
        return None

    def mro(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        """Approximate MRO: depth-first over project-resolvable bases."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            yield current
            mod = self.modules.get(current.module)
            if mod is None:
                continue
            bases = []
            for base_name in current.base_names:
                resolved = self.resolve_name(mod, base_name)
                if isinstance(resolved, ClassInfo):
                    bases.append(resolved)
            stack = bases + stack

    def find_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        for ancestor in self.mro(cls):
            if name in ancestor.methods:
                return ancestor.methods[name]
        return None

    def find_class_attr(self, cls: ClassInfo, name: str) -> Optional[ast.expr]:
        for ancestor in self.mro(cls):
            if name in ancestor.class_attrs:
                return ancestor.class_attrs[name]
        return None

    # -- linking -------------------------------------------------------
    def link(self) -> None:
        """Resolve call edges for every function, in qualname order."""
        for qualname in sorted(self.functions):
            self._link_function(self.functions[qualname])

    def _link_function(self, func: FunctionInfo) -> None:
        mod = self.modules[func.module]
        delegated: set[int] = set()
        for node in own_body_walk(func.node):
            if isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call):
                delegated.add(id(node.value))
        edges: list[CallEdge] = []
        for node in own_body_walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            target = self._resolve_call_target(func, mod, node)
            if target is None:
                continue
            callee, display = target
            is_delegate = id(node) in delegated
            if callee.is_generator and not is_delegate:
                # Builds the generator without running it: no edge.
                self.stats.generator_constructions += 1
                continue
            edges.append(
                CallEdge(
                    callee=callee.qualname,
                    line=node.lineno,
                    kind="delegate" if is_delegate else "call",
                    display=display,
                )
            )
            self.stats.resolved_edges += 1
        edges.sort(key=lambda e: (e.line, e.callee))
        func.edges = edges

    def _resolve_call_target(
        self, func: FunctionInfo, mod: ModuleInfo, node: ast.Call
    ) -> Optional[tuple[FunctionInfo, str]]:
        callee_expr = node.func
        # getattr(obj, name)(...) -- a dynamic edge we refuse to guess.
        if (
            isinstance(callee_expr, ast.Call)
            and isinstance(callee_expr.func, ast.Name)
            and callee_expr.func.id == "getattr"
        ):
            self.stats.dynamic_getattr_calls += 1
            return None
        # super().method(...)
        if (
            isinstance(callee_expr, ast.Attribute)
            and isinstance(callee_expr.value, ast.Call)
            and isinstance(callee_expr.value.func, ast.Name)
            and callee_expr.value.func.id == "super"
            and func.cls is not None
        ):
            ancestors = list(self.mro(func.cls))[1:]
            for ancestor in ancestors:
                if callee_expr.attr in ancestor.methods:
                    return (
                        ancestor.methods[callee_expr.attr],
                        f"super().{callee_expr.attr}",
                    )
            return None
        dotted = dotted_name(callee_expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and func.cls is not None:
            if len(parts) == 2:
                method = self.find_method(func.cls, parts[1])
                if method is not None:
                    return method, dotted
            return None
        resolved = self.resolve_name(mod, dotted)
        if isinstance(resolved, FunctionInfo):
            return resolved, dotted
        if isinstance(resolved, ClassInfo):
            init = self.find_method(resolved, "__init__")
            if init is not None:
                return init, f"{dotted}()"
        return None


def _binding_targets(node: ast.AST) -> Iterator[str]:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield target.id
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(node.target, ast.Name):
            yield node.target.id


def _is_generator(func: ast.AST) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in own_body_walk(func)
    )


def build_project(parsed: list[tuple[str, ast.Module]]) -> ProjectIndex:
    """Index + link the whole program from ``(path, tree)`` pairs."""
    index = ProjectIndex()
    for path, tree in sorted(parsed, key=lambda item: item[0]):
        index.add_module(path, tree)
    index.link()
    return index
