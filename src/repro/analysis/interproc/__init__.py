"""mochi-deps: whole-program interprocedural analysis.

This package is the ``--interproc`` layer of mochi-lint.  The per-file
AST rules see one file at a time; everything here sees the program:

* :mod:`callgraph` -- project index + call graph (``call`` and
  ``delegate`` edges, dynamic sites counted, never guessed);
* :mod:`effects` -- effect-inference fixpoint (*blocks*, *suspends*,
  *is-ULT*, *acquires-lock*, *mutates-shared*) feeding MCH014/MCH015;
* :mod:`contracts` -- RPC contract checker diffing every
  ``register_rpc`` against every ``_forward`` (MCH050-MCH053);
* :mod:`partition` -- cross-component shared-state writes that break
  under process sharding (MCH060 + allowlist);
* :mod:`migration` -- REMI migration snapshot coverage (MCH061).

:func:`run_interproc` is the one entry point; the engine hands it the
``(path, tree, source)`` triples it already parsed, so the whole-program
layer costs one extra traversal, not one extra parse.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Iterable, Optional

from ..findings import Finding
from ..suppress import parse_suppressions
from . import rulesinfo  # noqa: F401  -- registers MCH014/015/05x/06x
from .callgraph import ProjectIndex, build_project
from .contracts import build_contracts, check_contracts
from .effects import (
    EffectAnalysis,
    check_deep_blocking,
    check_lock_across_callee_yield,
)
from .migration import check_migration_coverage
from .partition import check_partition_safety

__all__ = ["run_interproc", "INTERPROC_RULE_IDS"]

#: Every rule id owned by this layer, in catalog order.
INTERPROC_RULE_IDS = (
    "MCH014",
    "MCH015",
    "MCH050",
    "MCH051",
    "MCH052",
    "MCH053",
    "MCH060",
    "MCH061",
)


def run_interproc(
    parsed: list[tuple[str, ast.Module, str]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    allowlist_text: Optional[str] = None,
    allowlist_path: str = "partition-allowlist.txt",
    index: Optional[ProjectIndex] = None,
    analysis: Optional[EffectAnalysis] = None,
) -> tuple[list[Finding], dict]:
    """Run every whole-program pass over ``(path, tree, source)`` triples.

    Returns ``(findings, stats)``.  Findings honor the same inline
    suppression comments as the per-file rules and are sorted by
    ``(path, line, rule_id, message)``; ``stats`` reports what the
    analysis covered and what it conservatively refused to guess.

    ``index``/``analysis`` may carry a prebuilt project index and effect
    fixpoint (the engine shares them with the ``--flow`` layer so the
    two whole-program passes pay for one traversal).
    """
    if index is None:
        index = build_project([(path, tree) for path, tree, _ in parsed])
    if analysis is None:
        analysis = EffectAnalysis(index)
    contracts = build_contracts(index)

    findings: list[Finding] = []
    findings.extend(check_deep_blocking(index, analysis))
    findings.extend(check_lock_across_callee_yield(index, analysis))
    findings.extend(check_contracts(index, contracts))
    findings.extend(
        check_partition_safety(
            index,
            allowlist_text=allowlist_text,
            allowlist_path=allowlist_path,
        )
    )
    findings.extend(check_migration_coverage(index))

    wanted = set(select) if select else None
    dropped = set(ignore) if ignore else set()
    findings = [
        f
        for f in findings
        if (wanted is None or f.rule_id in wanted) and f.rule_id not in dropped
    ]

    suppressions = {
        path: parse_suppressions(source, path) for path, _, source in parsed
    }
    kept = []
    for finding in findings:
        supp = suppressions.get(finding.path)
        if supp is not None and supp.is_suppressed(finding):
            continue
        kept.append(replace(finding, source="interproc"))
    kept.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))

    stats = {
        "files": index.stats.files,
        "functions": index.stats.functions,
        "classes": index.stats.classes,
        "resolved_edges": index.stats.resolved_edges,
        "dynamic_getattr_calls": index.stats.dynamic_getattr_calls,
        "generator_constructions": index.stats.generator_constructions,
        "rpc_registrations": contracts.stats.registrations,
        "rpc_forwards": contracts.stats.forwards,
        "dynamic_registrations": contracts.stats.dynamic_registrations,
        "dynamic_registrations_unattributed": (
            contracts.stats.dynamic_registrations_unattributed
        ),
        "dynamic_forwards": contracts.stats.dynamic_forwards,
        "dynamic_forwards_unattributed": (
            contracts.stats.dynamic_forwards_unattributed
        ),
        "dead_handler_checked": contracts.stats.dead_handler_checked,
    }
    return kept, stats
