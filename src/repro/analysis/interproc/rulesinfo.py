"""Rule registrations for the whole-program (mochi-deps) passes.

These register with ``check=None``: the ids exist in the catalog, the
suppression machinery, and ``--list-rules``, but the checks run from
the interprocedural driver (one pass over the whole project), not from
the per-file AST walk.
"""

from __future__ import annotations

from ..findings import Severity
from ..registry import (
    GROUP_CONTRACTS,
    GROUP_PARTITION,
    GROUP_SCHEDULING,
    RuleInfo,
    register,
)

DEEP_BLOCKING = RuleInfo(
    id="MCH014",
    name="blocking-call-reachable-from-ult",
    group=GROUP_SCHEDULING,
    severity=Severity.ERROR,
    summary=(
        "ULT body reaches a real blocking call through the call graph "
        "(any depth); reported with the full call chain"
    ),
    rationale=(
        "MCH010 sees blocking primitives spelled in the ULT body and one "
        "hop into same-file helpers; a blocking sleep three calls down "
        "stalls the execution stream just as hard, and the paper's "
        "breadcrumb design (one blocked ES starves every ULT mapped to "
        "it) makes that a whole-service outage, not a local slowdown"
    ),
)

LOCK_ACROSS_CALLEE_YIELD = RuleInfo(
    id="MCH015",
    name="lock-held-across-callee-suspension",
    group=GROUP_SCHEDULING,
    severity=Severity.ERROR,
    summary=(
        "mutex held across a `yield from` whose callee suspends the ULT "
        "somewhere inside its own body"
    ),
    rationale=(
        "MCH011 catches `yield` under a held lock in the holder's own "
        "body; delegating to a helper that suspends is the same bug with "
        "one stack frame of camouflage -- every other ULT contending for "
        "the mutex deadlocks against a parked holder"
    ),
)

ORPHANED_RPC_CALL = RuleInfo(
    id="MCH050",
    name="orphaned-rpc-call",
    group=GROUP_CONTRACTS,
    severity=Severity.ERROR,
    summary=(
        "client forwards an operation no provider in the tree registers"
    ),
    rationale=(
        "a typo'd or stale RPC name fails only at runtime, as a hung or "
        "erroring forward on the first call; diffing both ends of every "
        "register_rpc/_forward pair catches it at lint time"
    ),
)

HANDLER_SHAPE = RuleInfo(
    id="MCH051",
    name="rpc-handler-shape",
    group=GROUP_CONTRACTS,
    severity=Severity.ERROR,
    summary=(
        "registration names a missing handler, a non-generator, or a "
        "handler with the wrong arity (handlers are called as (self, ctx))"
    ),
    rationale=(
        "the kernel drives handlers as generators with a single request "
        "context; a plain function or wrong arity raises inside the RPC "
        "dispatch path where the traceback points at the kernel, not the "
        "broken provider"
    ),
)

RESPONSE_SHAPE = RuleInfo(
    id="MCH052",
    name="rpc-response-shape",
    group=GROUP_CONTRACTS,
    severity=Severity.ERROR,
    summary=(
        "client binds the result of an RPC whose handlers never return a "
        "value (the caller always receives None)"
    ),
    rationale=(
        "`x = yield from self._forward(...)` against a handler with no "
        "`return value` silently binds None; the failure surfaces as an "
        "AttributeError far from the contract mismatch that caused it"
    ),
)

DEAD_HANDLER = RuleInfo(
    id="MCH053",
    name="dead-rpc-handler",
    group=GROUP_CONTRACTS,
    severity=Severity.WARNING,
    summary=(
        "registered handler no client in the tree ever forwards to "
        "(checked only when every forward in the tree is attributable)"
    ),
    rationale=(
        "dead wire surface is untested wire surface: a handler nothing "
        "calls drifts out of contract silently and becomes a trap for "
        "the next client that does call it"
    ),
)

CROSS_PARTITION_MUTATION = RuleInfo(
    id="MCH060",
    name="cross-partition-mutation",
    group=GROUP_PARTITION,
    severity=Severity.ERROR,
    summary=(
        "module/class state mutated from a component that does not own "
        "it, without an RPC edge (allowlist: partition-allowlist.txt)"
    ),
    rationale=(
        "ROADMAP item 1 shards the simulation across OS processes; a "
        "cross-component write that works in one address space becomes "
        "silent state divergence the day partitions stop sharing memory "
        "-- the process-isolation discipline MPI malleability systems "
        "must enforce when ranks are reshaped"
    ),
)

MIGRATION_COVERAGE = RuleInfo(
    id="MCH061",
    name="migration-snapshot-coverage",
    group=GROUP_PARTITION,
    severity=Severity.WARNING,
    summary=(
        "REMI-migratable provider mutates instance state its migrate() "
        "path never reads; a migration drops it"
    ),
    rationale=(
        "REMI moves a provider by serializing what migrate() touches and "
        "rebuilding elsewhere; runtime state outside that path survives "
        "every test that doesn't migrate and vanishes the first time "
        "production does -- the exact risk ROADMAP item 4 must retire"
    ),
)

_ALL = (
    DEEP_BLOCKING,
    LOCK_ACROSS_CALLEE_YIELD,
    ORPHANED_RPC_CALL,
    HANDLER_SHAPE,
    RESPONSE_SHAPE,
    DEAD_HANDLER,
    CROSS_PARTITION_MUTATION,
    MIGRATION_COVERAGE,
)

for _info in _ALL:
    register(_info)
