"""mochi-lint: Mochi-aware static analysis + runtime sanitizing.

The reproduction rests on invariants no off-the-shelf tool checks: code
under the simulated Margo runtime must never touch wall-clock time,
unseeded randomness, or real blocking I/O; RPC handlers must always
respond; ULTs must not suspend while holding a mutex; and configuration
documents must cross-reference consistently.  This package enforces all
of that three ways:

* a static AST pass (:mod:`repro.analysis.rules`, ``repro-lint`` /
  ``python -m repro.analysis``);
* a configuration cross-validator (:mod:`repro.analysis.config_check`),
  reused by ``bedrock.boot`` so files and live boots agree;
* a runtime sanitizer (:mod:`repro.analysis.sanitize`,
  ``REPRO_SANITIZE=1``) asserting the invariants the AST cannot prove,
  under the same ``MCH0xx`` rule ids.

This module deliberately does not import :mod:`.config_check` at import
time: that module depends on the margo/bedrock packages, which in turn
import :mod:`.sanitize` from here -- importing it lazily keeps the
package importable from both directions.
"""

from __future__ import annotations

from . import rules  # noqa: F401 - registers the static rule catalog
from .race import hooks as _race_hooks  # noqa: F401 - registers MCH03x/MCH04x
from .engine import lint_file, lint_paths, lint_source
from .findings import Finding, Severity, format_findings
from .registry import RuleInfo, rule_catalog
from .suppress import parse_suppressions

__all__ = [
    "Finding",
    "Severity",
    "RuleInfo",
    "format_findings",
    "lint_source",
    "lint_file",
    "lint_paths",
    "parse_suppressions",
    "rule_catalog",
]
