"""Static Margo/Bedrock configuration cross-validator (MCH02x).

Checks a Listing-2 (Margo) or Listing-3 (Bedrock) JSON document without
booting a process: pool/xstream references resolve, names are unique,
provider dependencies are resolvable in boot order and acyclic, and
declared libraries actually provide the types they claim.

Two consumers:

* the mochi-lint CLI / CI gate validate config *files* on disk
  (:func:`validate_config_file`);
* :func:`repro.bedrock.boot.boot_process` runs :func:`check_boot_config`
  before touching the cluster, so a bad document fails with the same
  exception types the runtime would raise -- just earlier and with the
  whole document checked statically first.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..bedrock.errors import BedrockConfigError, DependencyError, ProviderConflictError
from ..bedrock.module import ModuleError, resolve_library
from ..margo.config import DEFAULT_POOL, MargoConfig
from ..margo.errors import ConfigError
from .findings import Finding, Severity
from .registry import (
    GROUP_CONFIG,
    RuleInfo,
    register,
)

__all__ = [
    "validate_margo_doc",
    "validate_bedrock_doc",
    "validate_config_doc",
    "validate_config_file",
    "check_boot_config",
]

DANGLING_REF = RuleInfo(
    id="MCH020",
    name="config-dangling-reference",
    group=GROUP_CONFIG,
    severity=Severity.ERROR,
    summary="config references a pool that is not defined (or never served)",
    rationale=(
        "an xstream scheduler, progress_pool, rpc_pool, or provider that "
        "names an undefined pool boots into a runtime error (or a pool "
        "no xstream drains, which wedges every ULT pushed to it); the "
        "reference graph is fully checkable before any process exists"
    ),
)

DUPLICATE_NAME = RuleInfo(
    id="MCH021",
    name="config-duplicate-name",
    group=GROUP_CONFIG,
    severity=Severity.ERROR,
    summary="duplicate pool / xstream / provider name in one document",
    rationale=(
        "names are the join keys of the whole configuration: a duplicate "
        "makes every later reference ambiguous, and Margo/Bedrock resolve "
        "it arbitrarily by construction order -- a classic silent "
        "misconfiguration"
    ),
)

DEPENDENCY_ERROR = RuleInfo(
    id="MCH022",
    name="config-dependency-error",
    group=GROUP_CONFIG,
    severity=Severity.ERROR,
    summary="provider dependency unresolvable, out of boot order, or cyclic",
    rationale=(
        "Bedrock starts providers in list order; a dependency on a "
        "provider declared later (or transitively on itself) can never "
        "resolve, and an unknown library means the type can never be "
        "instantiated"
    ),
)

MALFORMED = RuleInfo(
    id="MCH023",
    name="config-malformed",
    group=GROUP_CONFIG,
    severity=Severity.ERROR,
    summary="config document is structurally invalid",
    rationale=(
        "unknown keys and wrong shapes are silently fatal at boot time; "
        "catching them on the file keeps CI failures attached to the "
        "config that caused them"
    ),
)

register(DANGLING_REF)
register(DUPLICATE_NAME)
register(DEPENDENCY_ERROR)
register(MALFORMED)


def _finding(info: RuleInfo, path: str, message: str, kind: str) -> Finding:
    return Finding(
        rule_id=info.id,
        severity=info.severity,
        path=path,
        line=0,
        message=message,
        source="config",
        context={"kind": kind},
    )


def _duplicates(names: list[str]) -> list[str]:
    seen: set[str] = set()
    dupes: list[str] = []
    for name in names:
        if name in seen and name not in dupes:
            dupes.append(name)
        seen.add(name)
    return dupes


def _margo_names(doc: dict[str, Any]) -> tuple[list[str], list[dict[str, Any]]]:
    """(pool names, xstream docs) with the same defaulting as MargoConfig."""
    argobots = doc.get("argobots") or {}
    if not isinstance(argobots, dict):
        return [DEFAULT_POOL], []
    pool_docs = argobots.get("pools") or []
    pools = [p["name"] for p in pool_docs if isinstance(p, dict) and "name" in p]
    if not pools:
        pools = [DEFAULT_POOL]
    xstreams = [x for x in (argobots.get("xstreams") or []) if isinstance(x, dict)]
    return pools, xstreams


def validate_margo_doc(doc: Any, path: str = "<margo>") -> list[Finding]:
    """Cross-validate a Listing-2 Margo document; returns all findings."""
    findings: list[Finding] = []
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as err:
            return [_finding(MALFORMED, path, f"invalid JSON: {err}", "margo")]
    if doc is None:
        doc = {}
    if not isinstance(doc, dict):
        return [
            _finding(
                MALFORMED,
                path,
                f"margo config must be an object, got {type(doc).__name__}",
                "margo",
            )
        ]
    pools, xstream_docs = _margo_names(doc)
    for name in _duplicates(pools):
        findings.append(
            _finding(DUPLICATE_NAME, path, f"duplicate pool name {name!r}", "margo")
        )
    xstream_names = [x["name"] for x in xstream_docs if "name" in x]
    for name in _duplicates(xstream_names):
        findings.append(
            _finding(DUPLICATE_NAME, path, f"duplicate xstream name {name!r}", "margo")
        )
    known = set(pools)
    served: set[str] = set()
    for xstream in xstream_docs:
        sched = xstream.get("scheduler") or {}
        sched_pools = sched.get("pools", []) if isinstance(sched, dict) else []
        for pool in sched_pools:
            served.add(pool)
            if pool not in known:
                findings.append(
                    _finding(
                        DANGLING_REF,
                        path,
                        f"xstream {xstream.get('name', '?')!r} references "
                        f"undefined pool {pool!r}",
                        "margo",
                    )
                )
    if not xstream_docs:
        # The implicit default xstream serves only the first pool (the
        # same defaulting MargoConfig.from_json applies).
        served = {pools[0]}
    unserved = sorted(known - served)
    for pool in unserved:
        findings.append(
            _finding(
                DANGLING_REF,
                path,
                f"pool {pool!r} is not served by any xstream "
                "(ULTs pushed to it would never run)",
                "margo",
            )
        )
    for key in ("progress_pool", "rpc_pool"):
        ref = doc.get(key, pools[0])
        if ref not in known:
            findings.append(
                _finding(
                    DANGLING_REF,
                    path,
                    f"{key} {ref!r} is not a defined pool",
                    "margo",
                )
            )
    # Structural validation (unknown keys, bad per-object shapes) is the
    # runtime parser's: reuse it so the two can never disagree.
    if not findings:
        try:
            MargoConfig.from_json(doc)
        except ConfigError as err:
            findings.append(_finding(MALFORMED, path, str(err), "margo"))
    return findings


def _validate_providers(
    providers: Any,
    libraries: dict[str, Any],
    pool_names: set[str],
    path: str,
) -> list[Finding]:
    findings: list[Finding] = []
    if not isinstance(providers, list):
        return [_finding(MALFORMED, path, "'providers' must be a list", "unknown-keys")]
    seen_names: list[str] = []
    seen_ids: set[tuple[str, int]] = set()
    dep_graph: dict[str, list[str]] = {}
    for index, entry in enumerate(providers):
        if not isinstance(entry, dict) or "name" not in entry or "type" not in entry:
            findings.append(
                _finding(
                    MALFORMED,
                    path,
                    f"provider entry #{index} must be an object with "
                    f"'name' and 'type': {entry!r}",
                    "unknown-keys",
                )
            )
            continue
        name, type_name = entry["name"], entry["type"]
        if name in seen_names:
            findings.append(
                _finding(
                    DUPLICATE_NAME,
                    path,
                    f"provider {name!r} already exists",
                    "duplicate-provider",
                )
            )
        if type_name not in libraries:
            findings.append(
                _finding(
                    DEPENDENCY_ERROR,
                    path,
                    f"no module loaded for type {type_name!r} "
                    f"(declared libraries: {sorted(libraries)})",
                    "library",
                )
            )
        provider_id = int(entry.get("provider_id", 1))
        if (type_name, provider_id) in seen_ids:
            findings.append(
                _finding(
                    DUPLICATE_NAME,
                    path,
                    f"(type={type_name}, provider_id={provider_id}) "
                    "already in use",
                    "duplicate-provider",
                )
            )
        seen_ids.add((type_name, provider_id))
        pool = entry.get("pool")
        if pool is not None and pool not in pool_names:
            findings.append(
                _finding(
                    DANGLING_REF,
                    path,
                    f"provider {name!r} references unknown pool {pool!r}",
                    "provider-pool",
                )
            )
        deps = entry.get("dependencies") or {}
        local_deps: list[str] = []
        for dep_name, spec in deps.items() if isinstance(deps, dict) else ():
            if isinstance(spec, str):
                local_deps.append(spec)
                if spec not in seen_names:
                    later = any(
                        isinstance(e, dict) and e.get("name") == spec
                        for e in providers[index + 1 :]
                    )
                    if later:
                        findings.append(
                            _finding(
                                DEPENDENCY_ERROR,
                                path,
                                f"provider {name!r} depends on {spec!r}, which "
                                "is declared later; Bedrock starts providers "
                                "in list order",
                                "dependency",
                            )
                        )
                    else:
                        findings.append(
                            _finding(
                                DEPENDENCY_ERROR,
                                path,
                                f"provider {name!r} depends on unknown local "
                                f"provider {spec!r}",
                                "dependency",
                            )
                        )
            elif isinstance(spec, dict):
                missing = {"type", "address", "provider_id"} - set(spec)
                if missing:
                    findings.append(
                        _finding(
                            DEPENDENCY_ERROR,
                            path,
                            f"remote dependency {dep_name!r} of {name!r} "
                            f"missing {sorted(missing)}",
                            "dependency",
                        )
                    )
                elif spec["type"] not in libraries:
                    findings.append(
                        _finding(
                            DEPENDENCY_ERROR,
                            path,
                            f"remote dependency {dep_name!r} of {name!r} has "
                            f"unloaded type {spec['type']!r}",
                            "dependency",
                        )
                    )
            else:
                findings.append(
                    _finding(
                        DEPENDENCY_ERROR,
                        path,
                        f"dependency {dep_name!r} of {name!r} must be a local "
                        "provider name or a {type, address, provider_id} object",
                        "dependency",
                    )
                )
        dep_graph[name] = local_deps
        seen_names.append(name)
    findings.extend(_find_cycles(dep_graph, path))
    return findings


def _find_cycles(graph: dict[str, list[str]], path: str) -> list[Finding]:
    """One finding per dependency cycle among local providers."""
    findings: list[Finding] = []
    WHITE, GREY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}
    stack: list[str] = []

    def visit(node: str) -> None:
        color[node] = GREY
        stack.append(node)
        for dep in graph.get(node, ()):
            if dep not in color:
                continue
            if color[dep] == GREY:
                cycle = stack[stack.index(dep) :] + [dep]
                findings.append(
                    _finding(
                        DEPENDENCY_ERROR,
                        path,
                        "provider dependency cycle: " + " -> ".join(cycle),
                        "dependency",
                    )
                )
            elif color[dep] == WHITE:
                visit(dep)
        stack.pop()
        color[node] = BLACK

    for name in graph:
        if color[name] == WHITE:
            visit(name)
    return findings


def validate_bedrock_doc(doc: Any, path: str = "<bedrock>") -> list[Finding]:
    """Cross-validate a Listing-3 Bedrock boot document."""
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as err:
            return [_finding(MALFORMED, path, f"invalid JSON: {err}", "unknown-keys")]
    if not isinstance(doc, dict):
        return [
            _finding(
                MALFORMED,
                path,
                f"bedrock config must be an object, got {type(doc).__name__}",
                "unknown-keys",
            )
        ]
    findings: list[Finding] = []
    unknown = set(doc) - {"margo", "libraries", "providers"}
    if unknown:
        findings.append(
            _finding(
                MALFORMED,
                path,
                f"unknown bedrock config keys: {sorted(unknown)}",
                "unknown-keys",
            )
        )
    margo_doc = doc.get("margo")
    findings.extend(validate_margo_doc(margo_doc, path=path))
    libraries = doc.get("libraries", {})
    if not isinstance(libraries, dict):
        findings.append(
            _finding(
                MALFORMED, path, "'libraries' must be an object {type: path}", "unknown-keys"
            )
        )
        libraries = {}
    for type_name, library in libraries.items():
        try:
            module = resolve_library(library)
        except ModuleError as err:
            findings.append(_finding(DEPENDENCY_ERROR, path, str(err), "library"))
            continue
        if module.type_name != type_name:
            findings.append(
                _finding(
                    MALFORMED,
                    path,
                    f"library {library!r} provides type {module.type_name!r}, "
                    f"not {type_name!r}",
                    "library-type-mismatch",
                )
            )
    pools, _ = _margo_names(margo_doc if isinstance(margo_doc, dict) else {})
    findings.extend(
        _validate_providers(doc.get("providers", []), libraries, set(pools), path)
    )
    return findings


def validate_config_doc(doc: Any, path: str = "<config>") -> list[Finding]:
    """Validate either document flavor, deciding by shape."""
    probe = doc
    if isinstance(probe, str):
        try:
            probe = json.loads(probe)
        except json.JSONDecodeError as err:
            return [_finding(MALFORMED, path, f"invalid JSON: {err}", "unknown-keys")]
    if isinstance(probe, dict) and (
        "libraries" in probe or "providers" in probe or "margo" in probe
    ):
        return validate_bedrock_doc(probe, path=path)
    return validate_margo_doc(probe, path=path)


def validate_config_file(path: str, only_configs: bool = False) -> list[Finding]:
    """Validate one JSON file.  With ``only_configs=True``, documents
    that do not look like Margo/Bedrock configs are skipped (so the
    linter can sweep directories containing benchmark-result JSON)."""
    from .engine import CONFIG_MARKERS

    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except json.JSONDecodeError as err:
        return [_finding(MALFORMED, path, f"invalid JSON: {err}", "unknown-keys")]
    if only_configs and not (
        isinstance(doc, dict) and CONFIG_MARKERS.intersection(doc)
    ):
        return []
    return validate_config_doc(doc, path=path)


#: How strict boot validation maps finding kinds onto the exception
#: types the runtime boot path itself raises for the same mistake.
_STRICT_EXCEPTIONS = {
    "unknown-keys": BedrockConfigError,
    "library": ModuleError,
    "library-type-mismatch": BedrockConfigError,
    "duplicate-provider": ProviderConflictError,
    "provider-pool": BedrockConfigError,
    "dependency": DependencyError,
    "margo": ConfigError,
}


def check_boot_config(doc: Optional[dict[str, Any]], path: str = "<boot>") -> None:
    """Validate a boot document, raising like the runtime would.

    Used by :func:`repro.bedrock.boot.boot_process`: the first finding
    (in document order, which mirrors boot order) is raised with the
    exception type the runtime boot path uses for that class of error,
    so callers and tests observe identical failure modes -- just before
    any process, pool, or provider has been created.
    """
    findings = validate_bedrock_doc(doc or {}, path=path)
    if not findings:
        return
    first = findings[0]
    exc_type = _STRICT_EXCEPTIONS.get(first.context.get("kind"), BedrockConfigError)
    error = exc_type(first.message)
    error.findings = findings  # type: ignore[attr-defined]
    raise error
