"""Deterministic schedule explorer: the dynamic half of mochi-race.

The happens-before engine proves that two accesses *could* run in either
order; the explorer proves whether the order *matters*.  A scenario --
any zero-argument callable that builds a cluster, drives it, and returns
a dict of **schedule-invariant facts** (final KV contents, blob
checksums, "exactly one leader") -- is run once unperturbed and then
once per seed with :data:`repro.analysis.race.hooks.PERTURB` installed,
which makes every ``Pool.pop`` pick a seeded-random ready ULT instead of
the head.  Any pop order is a legal cooperative schedule, so a final
state whose digest differs from the baseline is an order-dependent
outcome (MCH032), pinned to the first scheduling event (pool push or
timer fire) where the perturbed trace diverges from the baseline.

Determinism contract: for the same scenario and the same seed, two
explorations produce byte-identical reports.  The ULT name counter is
rewound before every run so ULT names (which appear in traces and
finding messages) do not leak across runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..findings import Finding
from . import hooks

__all__ = ["RunResult", "ExplorationReport", "explore", "state_digest"]


def state_digest(facts: dict[str, Any]) -> str:
    """Canonical digest of a scenario's schedule-invariant facts."""
    blob = json.dumps(facts, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class RunResult:
    """One scenario execution under one perturbation seed."""

    seed: Optional[int]  # None = unperturbed baseline
    digest: str
    trace: list[str]
    findings: list[Finding]


@dataclass
class ExplorationReport:
    """Everything one :func:`explore` call learned about a scenario."""

    scenario: str
    baseline: RunResult
    runs: list[RunResult]
    #: Baseline HB/lock findings plus one MCH032 per diverging seed.
    findings: list[Finding]

    @property
    def diverging(self) -> list[RunResult]:
        return [run for run in self.runs if run.digest != self.baseline.digest]

    @property
    def clean(self) -> bool:
        return not self.findings


def _first_divergence(base: list[str], other: list[str]) -> str:
    for index, (a, b) in enumerate(zip(base, other)):
        if a != b:
            return f"event #{index}: baseline {a!r} vs perturbed {b!r}"
    if len(base) != len(other):
        index = min(len(base), len(other))
        longer = base if len(base) > len(other) else other
        tag = "baseline" if len(base) > len(other) else "perturbed"
        return f"event #{index}: only the {tag} trace has {longer[index]!r}"
    return "traces identical (state diverged without a trace-visible event)"


def explore(
    scenario: Callable[[], dict[str, Any]],
    name: str,
    seeds: Sequence[int] = tuple(range(1, 9)),
) -> ExplorationReport:
    """Run ``scenario`` unperturbed plus once per seed; diff digests."""
    from ...margo.ult import ULT

    start_counter = ULT._counter
    was_enabled = hooks.ENABLED

    def one_run(seed: Optional[int]) -> RunResult:
        ULT._counter = start_counter
        hooks.disable()
        hooks.reset()
        # Full precision: the explorer's divergence pinpointing needs a
        # complete fire trace, so timer-edge sampling is turned off here.
        hooks.enable(sample_every=1)
        trace: list[str] = []
        hooks.TRACE = trace
        hooks.set_perturbation(seed)
        try:
            facts = scenario()
        finally:
            run_findings = list(hooks.findings)
            hooks.set_perturbation(None)
            hooks.TRACE = None
        return RunResult(seed, state_digest(facts), trace, run_findings)

    baseline = one_run(None)
    runs = [one_run(seed) for seed in seeds]
    hooks.disable()
    hooks.reset()
    if was_enabled:
        hooks.enable()
    findings = list(baseline.findings)
    for run in runs:
        if run.digest != baseline.digest:
            findings.append(
                hooks.report_order_dependence(
                    name, run.seed, _first_divergence(baseline.trace, run.trace)
                )
            )
    return ExplorationReport(
        scenario=name, baseline=baseline, runs=runs, findings=findings
    )
