"""Example-service scenarios for the mochi-race CI gate.

Each scenario boots one of the repository's example services (the same
ones the paper's evaluation exercises), drives a representative
workload, and returns **schedule-invariant facts** for the explorer to
digest: final KV contents, blob checksums, destination file hashes,
"exactly one leader".  Facts must not mention anything a legal schedule
may reorder (ULT names, timestamps, who won an election) -- the whole
point is that these digests stay identical under every perturbation
while the happens-before engine watches for unordered accesses.

This module imports the full runtime stack; pull it in lazily (the CLI
and CI job do), never from :mod:`repro.analysis.race.hooks`.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable

from ...cluster import Cluster
from ...raft import CounterStateMachine, RaftConfig, RaftNode, Role
from ...remi import FileSet, RemiClient, RemiProvider
from ...storage import LocalStore
from ...warabi import WarabiClient, WarabiProvider
from ...yokan import YokanClient, YokanProvider
from .explore import ExplorationReport, explore

__all__ = [
    "yokan_scenario",
    "warabi_scenario",
    "remi_scenario",
    "raft_scenario",
    "SCENARIOS",
    "run_race_suite",
]


def yokan_scenario() -> dict[str, Any]:
    """Two clients hammer disjoint key ranges of one Yokan provider."""
    cluster = Cluster(seed=29)
    server = cluster.add_margo("server", node="n0")
    provider = YokanProvider(server, "db", provider_id=1)
    apps = [cluster.add_margo(f"app{i}", node=f"a{i}") for i in range(2)]
    handles = [YokanClient(app).make_handle(server.address, 1) for app in apps]

    def driver(handle, tag):
        for i in range(4):
            yield from handle.put(f"{tag}:{i}".encode(), f"value-{tag}-{i}".encode())
        value = yield from handle.get(f"{tag}:0".encode())
        yield from handle.erase(f"{tag}:3".encode())
        return value

    ults = [
        cluster.spawn(apps[i], driver(handles[i], f"t{i}"), name=f"driver{i}")
        for i in range(2)
    ]
    cluster.wait_ults(ults)
    backend = provider.backend
    keys = backend.list_keys(b"", None, 0)
    return {k.decode(): backend.get(k).decode() for k in keys}


def warabi_scenario() -> dict[str, Any]:
    """Sequential blob creation, then concurrent writers on disjoint blobs."""
    cluster = Cluster(seed=31)
    server = cluster.add_margo("server", node="n0")
    provider = WarabiProvider(server, "blobs", provider_id=1)
    app = cluster.add_margo("app", node="a0")
    handle = WarabiClient(app).make_handle(server.address, 1)

    def setup():
        ids = []
        for _ in range(3):
            blob_id = yield from handle.create(size=0)
            ids.append(blob_id)
        return ids

    blob_ids = cluster.run_ult(app, setup())

    def writer(blob_id, fill):
        yield from handle.write(blob_id, bytes([fill]) * 512)
        data = yield from handle.read(blob_id)
        return len(data)

    ults = [
        cluster.spawn(app, writer(blob_id, 65 + i), name=f"writer{i}")
        for i, blob_id in enumerate(blob_ids)
    ]
    cluster.wait_ults(ults)
    return {
        str(blob_id): hashlib.sha256(bytes(provider._blobs[blob_id])).hexdigest()
        for blob_id in blob_ids
    }


def remi_scenario() -> dict[str, Any]:
    """Chunked fileset migration, small chunk size to exercise reassembly."""
    cluster = Cluster(seed=7)
    src_node = cluster.node("src")
    dst_node = cluster.node("dst")
    src_store = LocalStore(src_node)
    dst_store = LocalStore(dst_node)
    src = cluster.add_margo("src-proc", node=src_node)
    dst = cluster.add_margo("dst-proc", node=dst_node)
    RemiProvider(dst, "remi", provider_id=0)
    handle = RemiClient(src).make_handle(dst.address, 0)
    paths = []
    for i in range(4):
        path = f"data/{i:04d}"
        src_store.write(path, bytes([i % 256]) * 1000)
        paths.append(path)
    fileset = FileSet.from_prefix(src_store, "data/")

    def driver():
        report = yield from handle.migrate_fileset(
            fileset, method="chunks", chunk_size=512
        )
        return report

    cluster.run_ult(src, driver())
    return {p: hashlib.sha256(dst_store.read(p)).hexdigest() for p in paths}


def raft_scenario() -> dict[str, Any]:
    """Three-node Raft election; facts are invariants, not who won."""
    rc = RaftConfig(
        heartbeat_interval=0.05,
        election_timeout_min=0.15,
        election_timeout_max=0.3,
        rpc_timeout=0.06,
        submit_timeout=5.0,
        snapshot_threshold=64,
    )
    cluster = Cluster(seed=21)
    margos = [cluster.add_margo(f"r{i}", node=f"n{i}") for i in range(3)]
    peers = [m.address for m in margos]
    nodes = [
        RaftNode(
            margo,
            f"raft{i}",
            provider_id=1,
            state_machine=CounterStateMachine(),
            peers=peers,
            rng=cluster.randomness.stream(f"raft:{i}"),
            config=rc,
        )
        for i, margo in enumerate(margos)
    ]
    cluster.run(until=3.0)
    leaders = [n for n in nodes if n.role == Role.LEADER and n._running]
    terms = {n.current_term for n in nodes}
    return {
        "num_leaders": len(leaders),
        "terms_converged": len(terms) == 1,
        "all_running": all(n._running for n in nodes),
    }


SCENARIOS: list[tuple[str, Callable[[], dict[str, Any]]]] = [
    ("yokan-kv", yokan_scenario),
    ("warabi-blobs", warabi_scenario),
    ("remi-migration", remi_scenario),
    ("raft-election", raft_scenario),
]


def run_race_suite(
    seeds: int = 8, emit: Callable[[str], Any] = print
) -> tuple[list, list[ExplorationReport]]:
    """Explore every example-service scenario; return (findings, reports)."""
    findings = []
    reports = []
    for name, scenario in SCENARIOS:
        report = explore(scenario, name, seeds=tuple(range(1, seeds + 1)))
        reports.append(report)
        findings.extend(report.findings)
        emit(
            f"race: {name}: {len(report.runs)} perturbed runs, "
            f"{len(report.diverging)} diverging, {len(report.findings)} finding(s)"
        )
    return findings, reports
