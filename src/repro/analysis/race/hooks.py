"""mochi-race runtime hooks: the gated entry points the runtime calls.

This module is to the race detector what :mod:`repro.analysis.sanitize`
is to the classic sanitizer: the kernel and the margo layer call the
``note_*`` functions below behind ``if _race.ENABLED:`` module-attribute
gates, so the disabled cost is one attribute load per call site -- and
the hottest site of all, :meth:`SimKernel.schedule`, is *method-swapped*
(see ``_set_race_hooks`` in ``sim/kernel.py``) so the disabled path pays
literally nothing there.

Three detectors share the state recorded here:

* the happens-before engine (:mod:`.hb`) flags unordered access pairs on
  tracked shared state -- ``MCH030`` (write/write), ``MCH031``
  (read/write);
* the lock-order graph (:mod:`.lockgraph`) flags acquisition-order
  cycles (``MCH040``) and unbounded wait-while-holding (``MCH041``),
  even when the deadlock did not fire this run;
* the schedule explorer (:mod:`.explore`) re-runs scenarios under seeded
  ready-queue perturbations (the :data:`PERTURB` gate in ``Pool.pop``)
  and reports order-dependent outcomes as ``MCH032``.

Enable via ``REPRO_SANITIZE=race`` (which also turns on the classic
sanitizer in record mode) or programmatically with :func:`enable`.
Findings accumulate in :data:`findings` in detection order, which is
deterministic for a deterministic schedule: same seed, same report.

P1 cost model (ROADMAP item 3, detector half).  The detector-on price
used to be a full clock snapshot (plus a wrapper call and a wrap
object) on *every* scheduled timer.  Measurement killed the obvious
fix: even a counter-only wrapper around ``SimKernel.post`` costs ~10%
of the event loop, so any per-event interception busts the <=10%
budget by itself.  ``race_sample_every`` therefore selects between two
modes that differ in *where* clocks are captured, not just how often:

* **Exact mode** (``race_sample_every=1``): ``schedule``/``post`` are
  method-swapped; every timer carries its scheduler's exact clock
  through a :class:`_TimerWrap` (copy-on-write, free-listed).  Full
  timer-edge precision -- the schedule explorer runs here, so MCH032
  divergence traces are complete.
* **Epoch mode** (``race_sample_every`` > 1, default
  :data:`DEFAULT_SAMPLE_EVERY`): the kernel is left *pristine* -- the
  event loop pays literally zero -- and timer fires therefore resolve
  to the root context.  Soundness is recovered at the margo layer:
  a publication (push / release) whose context resolves to root during
  a run hands out the **approximation clock R**
  (:func:`repro.analysis.race.hb.approx_snapshot`), a pointwise upper
  bound on every live clock, so receivers only ever gain
  happens-before edges -- races can be *missed* (window bounded by R's
  fold points), never invented; clean stays clean.  ULT-context edges
  publish their cached epoch snapshot (no copy, no increment); a cache
  miss -- the publisher's clock actually moved -- advances the edge
  tick, and every ``race_sample_every``-th miss takes an exact publish
  to close the interval.  Two further call-elimination gates keep the
  steady state under the budget: ``UltEvent.set`` publishes nothing
  (:data:`EVENT_EDGES` is False -- woken waiters get the setter's
  clock through the push the set performs, late joiners take R in
  :func:`note_event_join`), and parks skip the MCH041 hook entirely
  unless some ULT currently holds a mutex (:data:`ANY_HELD`).

Lock edges (release→acquire) and the lock-order graph stay exact and
always-on in both modes -- they are cheap and MCH040/041 depend on
them.  Tracked accesses made *from* timer fires are attributed to root
in epoch mode (invisible to MCH030/031 -- a known, sound
precision loss; exact mode sees them fully).
"""

from __future__ import annotations

import os
import sys
from random import Random
from typing import Any, Optional

from ..findings import Finding
from ..registry import GROUP_CONCURRENCY, RuleInfo, Severity, make_finding, register
from . import hb as _hb
from .hb import Ctx, HBState, approx_snapshot
from .lockgraph import LockOrderGraph

__all__ = [
    "ENABLED",
    "PERTURB",
    "TRACE",
    "SAMPLE_EVERY",
    "DEFAULT_SAMPLE_EVERY",
    "findings",
    "enable",
    "disable",
    "reset",
    "track",
    "note_read",
    "note_write",
]

RULE_UNORDERED_WRITES = "MCH030"
RULE_UNORDERED_READ_WRITE = "MCH031"
RULE_ORDER_DEPENDENT_OUTCOME = "MCH032"
RULE_LOCK_ORDER_CYCLE = "MCH040"
RULE_WAIT_WHILE_HOLDING = "MCH041"

register(
    RuleInfo(
        id=RULE_UNORDERED_WRITES,
        name="unordered-writes",
        group=GROUP_CONCURRENCY,
        severity=Severity.ERROR,
        summary="two writes to the same shared state with no happens-before edge",
        rationale=(
            "whichever write the scheduler happens to run last wins; a new "
            "pool, a perturbed ready queue, or a slower link runs them the "
            "other way and the final state silently changes"
        ),
        runtime_checked=True,
    )
)
register(
    RuleInfo(
        id=RULE_UNORDERED_READ_WRITE,
        name="unordered-read-write",
        group=GROUP_CONCURRENCY,
        severity=Severity.ERROR,
        summary="a read and a write to the same shared state with no happens-before edge",
        rationale=(
            "the read observes either the old or the new value depending "
            "only on scheduling; results become schedule-dependent, the "
            "main enemy of reproducible systems experiments"
        ),
        runtime_checked=True,
    )
)
register(
    RuleInfo(
        id=RULE_ORDER_DEPENDENT_OUTCOME,
        name="order-dependent-outcome",
        group=GROUP_CONCURRENCY,
        severity=Severity.ERROR,
        summary="a scenario's final state changed under a perturbed ready-queue order",
        rationale=(
            "the schedule explorer re-runs the scenario under seeded pool "
            "perturbations; a diverging final-state digest proves the "
            "outcome depends on scheduling accidents, pinned to the first "
            "diverging scheduling event"
        ),
        runtime_checked=True,
    )
)
register(
    RuleInfo(
        id=RULE_LOCK_ORDER_CYCLE,
        name="lock-order-cycle",
        group=GROUP_CONCURRENCY,
        severity=Severity.ERROR,
        summary="mutexes acquired in cyclic order across ULTs",
        rationale=(
            "a cycle in the acquisition-order graph is deadlock potential "
            "even if this run serialized the critical sections; the graph "
            "persists across the session so the cycle is reported without "
            "the deadlock ever firing"
        ),
        runtime_checked=True,
    )
)
register(
    RuleInfo(
        id=RULE_WAIT_WHILE_HOLDING,
        name="wait-while-holding",
        group=GROUP_CONCURRENCY,
        severity=Severity.ERROR,
        summary="ULT parks on an event with no timeout while holding a mutex",
        rationale=(
            "if the signaler ever needs the held mutex the system "
            "deadlocks, and nothing bounds the wait; release first, or "
            "park with a timeout"
        ),
        runtime_checked=True,
    )
)


#: Fast-path gate read by the margo-layer hooks (pool/ult/xstream/runtime).
ENABLED: bool = False

#: Seeded ready-queue perturbation source, read by ``Pool.pop``.
PERTURB: Optional[Random] = None

#: When not None, scheduling events are appended here (explorer runs).
TRACE: Optional[list[str]] = None

#: Default timer-edge sampling period: one exact publication every N
#: scheduled events (``RACE_SAMPLE_EVERY`` overrides; 1 = exact mode).
DEFAULT_SAMPLE_EVERY = 16

#: Active sampling period (set by :func:`enable`).
SAMPLE_EVERY: int = DEFAULT_SAMPLE_EVERY

#: True while the instrumented ``schedule``/``post`` are swapped in
#: (exact mode); epoch mode leaves the kernel pristine.
_SWAPPED: bool = False

#: Site gate for ``UltEvent.set`` publications.  True only in exact
#: mode: epoch mode drops set-time publications entirely and recovers
#: the already-set-park edge by joining the approximation clock R at
#: join time (a superset of any set-time snapshot, so FP-free) -- the
#: woken-waiter edge is carried by the ``note_push`` the set performs
#: anyway.  Cuts ~3 hook calls per RPC off the steady state.
EVENT_EDGES: bool = False

#: Site gate for ``note_park``: True only while some ULT holds at least
#: one mutex (maintained by ``note_acquire``/``note_release``).  MCH041
#: can only fire for a lock-holding parker, so a lock-free workload
#: pays one extra attribute load per park instead of a hook call.
ANY_HELD: bool = False

#: Deterministic edge counter driving the epoch-mode sampling decision.
_tick = 0

#: Race findings in detection order (deterministic per seed).
findings: list[Finding] = []

_STATE = HBState()
_LOCKS = LockOrderGraph()
_reported: set[tuple] = set()

#: Lazily-bound ``repro.margo.ult`` module (imported on first hook call
#: because hooks can be enabled, via REPRO_SANITIZE, while margo.ult is
#: still mid-import).  Binding the module and reading ``_CURRENT`` as an
#: attribute is measurably cheaper than calling ``current_ult()`` on
#: every hook.
_ult_mod: Any = None

#: The context of the timer currently firing (built lazily per fire).
_FIRE: Optional[Ctx] = None
_FIRE_WRAP: Optional["_TimerWrap"] = None


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def enable(sample_every: Optional[int] = None) -> None:
    """Turn the race layer on (idempotent).

    ``sample_every`` selects the timer-edge mode (see the module
    docstring): ``1`` is exact mode (the explorer uses it) and swaps
    the instrumented ``SimKernel.schedule``/``post`` in; any larger
    value is epoch mode, which leaves the kernel pristine.  ``None``
    keeps the ``RACE_SAMPLE_EVERY`` environment override or
    :data:`DEFAULT_SAMPLE_EVERY`.  Re-enabling with a different mode
    re-swaps accordingly.
    """
    global ENABLED, SAMPLE_EVERY, _SWAPPED, EVENT_EDGES
    if sample_every is None:
        env = os.environ.get("RACE_SAMPLE_EVERY", "").strip()
        sample_every = int(env) if env else DEFAULT_SAMPLE_EVERY
    if sample_every < 1:
        raise ValueError(f"race_sample_every must be >= 1, got {sample_every}")
    SAMPLE_EVERY = sample_every
    want_swap = sample_every == 1
    if ENABLED and want_swap == _SWAPPED:
        return
    from ...sim import kernel as _kernel_mod

    _kernel_mod._set_race_hooks(sys.modules[__name__], swap=want_swap)
    _SWAPPED = want_swap
    EVENT_EDGES = want_swap
    ENABLED = True


def disable() -> None:
    global ENABLED, _SWAPPED, EVENT_EDGES
    if not ENABLED:
        return
    from ...sim import kernel as _kernel_mod

    _kernel_mod._set_race_hooks(None)
    ENABLED = False
    _SWAPPED = False
    EVENT_EDGES = False
    reset()


def reset() -> None:
    """Drop all recorded state (between scenarios / explorer runs)."""
    global _STATE, _LOCKS, _FIRE, _FIRE_WRAP, PERTURB, TRACE, _tick, ANY_HELD
    _STATE = HBState()
    _LOCKS = LockOrderGraph()
    ANY_HELD = False
    _reported.clear()
    findings.clear()
    _FIRE = None
    _FIRE_WRAP = None
    PERTURB = None
    TRACE = None
    _tick = 0


def set_perturbation(seed: Optional[int]) -> None:
    """Install (or clear) the seeded ready-queue perturbation source."""
    global PERTURB
    PERTURB = None if seed is None else Random(seed)


# ----------------------------------------------------------------------
# context resolution
# ----------------------------------------------------------------------
def _fn_label(fn: Any) -> str:
    owner = getattr(fn, "__self__", None)
    name = getattr(owner, "name", "") if owner is not None else ""
    base = getattr(fn, "__qualname__", None) or type(fn).__name__
    return f"{base}:{name}" if name else base


def _fire_ctx() -> Ctx:
    """Materialize the current timer-fire context (lazy, copy-on-write:
    the wrap's snapshot dict is *borrowed*, copied only on mutation)."""
    global _FIRE
    wrap = _FIRE_WRAP
    _FIRE = Ctx(wrap.snap, label=wrap, borrowed=True)
    return _FIRE


def _resolve_ult_mod() -> Any:
    global _ult_mod
    from ...margo import ult as _ult_mod_imported

    _ult_mod = _ult_mod_imported
    return _ult_mod


def _current_ctx() -> Ctx:
    mod = _ult_mod
    if mod is None:
        mod = _resolve_ult_mod()
    ult = mod._CURRENT
    if ult is not None:
        return _STATE.ctx_for_ult(ult)
    if _FIRE is not None:
        return _FIRE
    if _FIRE_WRAP is not None:
        return _fire_ctx()
    return _STATE.root


# ----------------------------------------------------------------------
# timer propagation (installed into SimKernel.schedule/post when enabled)
# ----------------------------------------------------------------------
class _TimerWrap:
    """Carries the scheduler's clock snapshot to the fire context.

    Wraps are recycled through :data:`_WRAP_FREE` (no per-event object
    churn on the schedule->fire fast path): a wrap that fired cleanly
    returns itself to the free list, and nothing retains a wrap past its
    fire -- a materialized fire :class:`Ctx` holds the *snapshot dict*
    (never mutated in place, only replaced on reuse) and report labels
    are resolved to strings eagerly at access-record time.
    """

    __slots__ = ("fn", "arg", "no_arg", "snap")

    def __init__(self, fn: Any, arg: Any, no_arg: Any, snap: dict) -> None:
        self.fn = fn
        self.arg = arg
        self.no_arg = no_arg
        self.snap = snap

    def describe(self) -> str:
        """Lazy fire-context label (built only if a report needs it)."""
        return f"timer:{_fn_label(self.fn)}"

    def __call__(self) -> None:
        global _FIRE, _FIRE_WRAP
        if TRACE is not None:
            TRACE.append(f"fire:{_fn_label(self.fn)}")
        prev_ctx, prev_wrap = _FIRE, _FIRE_WRAP
        _FIRE, _FIRE_WRAP = None, self
        try:
            if self.arg is self.no_arg:
                self.fn()
            else:
                self.fn(self.arg)
        finally:
            _FIRE, _FIRE_WRAP = prev_ctx, prev_wrap
        # Clean exit only: an exception's traceback pins the frame (and
        # this wrap with it), so recycling there could alias a live wrap.
        free = _WRAP_FREE
        if len(free) < _WRAP_FREE_MAX:
            self.fn = self.arg = self.snap = None
            free.append(self)


#: Recycled wraps (flat-slot discipline: reinitializing four slots beats
#: allocating + GC-tracking an object per scheduled event).
_WRAP_FREE: list = []
_WRAP_FREE_MAX = 512


def _make_instrumented(plain: Any) -> Any:
    """Build the exact-mode ``SimKernel.schedule``/``post`` around the
    pristine fast path (``_set_race_hooks`` swaps it in at the class
    level, so subclass-free method dispatch still finds it).

    Only installed at ``race_sample_every=1``: every scheduled event
    carries its scheduler's exact publication (snapshot plus
    own-component advance) in a free-listed :class:`_TimerWrap`.  Epoch
    mode never installs this wrapper at all -- even a counter-only
    wrapper here costs ~10% of the event loop.
    """
    from ...sim.kernel import _NO_ARG as no_arg

    def _race_scheduled(kernel: Any, delay: float, fn: Any, arg: Any = no_arg) -> Any:
        snap = _current_ctx().publish()
        free = _WRAP_FREE
        if free:
            new = free.pop()
            new.fn = fn
            new.arg = arg
            new.snap = snap
        else:
            new = _TimerWrap(fn, arg, no_arg, snap)
        return plain(kernel, delay, new, no_arg)

    _race_scheduled.__doc__ = plain.__doc__
    return _race_scheduled


def make_race_schedule(plain: Any) -> Any:
    """Instrumented ``SimKernel.schedule`` (see :func:`_make_instrumented`)."""
    return _make_instrumented(plain)


def make_race_post(plain: Any) -> Any:
    """Instrumented ``SimKernel.post`` (same sampling policy; the two
    share the event counter)."""
    return _make_instrumented(plain)


def note_run_end() -> None:
    """End of ``SimKernel.run``: order the host after everything that ran."""
    _STATE.barrier_into_root()


# ----------------------------------------------------------------------
# scheduling / synchronization edges
# ----------------------------------------------------------------------
def _edge_snapshot(ctx: Ctx) -> dict:
    """Publication snapshot for an always-on margo edge (push / set).

    In epoch mode a context that resolves to root mid-run is a timer
    fire whose true clock the kernel did not propagate (no wraps);
    publish the approximation clock R instead -- a pointwise upper
    bound on every live clock, so the receiver only gains edges.  Other
    publishers hand out their cached epoch snapshot, with every
    ``SAMPLE_EVERY``-th edge taking an exact publish to close the
    interval.  In exact mode ``_tick % 1`` is always 0, so every edge
    publishes exactly, and fires never resolve to root.
    """
    global _tick
    if ctx.tid == "root" and not _SWAPPED:
        return approx_snapshot()
    _tick += 1
    if _tick % SAMPLE_EVERY:
        return ctx.publish_epoch()
    return ctx.publish()


def note_push(pool: Any, ult: Any) -> None:
    """``Pool.push``: the pusher's clock flows into the pushed ULT.

    The hottest hook in the system (every wake is a push), so the body
    is flattened -- context resolution and the edge snapshot are
    inlined (the out-of-line versions live in :func:`_current_ctx` /
    :func:`_edge_snapshot`) -- and the join is identity-memoized:
    snapshot dicts are replaced on invalidation, never mutated, and
    joins are idempotent, so re-joining the same dict the target last
    joined is provably a no-op.  In steady state (R and epoch caches
    unchanged) a push costs a handful of dict lookups and a pointer
    compare.
    """
    global _tick
    mod = _ult_mod
    if mod is None:
        mod = _resolve_ult_mod()
    cur = mod._CURRENT
    if cur is ult:
        # Self re-push (UltYield): no edge, and both endpoint
        # resolutions would land on the same context anyway.
        if TRACE is not None:
            TRACE.append(f"push:{pool.name}:{ult.name}")
        return
    state = _STATE
    if cur is not None:
        entry = state.ult_ctx.get(id(cur))
        ctx = entry[1] if entry is not None else state.ctx_for_ult(cur)
    elif _FIRE_WRAP is None:
        ctx = state.root
    else:
        ctx = _FIRE if _FIRE is not None else _fire_ctx()
    entry = state.ult_ctx.get(id(ult))
    target = entry[1] if entry is not None else None
    if target is not ctx:
        # Memo-first: in the steady state the publisher's cached epoch
        # snapshot is live and the target already joined it, so the
        # whole edge is two attribute loads and a pointer compare.  The
        # tick only advances on a cache miss, i.e. when the publisher's
        # clock actually moved since its last publication -- an exact
        # publish on an unchanged clock would close an empty interval.
        # (Exact mode: ``publish`` invalidates ``_snap`` every time, so
        # every edge is a miss and takes an exact publish -- unchanged.)
        if ctx.tid == "root" and not _SWAPPED:
            snap = _hb._approx_snap
            if snap is None:
                snap = approx_snapshot()
        else:
            snap = ctx._snap
            if snap is None:
                _tick += 1
                if _tick % SAMPLE_EVERY:
                    snap = ctx.publish_epoch()
                else:
                    snap = ctx.publish()
                    # publish() invalidated the cache; pin this snapshot
                    # so identical follow-up edges memo-hit on it.
                    if not _SWAPPED:
                        ctx._snap = snap
        if target is None:
            # First push of a fresh ULT: its initial clock IS the
            # incoming edge, so borrow the snapshot instead of
            # allocating an empty clock and joining into it (Ctx.own
            # copies lazily if the ULT ever mutates it).
            target = Ctx(clock=snap, label=ult, borrowed=True)
            target.last_join = snap
            state.ult_ctx[id(ult)] = (ult, target)
        elif target.last_join is not snap:
            target.join(snap)
            target.last_join = snap
    if TRACE is not None:
        TRACE.append(f"push:{pool.name}:{ult.name}")


def note_event_set(event: Any) -> None:
    """``UltEvent.set`` / ``SimEvent.set``: publish the setter's clock.

    Epoch-batched: the receiver sees exactly the setter's current clock,
    only the setter's own post-set accesses fold into the same interval
    (a bounded missed-race window, never a false positive).  Lock edges
    (:func:`note_release`) stay exact.  Body flattened like
    :func:`note_push` (several sets per RPC).
    """
    global _tick
    mod = _ult_mod
    if mod is None:
        mod = _resolve_ult_mod()
    cur = mod._CURRENT
    state = _STATE
    if cur is not None:
        entry = state.ult_ctx.get(id(cur))
        ctx = entry[1] if entry is not None else state.ctx_for_ult(cur)
    elif _FIRE_WRAP is None:
        ctx = state.root
    else:
        ctx = _FIRE if _FIRE is not None else _fire_ctx()
    if ctx.tid == "root" and not _SWAPPED:
        snap = _hb._approx_snap
        if snap is None:
            snap = approx_snapshot()
    else:
        _tick += 1
        if _tick % SAMPLE_EVERY:
            snap = ctx._snap
            if snap is None:
                snap = ctx.publish_epoch()
        else:
            snap = ctx.publish()
    state.sync_clock[id(event)] = (event, snap)


def note_event_join(event: Any) -> None:
    """Parking/waiting on an already-set event: join the setter's clock.

    Exact mode joins the set-time snapshot recorded by
    :func:`note_event_set`.  Epoch mode records nothing at set time
    (see :data:`EVENT_EDGES`), so the joiner takes the approximation
    clock R instead: R is a pointwise upper bound on the setter's clock
    at set time, so the join only adds edges -- sound, coarse.
    """
    ctx = _current_ctx()
    if not _SWAPPED:
        snap = _hb._approx_snap
        if snap is None:
            snap = approx_snapshot()
        if ctx.last_join is not snap:
            ctx.join(snap)
            ctx.last_join = snap
        return
    _STATE.join_from(event, ctx)


def note_acquire(ult: Any, mutex: Any) -> None:
    """``UltMutex.acquire``: HB edge from the last releaser + lock order."""
    global ANY_HELD
    ctx = _current_ctx()
    _STATE.join_from(mutex, ctx)
    if ult is None:
        return
    ANY_HELD = True
    cycle = _LOCKS.note_acquire(ult, mutex, where=getattr(ult, "name", "?"))
    if cycle is not None:
        key = (RULE_LOCK_ORDER_CYCLE, tuple(sorted(cycle)))
        if key not in _reported:
            _reported.add(key)
            findings.append(
                make_finding(
                    RULE_LOCK_ORDER_CYCLE,
                    path="race:lock-order",
                    line=0,
                    message=(
                        f"lock-order cycle {' -> '.join(cycle)} "
                        f"(closed by ULT {ult.name!r}); two ULTs taking "
                        "these mutexes concurrently can deadlock"
                    ),
                    source="runtime",
                )
            )


def note_release(ult: Any, mutex: Any) -> None:
    """``UltMutex.release``: publish the releaser's clock on the lock.

    Exact (no epoch batching) for ULT releasers -- MCH040/041 precision
    rides on lock edges.  A releaser that resolves to root in epoch
    mode is a timer fire; its true clock is unknown, so R stands in
    (superset join: sound, coarse -- same rule as :func:`_edge_snapshot`).
    """
    global ANY_HELD
    ctx = _current_ctx()
    if ctx.tid == "root" and not _SWAPPED:
        _STATE.publish_snapshot(mutex, approx_snapshot())
    else:
        _STATE.publish_to(mutex, ctx)
    _LOCKS.note_release(ult, mutex)
    if ANY_HELD and not any(e[1] for e in _LOCKS.held.values()):
        ANY_HELD = False


def note_park(ult: Any, cmd: Any) -> None:
    """``XStream._run_slice`` Park branch: wait-while-holding check."""
    if cmd.timeout is not None:
        return
    entry = _LOCKS.held.get(id(ult))
    if entry is None or not entry[1]:
        # Fast path: no locks held (the overwhelming majority of parks)
        # -- skip the held_names list build.
        return
    held = _LOCKS.held_names(ult)
    if not held:
        return
    event_name = getattr(cmd.event, "name", "") or "<unnamed>"
    if event_name.startswith("mutex:"):
        # Contended UltMutex.acquire parks on an internal gate event;
        # nested-acquisition ordering is the lock-order graph's job
        # (MCH040), not a wait-while-holding finding.
        return
    key = (RULE_WAIT_WHILE_HOLDING, ult.name, event_name, tuple(held))
    if key in _reported:
        return
    _reported.add(key)
    findings.append(
        make_finding(
            RULE_WAIT_WHILE_HOLDING,
            path="race:lock-order",
            line=0,
            message=(
                f"ULT {ult.name!r} parks on event {event_name!r} with no "
                f"timeout while holding mutex(es) {held}; if the signaler "
                "needs those locks this deadlocks, and nothing bounds the wait"
            ),
            source="runtime",
        )
    )


# ----------------------------------------------------------------------
# tracked shared state (the MCH03x checks)
# ----------------------------------------------------------------------
def track(state: Any, name: str = "") -> None:
    """Give ``state`` a display name for race reports (optional: tracked
    objects are auto-named on first access otherwise)."""
    _STATE.track(state, name)


def _report_pair(
    rule_id: str, state_name: str, key: Any, kinds: str, prev_label: str, cur_label: str
) -> None:
    dedup = (rule_id, state_name, repr(key), prev_label, cur_label)
    if dedup in _reported:
        return
    _reported.add(dedup)
    findings.append(
        make_finding(
            rule_id,
            path=f"race:{state_name}",
            line=0,
            message=(
                f"unordered {kinds} on {state_name}[{key!r}]: "
                f"{prev_label} vs {cur_label}; no synchronization edge "
                "orders them, so the outcome depends on the schedule"
            ),
            source="runtime",
        )
    )


def note_write(state: Any, key: Any, where: str) -> None:
    """A write to ``state[key]`` by the current context.

    Label formatting is deferred to the (rare) report branches; the
    record keeps ``where`` and the accessor :class:`Ctx`, whose label
    ``ensure_tid`` already pinned to a string.
    """
    ctx = _current_ctx()
    tid = ctx.tid
    if tid is None:
        tid = _STATE.ensure_tid(ctx)
    clock = ctx.clock
    var = _STATE.var(state, key)
    wt = var.write_tid
    if wt is not None and wt != tid and clock.get(wt, 0) < var.write_count:
        _report_pair(
            RULE_UNORDERED_WRITES,
            _STATE.track(state),
            key,
            "write/write",
            f"{var.write_where} [{var.write_ctx.label}]",
            f"{where} [{ctx.label}]",
        )
    reads = var.reads
    if reads:
        for rtid, (rcount, rwhere, rctx) in reads.items():
            if rtid != tid and clock.get(rtid, 0) < rcount:
                _report_pair(
                    RULE_UNORDERED_READ_WRITE,
                    _STATE.track(state),
                    key,
                    "read/write",
                    f"{rwhere} [{rctx.label}]",
                    f"{where} [{ctx.label}]",
                )
        reads.clear()
    var.write_tid = tid
    var.write_count = clock[tid]
    var.write_where = where
    var.write_ctx = ctx


def note_read(state: Any, key: Any, where: str) -> None:
    """A read of ``state[key]`` by the current context (labels deferred
    like :func:`note_write`).

    Runs once per dispatch, so the body is flattened like
    :func:`note_push`: context resolution is inlined, and a repeat read
    by the same context at the same clock count skips the re-store (the
    record it would write is the one already there, modulo which of two
    same-count read sites a later report names).
    """
    mod = _ult_mod
    if mod is None:
        mod = _resolve_ult_mod()
    cur = mod._CURRENT
    hbstate = _STATE
    if cur is not None:
        entry = hbstate.ult_ctx.get(id(cur))
        ctx = entry[1] if entry is not None else hbstate.ctx_for_ult(cur)
    elif _FIRE_WRAP is None:
        ctx = hbstate.root
    else:
        ctx = _FIRE if _FIRE is not None else _fire_ctx()
    tid = ctx.tid
    if tid is None:
        tid = hbstate.ensure_tid(ctx)
    clock = ctx.clock
    var = hbstate.var(state, key)
    wt = var.write_tid
    if wt is not None and wt != tid and clock.get(wt, 0) < var.write_count:
        _report_pair(
            RULE_UNORDERED_READ_WRITE,
            hbstate.track(state),
            key,
            "write/read",
            f"{var.write_where} [{var.write_ctx.label}]",
            f"{where} [{ctx.label}]",
        )
    count = clock[tid]
    prev = var.reads.get(tid)
    if prev is None or prev[0] != count:
        var.reads[tid] = (count, where, ctx)


def report_order_dependence(scenario: str, seed: int, divergence: str) -> Finding:
    """Used by the explorer to emit MCH032 for a diverging scenario."""
    finding = make_finding(
        RULE_ORDER_DEPENDENT_OUTCOME,
        path=f"race:{scenario}",
        line=0,
        message=(
            f"final state of scenario {scenario!r} diverged under "
            f"perturbation seed {seed}; first diverging scheduling event: "
            f"{divergence}"
        ),
        source="runtime",
    )
    findings.append(finding)
    return finding


# Environment opt-in: REPRO_SANITIZE=race turns the race layer on (the
# classic sanitizer reads the same variable and switches to record mode).
if os.environ.get("REPRO_SANITIZE", "").strip().lower() == "race":
    enable()
