"""mochi-race runtime hooks: the gated entry points the runtime calls.

This module is to the race detector what :mod:`repro.analysis.sanitize`
is to the classic sanitizer: the kernel and the margo layer call the
``note_*`` functions below behind ``if _race.ENABLED:`` module-attribute
gates, so the disabled cost is one attribute load per call site -- and
the hottest site of all, :meth:`SimKernel.schedule`, is *method-swapped*
(see ``_set_race_hooks`` in ``sim/kernel.py``) so the disabled path pays
literally nothing there.

Three detectors share the state recorded here:

* the happens-before engine (:mod:`.hb`) flags unordered access pairs on
  tracked shared state -- ``MCH030`` (write/write), ``MCH031``
  (read/write);
* the lock-order graph (:mod:`.lockgraph`) flags acquisition-order
  cycles (``MCH040``) and unbounded wait-while-holding (``MCH041``),
  even when the deadlock did not fire this run;
* the schedule explorer (:mod:`.explore`) re-runs scenarios under seeded
  ready-queue perturbations (the :data:`PERTURB` gate in ``Pool.pop``)
  and reports order-dependent outcomes as ``MCH032``.

Enable via ``REPRO_SANITIZE=race`` (which also turns on the classic
sanitizer in record mode) or programmatically with :func:`enable`.
Findings accumulate in :data:`findings` in detection order, which is
deterministic for a deterministic schedule: same seed, same report.
"""

from __future__ import annotations

import os
import sys
from random import Random
from typing import Any, Callable, Optional

from ..findings import Finding
from ..registry import GROUP_CONCURRENCY, RuleInfo, Severity, make_finding, register
from .hb import Ctx, HBState
from .lockgraph import LockOrderGraph

__all__ = [
    "ENABLED",
    "PERTURB",
    "TRACE",
    "findings",
    "enable",
    "disable",
    "reset",
    "track",
    "note_read",
    "note_write",
]

RULE_UNORDERED_WRITES = "MCH030"
RULE_UNORDERED_READ_WRITE = "MCH031"
RULE_ORDER_DEPENDENT_OUTCOME = "MCH032"
RULE_LOCK_ORDER_CYCLE = "MCH040"
RULE_WAIT_WHILE_HOLDING = "MCH041"

register(
    RuleInfo(
        id=RULE_UNORDERED_WRITES,
        name="unordered-writes",
        group=GROUP_CONCURRENCY,
        severity=Severity.ERROR,
        summary="two writes to the same shared state with no happens-before edge",
        rationale=(
            "whichever write the scheduler happens to run last wins; a new "
            "pool, a perturbed ready queue, or a slower link runs them the "
            "other way and the final state silently changes"
        ),
        runtime_checked=True,
    )
)
register(
    RuleInfo(
        id=RULE_UNORDERED_READ_WRITE,
        name="unordered-read-write",
        group=GROUP_CONCURRENCY,
        severity=Severity.ERROR,
        summary="a read and a write to the same shared state with no happens-before edge",
        rationale=(
            "the read observes either the old or the new value depending "
            "only on scheduling; results become schedule-dependent, the "
            "main enemy of reproducible systems experiments"
        ),
        runtime_checked=True,
    )
)
register(
    RuleInfo(
        id=RULE_ORDER_DEPENDENT_OUTCOME,
        name="order-dependent-outcome",
        group=GROUP_CONCURRENCY,
        severity=Severity.ERROR,
        summary="a scenario's final state changed under a perturbed ready-queue order",
        rationale=(
            "the schedule explorer re-runs the scenario under seeded pool "
            "perturbations; a diverging final-state digest proves the "
            "outcome depends on scheduling accidents, pinned to the first "
            "diverging scheduling event"
        ),
        runtime_checked=True,
    )
)
register(
    RuleInfo(
        id=RULE_LOCK_ORDER_CYCLE,
        name="lock-order-cycle",
        group=GROUP_CONCURRENCY,
        severity=Severity.ERROR,
        summary="mutexes acquired in cyclic order across ULTs",
        rationale=(
            "a cycle in the acquisition-order graph is deadlock potential "
            "even if this run serialized the critical sections; the graph "
            "persists across the session so the cycle is reported without "
            "the deadlock ever firing"
        ),
        runtime_checked=True,
    )
)
register(
    RuleInfo(
        id=RULE_WAIT_WHILE_HOLDING,
        name="wait-while-holding",
        group=GROUP_CONCURRENCY,
        severity=Severity.ERROR,
        summary="ULT parks on an event with no timeout while holding a mutex",
        rationale=(
            "if the signaler ever needs the held mutex the system "
            "deadlocks, and nothing bounds the wait; release first, or "
            "park with a timeout"
        ),
        runtime_checked=True,
    )
)


#: Fast-path gate read by the margo-layer hooks (pool/ult/xstream/runtime).
ENABLED: bool = False

#: Seeded ready-queue perturbation source, read by ``Pool.pop``.
PERTURB: Optional[Random] = None

#: When not None, scheduling events are appended here (explorer runs).
TRACE: Optional[list[str]] = None

#: Race findings in detection order (deterministic per seed).
findings: list[Finding] = []

_STATE = HBState()
_LOCKS = LockOrderGraph()
_reported: set[tuple] = set()

#: Lazily-resolved ``current_ult`` (imports margo on first hook call).
_current_ult: Optional[Callable[[], Any]] = None

#: The context of the timer currently firing (built lazily per fire).
_FIRE: Optional[Ctx] = None
_FIRE_WRAP: Optional["_TimerWrap"] = None


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def enable() -> None:
    """Turn the race layer on (idempotent).

    Swaps the instrumented ``SimKernel.schedule`` in so every timer
    carries its scheduler's clock; all other hooks read :data:`ENABLED`.
    """
    global ENABLED
    if ENABLED:
        return
    from ...sim import kernel as _kernel_mod

    _kernel_mod._set_race_hooks(sys.modules[__name__])
    ENABLED = True


def disable() -> None:
    global ENABLED
    if not ENABLED:
        return
    from ...sim import kernel as _kernel_mod

    _kernel_mod._set_race_hooks(None)
    ENABLED = False
    reset()


def reset() -> None:
    """Drop all recorded state (between scenarios / explorer runs)."""
    global _STATE, _LOCKS, _FIRE, _FIRE_WRAP, PERTURB, TRACE
    _STATE = HBState()
    _LOCKS = LockOrderGraph()
    _reported.clear()
    findings.clear()
    _FIRE = None
    _FIRE_WRAP = None
    PERTURB = None
    TRACE = None


def set_perturbation(seed: Optional[int]) -> None:
    """Install (or clear) the seeded ready-queue perturbation source."""
    global PERTURB
    PERTURB = None if seed is None else Random(seed)


# ----------------------------------------------------------------------
# context resolution
# ----------------------------------------------------------------------
def _fn_label(fn: Any) -> str:
    owner = getattr(fn, "__self__", None)
    name = getattr(owner, "name", "") if owner is not None else ""
    base = getattr(fn, "__qualname__", None) or type(fn).__name__
    return f"{base}:{name}" if name else base


def _current_ctx() -> Ctx:
    global _current_ult, _FIRE
    if _current_ult is None:
        from ...margo.ult import current_ult as _cu

        _current_ult = _cu
    ult = _current_ult()
    if ult is not None:
        return _STATE.ctx_for_ult(ult)
    if _FIRE is not None:
        return _FIRE
    if _FIRE_WRAP is not None:
        wrap = _FIRE_WRAP
        _FIRE = Ctx(wrap.snap, label=f"timer:{_fn_label(wrap.fn)}")
        return _FIRE
    return _STATE.root


# ----------------------------------------------------------------------
# timer propagation (installed into SimKernel.schedule when enabled)
# ----------------------------------------------------------------------
class _TimerWrap:
    """Carries the scheduler's clock snapshot to the fire context."""

    __slots__ = ("fn", "arg", "no_arg", "snap")

    def __init__(self, fn: Any, arg: Any, no_arg: Any, snap: dict) -> None:
        self.fn = fn
        self.arg = arg
        self.no_arg = no_arg
        self.snap = snap

    def __call__(self) -> None:
        global _FIRE, _FIRE_WRAP
        if TRACE is not None:
            TRACE.append(f"fire:{_fn_label(self.fn)}")
        prev_ctx, prev_wrap = _FIRE, _FIRE_WRAP
        _FIRE, _FIRE_WRAP = None, self
        try:
            if self.arg is self.no_arg:
                self.fn()
            else:
                self.fn(self.arg)
        finally:
            _FIRE, _FIRE_WRAP = prev_ctx, prev_wrap


def wrap_timer(fn: Any, arg: Any, no_arg: Any) -> _TimerWrap:
    """Called by the instrumented ``SimKernel.schedule``."""
    return _TimerWrap(fn, arg, no_arg, _current_ctx().publish())


def note_run_end() -> None:
    """End of ``SimKernel.run``: order the host after everything that ran."""
    _STATE.barrier_into_root()


# ----------------------------------------------------------------------
# scheduling / synchronization edges
# ----------------------------------------------------------------------
def note_push(pool: Any, ult: Any) -> None:
    """``Pool.push``: the pusher's clock flows into the pushed ULT."""
    ctx = _current_ctx()
    target = _STATE.ctx_for_ult(ult)
    if target is not ctx:
        target.join(ctx.publish())
    if TRACE is not None:
        TRACE.append(f"push:{pool.name}:{ult.name}")


def note_event_set(event: Any) -> None:
    """``UltEvent.set`` / ``SimEvent.set``: publish the setter's clock."""
    _STATE.publish_to(event, _current_ctx())


def note_event_join(event: Any) -> None:
    """Parking/waiting on an already-set event: join the set-time clock."""
    _STATE.join_from(event, _current_ctx())


def note_acquire(ult: Any, mutex: Any) -> None:
    """``UltMutex.acquire``: HB edge from the last releaser + lock order."""
    ctx = _current_ctx()
    _STATE.join_from(mutex, ctx)
    if ult is None:
        return
    cycle = _LOCKS.note_acquire(ult, mutex, where=getattr(ult, "name", "?"))
    if cycle is not None:
        key = (RULE_LOCK_ORDER_CYCLE, tuple(sorted(cycle)))
        if key not in _reported:
            _reported.add(key)
            findings.append(
                make_finding(
                    RULE_LOCK_ORDER_CYCLE,
                    path="race:lock-order",
                    line=0,
                    message=(
                        f"lock-order cycle {' -> '.join(cycle)} "
                        f"(closed by ULT {ult.name!r}); two ULTs taking "
                        "these mutexes concurrently can deadlock"
                    ),
                    source="runtime",
                )
            )


def note_release(ult: Any, mutex: Any) -> None:
    """``UltMutex.release``: publish the releaser's clock on the lock."""
    _STATE.publish_to(mutex, _current_ctx())
    _LOCKS.note_release(ult, mutex)


def note_park(ult: Any, cmd: Any) -> None:
    """``XStream._run_slice`` Park branch: wait-while-holding check."""
    if cmd.timeout is not None:
        return
    held = _LOCKS.held_names(ult)
    if not held:
        return
    event_name = getattr(cmd.event, "name", "") or "<unnamed>"
    if event_name.startswith("mutex:"):
        # Contended UltMutex.acquire parks on an internal gate event;
        # nested-acquisition ordering is the lock-order graph's job
        # (MCH040), not a wait-while-holding finding.
        return
    key = (RULE_WAIT_WHILE_HOLDING, ult.name, event_name, tuple(held))
    if key in _reported:
        return
    _reported.add(key)
    findings.append(
        make_finding(
            RULE_WAIT_WHILE_HOLDING,
            path="race:lock-order",
            line=0,
            message=(
                f"ULT {ult.name!r} parks on event {event_name!r} with no "
                f"timeout while holding mutex(es) {held}; if the signaler "
                "needs those locks this deadlocks, and nothing bounds the wait"
            ),
            source="runtime",
        )
    )


# ----------------------------------------------------------------------
# tracked shared state (the MCH03x checks)
# ----------------------------------------------------------------------
def track(state: Any, name: str = "") -> None:
    """Give ``state`` a display name for race reports (optional: tracked
    objects are auto-named on first access otherwise)."""
    _STATE.track(state, name)


def _report_pair(
    rule_id: str, state_name: str, key: Any, kinds: str, prev_label: str, cur_label: str
) -> None:
    dedup = (rule_id, state_name, repr(key), prev_label, cur_label)
    if dedup in _reported:
        return
    _reported.add(dedup)
    findings.append(
        make_finding(
            rule_id,
            path=f"race:{state_name}",
            line=0,
            message=(
                f"unordered {kinds} on {state_name}[{key!r}]: "
                f"{prev_label} vs {cur_label}; no synchronization edge "
                "orders them, so the outcome depends on the schedule"
            ),
            source="runtime",
        )
    )


def note_write(state: Any, key: Any, where: str) -> None:
    """A write to ``state[key]`` by the current context."""
    ctx = _current_ctx()
    tid = _STATE.ensure_tid(ctx)
    clock = ctx.clock
    var = _STATE.var(state, key)
    name = _STATE.track(state)
    label = f"{where} [{ctx.label}]"
    if (
        var.write_tid is not None
        and var.write_tid != tid
        and clock.get(var.write_tid, 0) < var.write_count
    ):
        _report_pair(
            RULE_UNORDERED_WRITES, name, key, "write/write", var.write_label, label
        )
    for rtid, (rcount, rlabel) in var.reads.items():
        if rtid != tid and clock.get(rtid, 0) < rcount:
            _report_pair(
                RULE_UNORDERED_READ_WRITE, name, key, "read/write", rlabel, label
            )
    var.write_tid = tid
    var.write_count = clock[tid]
    var.write_label = label
    var.reads.clear()


def note_read(state: Any, key: Any, where: str) -> None:
    """A read of ``state[key]`` by the current context."""
    ctx = _current_ctx()
    tid = _STATE.ensure_tid(ctx)
    var = _STATE.var(state, key)
    if (
        var.write_tid is not None
        and var.write_tid != tid
        and ctx.clock.get(var.write_tid, 0) < var.write_count
    ):
        name = _STATE.track(state)
        _report_pair(
            RULE_UNORDERED_READ_WRITE,
            name,
            key,
            "write/read",
            var.write_label,
            f"{where} [{ctx.label}]",
        )
    var.reads[tid] = (ctx.clock[tid], f"{where} [{ctx.label}]")


def report_order_dependence(scenario: str, seed: int, divergence: str) -> Finding:
    """Used by the explorer to emit MCH032 for a diverging scenario."""
    finding = make_finding(
        RULE_ORDER_DEPENDENT_OUTCOME,
        path=f"race:{scenario}",
        line=0,
        message=(
            f"final state of scenario {scenario!r} diverged under "
            f"perturbation seed {seed}; first diverging scheduling event: "
            f"{divergence}"
        ),
        source="runtime",
    )
    findings.append(finding)
    return finding


# Environment opt-in: REPRO_SANITIZE=race turns the race layer on (the
# classic sanitizer reads the same variable and switches to record mode).
if os.environ.get("REPRO_SANITIZE", "").strip().lower() == "race":
    enable()
