"""Vector-clock happens-before machinery for mochi-race.

The kernel is single-threaded, so there are no *data* races in the
hardware sense -- what the detector hunts is *order dependence*: two
accesses to the same shared state whose relative order is not forced by
any synchronization edge, and which the deterministic scheduler merely
happens to serialize one way.  Change the schedule (a new pool, a
perturbed ready queue, a slower network) and the other order runs --
that is exactly the reproducibility hazard the paper's dynamic features
(reconfiguration, migration, elasticity) introduce.

The model is FastTrack-flavored:

* a :class:`Ctx` is one logical thread of causality -- a ULT, a timer
  fire, or the host ("root") driving the simulation between runs;
* clocks are sparse dicts ``tid -> count``.  A context only gets a
  ``tid`` (and therefore an entry in anyone's clock) lazily, on its
  *first tracked access* -- timer fires and ULTs that never touch
  tracked state cost no clock space no matter how many there are;
* every *publication* (scheduling a timer, pushing a ULT, setting an
  event, releasing a mutex) snapshots the publisher's clock and then
  increments the publisher's own component, so the publisher's *later*
  accesses can never appear ordered before the receiver;
* each tracked variable keeps a write epoch ``(tid, count)`` plus a
  read map ``tid -> count``; an access races with a prior epoch
  ``(t, c)`` iff the accessor's clock has ``clock.get(t, 0) < c``.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Ctx", "VarState", "HBState"]


class Ctx:
    """One logical thread of causality (ULT / timer fire / root)."""

    __slots__ = ("clock", "tid", "label")

    def __init__(self, clock: Optional[dict[str, int]] = None, label: str = "") -> None:
        self.clock: dict[str, int] = clock if clock is not None else {}
        self.tid: Optional[str] = None
        self.label = label

    def join(self, other_clock: dict[str, int]) -> None:
        clock = self.clock
        for tid, count in other_clock.items():
            if count > clock.get(tid, 0):
                clock[tid] = count

    def publish(self) -> dict[str, int]:
        """Snapshot the clock for a receiver, then advance own component.

        The root context never advances: the host driving the simulation
        is single-threaded, so *everything* it does is ordered before
        every event of every subsequent ``kernel.run()`` -- a constant
        ``root`` epoch (plus the run-end barrier joining everyone back
        into root) encodes exactly that total order.  Incrementing would
        instead make late pre-run root actions (e.g. registering an RPC
        after scheduling a timer) look concurrent with the run.
        """
        snap = dict(self.clock)
        tid = self.tid
        if tid is not None and tid != "root":
            self.clock[tid] += 1
        return snap


class VarState:
    """Per-(state, key) access history: one write epoch + a read map."""

    __slots__ = ("write_tid", "write_count", "write_label", "reads")

    def __init__(self) -> None:
        self.write_tid: Optional[str] = None
        self.write_count = 0
        self.write_label = ""
        #: tid -> (count, label) of reads since the last write.
        self.reads: dict[str, tuple[int, str]] = {}


class HBState:
    """All mutable happens-before state for one detection session."""

    def __init__(self) -> None:
        self.root = Ctx(label="root")
        self.root.tid = "root"
        self.root.clock["root"] = 1
        #: id(ult) -> (ult, Ctx); the strong ref pins id() uniqueness.
        self.ult_ctx: dict[int, tuple[Any, Ctx]] = {}
        #: id(event/mutex) -> (obj, clock snapshot at last publication).
        self.sync_clock: dict[int, tuple[Any, dict[str, int]]] = {}
        #: (id(state), key) -> VarState; state objects pinned separately.
        self.vars: dict[tuple[int, Any], VarState] = {}
        #: id(state) -> (state, display name).
        self.tracked: dict[int, tuple[Any, str]] = {}
        self._tid_counter = 0
        self._state_counter = 0

    # ------------------------------------------------------------------
    def ensure_tid(self, ctx: Ctx) -> str:
        """Assign a deterministic tid on first tracked access."""
        if ctx.tid is None:
            self._tid_counter += 1
            ctx.tid = f"c{self._tid_counter}"
            ctx.clock[ctx.tid] = 1
        return ctx.tid

    def ctx_for_ult(self, ult: Any) -> Ctx:
        key = id(ult)
        entry = self.ult_ctx.get(key)
        if entry is None:
            ctx = Ctx(label=f"ult:{getattr(ult, 'name', '?')}")
            self.ult_ctx[key] = (ult, ctx)
            return ctx
        return entry[1]

    def publish_to(self, obj: Any, ctx: Ctx) -> None:
        """Record ``ctx``'s publication on a sync object (event/mutex)."""
        self.sync_clock[id(obj)] = (obj, ctx.publish())

    def join_from(self, obj: Any, ctx: Ctx) -> None:
        entry = self.sync_clock.get(id(obj))
        if entry is not None:
            ctx.join(entry[1])

    def track(self, state: Any, name: str = "") -> str:
        key = id(state)
        entry = self.tracked.get(key)
        if entry is not None:
            if name and entry[1].startswith("state-"):
                self.tracked[key] = (state, name)
                return name
            return entry[1]
        if not name:
            self._state_counter += 1
            name = f"state-{self._state_counter}:{type(state).__name__}"
        self.tracked[key] = (state, name)
        return name

    def var(self, state: Any, key: Any) -> VarState:
        vkey = (id(state), key)
        entry = self.vars.get(vkey)
        if entry is None:
            entry = self.vars[vkey] = VarState()
        return entry

    def barrier_into_root(self) -> None:
        """Order root after everything that ran (end of ``kernel.run``).

        Root's own component stays constant (see :meth:`Ctx.publish`);
        the join is what makes subsequent root accesses ordered after
        every context of the finished run.
        """
        root = self.root
        for _ult, ctx in self.ult_ctx.values():
            root.join(ctx.clock)
        for _obj, clock in self.sync_clock.values():
            root.join(clock)
