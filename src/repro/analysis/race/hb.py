"""Vector-clock happens-before machinery for mochi-race.

The kernel is single-threaded, so there are no *data* races in the
hardware sense -- what the detector hunts is *order dependence*: two
accesses to the same shared state whose relative order is not forced by
any synchronization edge, and which the deterministic scheduler merely
happens to serialize one way.  Change the schedule (a new pool, a
perturbed ready queue, a slower network) and the other order runs --
that is exactly the reproducibility hazard the paper's dynamic features
(reconfiguration, migration, elasticity) introduce.

The model is FastTrack-flavored:

* a :class:`Ctx` is one logical thread of causality -- a ULT, a timer
  fire, or the host ("root") driving the simulation between runs;
* clocks are sparse dicts ``tid -> count``.  A context only gets a
  ``tid`` (and therefore an entry in anyone's clock) lazily, on its
  *first tracked access* -- timer fires and ULTs that never touch
  tracked state cost no clock space no matter how many there are;
* every *publication* (scheduling a timer, pushing a ULT, setting an
  event, releasing a mutex) snapshots the publisher's clock and then
  increments the publisher's own component, so the publisher's *later*
  accesses can never appear ordered before the receiver;
* each tracked variable keeps a write epoch ``(tid, count)`` plus a
  read map ``tid -> count``; an access races with a prior epoch
  ``(t, c)`` iff the accessor's clock has ``clock.get(t, 0) < c``.

Two P1 cost disciplines live here (see :mod:`.hooks` for the sampling
policy built on top):

* **Copy-on-write clocks.**  A timer-fire context *borrows* the clock
  dict carried by its wrap instead of copying it; the dict is only
  copied if the fire context itself mutates (first tracked access or a
  join).  Fires that merely propagate -- the overwhelming majority --
  allocate nothing.
* **Epoch snapshots.**  :meth:`Ctx.publish_epoch` returns a cached
  snapshot *without* advancing the publisher's component; the cache
  invalidates on any clock mutation (join, tid assignment, an exact
  publish).  Skipping the increment merges the publisher's accesses
  between two epoch boundaries into one interval, which can only make
  the happens-before relation *stronger* than reality -- so epoch
  publication may miss a race inside the window (bounded by the
  sampling period) but can never report a false one.
* **The approximation clock R** (:func:`approx_snapshot`): a pointwise
  upper bound on every live clock, published in place of a timer-fire
  context's true clock in epoch mode, where the kernel's hot paths are
  left entirely un-instrumented.  Same one-sided error: R only adds
  happens-before edges.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Ctx", "VarState", "HBState", "approx_snapshot"]


# ----------------------------------------------------------------------
# the approximation clock R (epoch mode's timer-edge substitute)
# ----------------------------------------------------------------------
# R maps every tid to the highest count any clock has ever held for it,
# folded at the only two points counts change: tid assignment
# (:meth:`HBState.ensure_tid`) and an exact publish
# (:meth:`Ctx.publish`).  By construction every live context's clock is
# pointwise <= R, so joining R in place of a publisher's true clock can
# only *add* happens-before edges, never remove one: sound (no false
# positives), coarse (each extra edge is a potential missed race, and
# nothing more).
#
# Epoch mode (``race_sample_every`` > 1) leaves the kernel's
# ``schedule``/``post`` un-swapped, so timer fires resolve to the root
# context; publications made from such fires hand out R instead of
# root's own constant clock.  Exact mode never consults R.
#
# Module-level rather than per-:class:`HBState` because
# :meth:`Ctx.publish` carries no back-reference to its session; exactly
# one detection session is live at a time (``hooks.reset()`` builds a
# fresh ``HBState``, whose ``__init__`` clears R).

_APPROX: dict[str, int] = {"root": 1}
_approx_snap: Optional[dict[str, int]] = None


def _approx_fold(tid: str, count: int) -> None:
    global _approx_snap
    _APPROX[tid] = count
    _approx_snap = None


def approx_snapshot() -> dict[str, int]:
    """Cached copy of R; receivers only ever join it, never mutate it."""
    global _approx_snap
    snap = _approx_snap
    if snap is None:
        snap = _approx_snap = dict(_APPROX)
    return snap


def _approx_reset() -> None:
    global _approx_snap
    _APPROX.clear()
    _APPROX["root"] = 1
    _approx_snap = None


class Ctx:
    """One logical thread of causality (ULT / timer fire / root)."""

    __slots__ = ("clock", "tid", "_label", "_borrowed", "_snap", "last_join")

    def __init__(
        self,
        clock: Optional[dict[str, int]] = None,
        label: Any = "",
        borrowed: bool = False,
    ) -> None:
        self.clock: dict[str, int] = clock if clock is not None else {}
        self.tid: Optional[str] = None
        #: Either a display string or a lazy provider with ``describe()``
        #: (building timer labels eagerly was measurably hot).
        self._label = label
        #: True while ``clock`` is a dict shared with a publisher's
        #: snapshot; any mutation must copy first (:meth:`own`).
        self._borrowed = borrowed
        #: Cached :meth:`publish_epoch` snapshot; ``None`` when stale.
        self._snap: Optional[dict[str, int]] = None
        #: The last snapshot dict joined via a push edge.  Snapshot
        #: dicts (epoch caches, R copies) are *replaced* on invalidation,
        #: never mutated, and :meth:`join` is idempotent -- so an
        #: identity match proves the re-join would be a no-op, and the
        #: hot push path skips it (see ``hooks.note_push``).
        self.last_join: Optional[dict[str, int]] = None

    @property
    def label(self) -> str:
        label = self._label
        if type(label) is not str:
            describe = getattr(label, "describe", None)
            if describe is not None:
                label = describe()
            else:
                # A bare ULT (ctx_for_ult defers the format: most ULT
                # contexts never appear in a report).
                label = f"ult:{getattr(label, 'name', '?')}"
            self._label = label
        return label

    def own(self) -> None:
        """Ensure ``clock`` is privately owned before mutating it."""
        if self._borrowed:
            self.clock = dict(self.clock)
            self._borrowed = False

    def join(self, other_clock: dict[str, int]) -> None:
        if self._borrowed:
            self.clock = dict(self.clock)
            self._borrowed = False
        clock = self.clock
        changed = False
        for tid, count in other_clock.items():
            if count > clock.get(tid, 0):
                clock[tid] = count
                changed = True
        if changed:
            # Only a join that moved the clock invalidates the epoch
            # snapshot cache: steady-state re-joins (a ULT re-parking on
            # the same event, say) keep the cache -- and with it the
            # identity memos built on snapshot identity -- intact.
            self._snap = None

    def publish(self) -> dict[str, int]:
        """Snapshot the clock for a receiver, then advance own component.

        The root context never advances: the host driving the simulation
        is single-threaded, so *everything* it does is ordered before
        every event of every subsequent ``kernel.run()`` -- a constant
        ``root`` epoch (plus the run-end barrier joining everyone back
        into root) encodes exactly that total order.  Incrementing would
        instead make late pre-run root actions (e.g. registering an RPC
        after scheduling a timer) look concurrent with the run.
        """
        snap = dict(self.clock)
        tid = self.tid
        if tid is not None and tid != "root":
            # A tid implies ensure_tid ran, which owned the clock.
            count = self.clock[tid] + 1
            self.clock[tid] = count
            _approx_fold(tid, count)
            self._snap = None
        return snap

    def publish_epoch(self) -> dict[str, int]:
        """Snapshot without advancing: the epoch-batched publication.

        Receivers observe exactly the current clock (identical to what
        :meth:`publish` would hand out), so no check anywhere gains a
        spurious edge -- only the publisher's own *later* accesses fold
        into the same interval (missed-race window, never a false
        positive).  The snapshot is cached until the clock mutates, and
        a borrowed clock is itself a frozen snapshot, so the steady
        state copies nothing.
        """
        snap = self._snap
        if snap is None:
            if self._borrowed:
                snap = self.clock
            else:
                snap = dict(self.clock)
            self._snap = snap
        return snap


class VarState:
    """Per-(state, key) access history: one write epoch + a read map.

    Access records keep the raw ``where`` string and the accessor
    :class:`Ctx`; report labels are formatted only when a race is
    actually flagged (``ensure_tid`` pins every recorded context's
    label to a string first, so deferral never reads a recycled label
    provider).
    """

    __slots__ = ("write_tid", "write_count", "write_where", "write_ctx", "reads")

    def __init__(self) -> None:
        self.write_tid: Optional[str] = None
        self.write_count = 0
        self.write_where = ""
        self.write_ctx: Optional[Ctx] = None
        #: tid -> (count, where, ctx) of reads since the last write.
        self.reads: dict[str, tuple[int, str, Ctx]] = {}


class HBState:
    """All mutable happens-before state for one detection session."""

    def __init__(self) -> None:
        self.root = Ctx(label="root")
        self.root.tid = "root"
        self.root.clock["root"] = 1
        #: id(ult) -> (ult, Ctx); the strong ref pins id() uniqueness.
        self.ult_ctx: dict[int, tuple[Any, Ctx]] = {}
        #: id(event/mutex) -> (obj, clock snapshot at last publication).
        self.sync_clock: dict[int, tuple[Any, dict[str, int]]] = {}
        #: (id(state), key) -> VarState; state objects pinned separately.
        self.vars: dict[tuple[int, Any], VarState] = {}
        #: id(state) -> (state, display name).
        self.tracked: dict[int, tuple[Any, str]] = {}
        self._tid_counter = 0
        self._state_counter = 0
        _approx_reset()

    # ------------------------------------------------------------------
    def ensure_tid(self, ctx: Ctx) -> str:
        """Assign a deterministic tid on first tracked access."""
        if ctx.tid is None:
            self._tid_counter += 1
            ctx.own()
            ctx.tid = f"c{self._tid_counter}"
            ctx.clock[ctx.tid] = 1
            ctx._snap = None
            _approx_fold(ctx.tid, 1)
            if type(ctx._label) is not str:
                # Pin the label now, while its provider (a timer wrap,
                # which may be recycled after the fire) is still live;
                # access records defer formatting to report time.
                _ = ctx.label
        return ctx.tid

    def ctx_for_ult(self, ult: Any) -> Ctx:
        key = id(ult)
        entry = self.ult_ctx.get(key)
        if entry is None:
            ctx = Ctx(label=ult)
            self.ult_ctx[key] = (ult, ctx)
            return ctx
        return entry[1]

    def publish_to(self, obj: Any, ctx: Ctx) -> None:
        """Record ``ctx``'s publication on a sync object (event/mutex)."""
        self.sync_clock[id(obj)] = (obj, ctx.publish())

    def publish_to_epoch(self, obj: Any, ctx: Ctx) -> None:
        """Epoch-batched publication on a sync object (non-lock edges)."""
        self.sync_clock[id(obj)] = (obj, ctx.publish_epoch())

    def publish_snapshot(self, obj: Any, snap: dict[str, int]) -> None:
        """Record a pre-computed publication snapshot (e.g. the
        approximation clock R) on a sync object."""
        self.sync_clock[id(obj)] = (obj, snap)

    def join_from(self, obj: Any, ctx: Ctx) -> None:
        entry = self.sync_clock.get(id(obj))
        if entry is not None:
            snap = entry[1]
            # Same identity memo as the push edge (snapshot dicts are
            # replaced, never mutated; joins are idempotent).  The slot
            # is shared across edge kinds -- alternation just means an
            # extra no-op join, never a missed one.
            if ctx.last_join is not snap:
                ctx.join(snap)
                ctx.last_join = snap

    def track(self, state: Any, name: str = "") -> str:
        key = id(state)
        entry = self.tracked.get(key)
        if entry is not None:
            if name and entry[1].startswith("state-"):
                self.tracked[key] = (state, name)
                return name
            return entry[1]
        if not name:
            self._state_counter += 1
            name = f"state-{self._state_counter}:{type(state).__name__}"
        self.tracked[key] = (state, name)
        return name

    def var(self, state: Any, key: Any) -> VarState:
        vkey = (id(state), key)
        entry = self.vars.get(vkey)
        if entry is None:
            entry = self.vars[vkey] = VarState()
        return entry

    def barrier_into_root(self) -> None:
        """Order root after everything that ran (end of ``kernel.run``).

        Root's own component stays constant (see :meth:`Ctx.publish`);
        the join is what makes subsequent root accesses ordered after
        every context of the finished run.
        """
        root = self.root
        # Borrowed clocks make this loop mostly duplicates: every ULT
        # whose first push carried the same snapshot (e.g. the cached R
        # copy) shares that dict by identity, and joins are idempotent.
        seen: set[int] = set()
        for _ult, ctx in self.ult_ctx.values():
            clock = ctx.clock
            if id(clock) in seen:
                continue
            seen.add(id(clock))
            root.join(clock)
        for _obj, clock in self.sync_clock.values():
            if id(clock) in seen:
                continue
            seen.add(id(clock))
            root.join(clock)
