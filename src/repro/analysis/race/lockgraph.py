"""Lock-order graph: deadlock *potential* detection (MCH04x).

A deadlock needs a cycle in the lock-acquisition-order graph, but any
single run usually serializes the acquisitions and never trips it.  The
graph persists the order across the whole session: whenever a ULT
acquires mutex B while holding mutex A, the edge ``A -> B`` is recorded;
a cycle among the recorded edges is reported (MCH040) even though no
run ever actually deadlocked.  Waiting on an event with no timeout while
holding a mutex (MCH041) is the other classic shape: the signaler may
need the held mutex, and nothing bounds the wait.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["LockOrderGraph"]


class LockOrderGraph:
    """Acquisition-order edges between mutexes, plus per-ULT held sets."""

    def __init__(self) -> None:
        #: id(mutex) -> (mutex, display name); strong ref pins id().
        self.locks: dict[int, tuple[Any, str]] = {}
        #: id(mutex) -> ordered {id(successor): (held name, acq name, where)}.
        self.edges: dict[int, dict[int, tuple[str, str, str]]] = {}
        #: id(ult) -> (ult, [lock ids in acquisition order]).
        self.held: dict[int, tuple[Any, list[int]]] = {}
        #: cycle signatures already reported (frozenset of lock ids).
        self.reported_cycles: set[frozenset[int]] = set()
        self._counter = 0

    # ------------------------------------------------------------------
    def name_of(self, mutex: Any) -> str:
        entry = self.locks.get(id(mutex))
        if entry is None:
            self._counter += 1
            name = getattr(mutex, "name", "") or f"mutex-{self._counter}"
            self.locks[id(mutex)] = (mutex, name)
            return name
        return entry[1]

    def held_names(self, ult: Any) -> list[str]:
        entry = self.held.get(id(ult))
        if entry is None:
            return []
        return [self.locks[lid][1] for lid in entry[1]]

    # ------------------------------------------------------------------
    def note_acquire(self, ult: Any, mutex: Any, where: str) -> Optional[list[str]]:
        """Record the acquisition; return a cycle (as lock names) if this
        edge closes a previously-unreported one."""
        name = self.name_of(mutex)
        mid = id(mutex)
        entry = self.held.get(id(ult))
        if entry is None:
            entry = self.held[id(ult)] = (ult, [])
        held_ids = entry[1]
        cycle: Optional[list[str]] = None
        for held_id in held_ids:
            if held_id == mid:
                continue
            succ = self.edges.setdefault(held_id, {})
            if mid not in succ:
                succ[mid] = (self.locks[held_id][1], name, where)
            found = self._find_path(mid, held_id)
            if found is not None:
                signature = frozenset(found)
                if signature not in self.reported_cycles:
                    self.reported_cycles.add(signature)
                    cycle = [self.locks[lid][1] for lid in found + [found[0]]]
        held_ids.append(mid)
        return cycle

    def note_release(self, ult: Any, mutex: Any) -> None:
        mid = id(mutex)
        entry = self.held.get(id(ult))
        if entry is not None and mid in entry[1]:
            entry[1].remove(mid)
            return
        # Cross-ULT release (legal for handoff protocols): find the holder.
        for _ult, held_ids in self.held.values():
            if mid in held_ids:
                held_ids.remove(mid)
                return

    def _find_path(self, start: int, goal: int) -> Optional[list[int]]:
        """DFS over recorded edges; returns the lock-id path start..goal."""
        stack: list[tuple[int, list[int]]] = [(start, [start])]
        seen: set[int] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for succ in self.edges.get(node, {}):
                if succ not in seen:
                    stack.append((succ, path + [succ]))
        return None
