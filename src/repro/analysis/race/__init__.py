"""mochi-race: concurrency correctness for the simulated Mochi runtime.

Three detectors, one reporting pipeline:

* :mod:`.hb` + :mod:`.hooks` -- vector-clock happens-before engine
  flagging unordered accesses to tracked shared state (MCH030/MCH031);
* :mod:`.lockgraph` -- lock-order cycles and wait-while-holding
  deadlock potential (MCH040/MCH041), reported without the deadlock
  ever firing;
* :mod:`.explore` -- deterministic schedule explorer re-running a
  scenario under seeded ready-queue perturbations and pinning
  order-dependent outcomes (MCH032) to the first diverging event.

Only :mod:`.hooks` is imported here: it registers the rules and is safe
to import from anywhere (stdlib + analysis core only).  The explorer and
its scenarios import the full runtime stack; pull them in explicitly.
"""

from . import hooks

__all__ = ["hooks"]
