"""Runtime sanitizer: dynamic enforcement of the invariants the AST
cannot prove (``REPRO_SANITIZE=1``).

The static pass (:mod:`repro.analysis.rules`) sees only syntax; whether
a ULT *actually* suspends while holding a mutex, or an RPC handler ULT
*actually* dies without sending its response, depends on runtime data
flow.  This module is the dynamic half of the same contract, and it
reports under the same rule ids:

* ``MCH011`` -- a ULT gave up its execution stream (Park / UltSleep)
  while holding a :class:`~repro.margo.ult.UltMutex`, or finished with
  the mutex still held;
* ``MCH012`` -- a dispatched RPC handler ULT finished without a response
  ever hitting the wire, or a healthy process finalized with handler
  ULTs still pending;
* ``MCH070`` -- respond exactly once: a handler called
  ``context.respond()`` twice, or raised / returned a value after its
  explicit reply had already hit the wire (the caller never sees
  either).  This is the runtime half of the static mochi-flow rule,
  the same static/runtime split MCH011 and MCH012 already have.

The hooks in ``ult.py`` / ``xstream.py`` / ``runtime.py`` are guarded by
the module attribute :data:`ENABLED`, so the disabled cost is one
attribute load per blocking yield.  Enable via the environment
(``REPRO_SANITIZE=1`` before the first import) or programmatically with
:func:`enable`; ``strict`` mode raises :class:`SanitizerError` at the
violation point, record mode accumulates :data:`violations` for
inspection (and for the diagnostics report).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..margo.ult import ULT, UltMutex

__all__ = [
    "SanitizerError",
    "enable",
    "disable",
    "reset",
    "enabled",
    "violations",
    "ENABLED",
]

RULE_LOCK_ACROSS_YIELD = "MCH011"
RULE_DROPPED_HANDLE = "MCH012"
RULE_RESPOND = "MCH070"


class SanitizerError(AssertionError):
    """A determinism / cooperative-scheduling invariant was violated."""

    def __init__(self, finding: Finding) -> None:
        super().__init__(finding.format())
        self.finding = finding


#: Fast-path gate read by the margo runtime hooks.  ``REPRO_SANITIZE=race``
#: also counts: the race layer (:mod:`repro.analysis.race.hooks`) reads
#: the same variable and enables itself, while the classic sanitizer runs
#: in record (non-strict) mode so race findings are not preempted by a
#: raising MCH011/MCH012.
_env = os.environ.get("REPRO_SANITIZE", "").strip().lower()
ENABLED: bool = _env in ("1", "true", "yes", "race")

_strict: bool = _env != "race"

#: Violations recorded in non-strict mode (and, in strict mode, the one
#: violation that raised).
violations: list[Finding] = []

#: id(ult) -> list of held mutexes (insertion order).
_held: dict[int, list["UltMutex"]] = {}

#: (id(margo), seq) -> rpc name, for dispatched-but-unresponded handlers.
_pending_handles: dict[tuple[int, int], str] = {}

#: (id(margo), seq) handles answered via an explicit ``respond()`` call.
_responded_handles: set[tuple[int, int]] = set()


def enable(strict: bool = True) -> None:
    """Turn the sanitizer on (``strict``: raise at the violation point)."""
    global ENABLED, _strict
    ENABLED = True
    _strict = strict


def disable() -> None:
    global ENABLED
    ENABLED = False
    reset()


def enabled() -> bool:
    return ENABLED


def reset() -> None:
    """Drop all recorded state (between tests / simulation runs)."""
    violations.clear()
    _held.clear()
    _pending_handles.clear()
    _responded_handles.clear()


def _make_finding(rule_id: str, message: str, context: str = "") -> Finding:
    return Finding(
        rule_id=rule_id,
        severity=Severity.ERROR,
        path=context or "<runtime>",
        line=0,
        message=message,
        source="runtime",
    )


def _report(rule_id: str, message: str, context: str = "") -> None:
    finding = _make_finding(rule_id, message, context)
    violations.append(finding)
    if _strict:
        raise SanitizerError(finding)


def _report_at_finish(ult: Any, rule_id: str, message: str, context: str) -> None:
    """Report a violation detected in a ULT's ``on_finish`` hook.

    There is no live generator to throw into, and raising here would
    propagate through ``ULT.finish`` into the xstream's scheduling loop,
    killing the stream (and every other ULT it serves).  Instead, strict
    mode attaches the error to the finished ULT, where ``run_ult`` /
    ``wait_ults`` re-raise it -- unless the ULT already died of a primary
    error (e.g. the suspend-while-holding raise that caused this state).
    """
    finding = _make_finding(rule_id, message, context)
    violations.append(finding)
    if _strict and getattr(ult, "error", None) is None:
        ult.error = SanitizerError(finding)


# ----------------------------------------------------------------------
# MCH011: lock held across a yield
# ----------------------------------------------------------------------
def note_acquire(ult: Any, mutex: "UltMutex") -> None:
    """Called by ``UltMutex.acquire`` once the lock is taken."""
    if ult is None:
        return
    key = id(ult)
    held = _held.get(key)
    if held is None:
        held = _held[key] = []
        ult.on_finish.append(_ult_finished_holding)
    held.append(mutex)


def note_release(ult: Any, mutex: "UltMutex") -> None:
    """Called by ``UltMutex.release``; tolerates cross-ULT releases."""
    if ult is not None:
        held = _held.get(id(ult))
        if held is not None and mutex in held:
            held.remove(mutex)
            return
    # Released from outside the owning ULT (or non-ULT context): find it.
    for held in _held.values():
        if mutex in held:
            held.remove(mutex)
            return


def check_blocking_yield(ult: "ULT", cmd: Any) -> None:
    """Called by ``XStream._run_slice`` when ``ult`` gives up the stream."""
    held = _held.get(id(ult))
    if held:
        names = [m.name or "<unnamed>" for m in held]
        _report(
            RULE_LOCK_ACROSS_YIELD,
            f"ULT {ult.name!r} suspended ({type(cmd).__name__}) while "
            f"holding mutex(es) {names}; release before parking or sleeping",
            context=f"ult:{ult.name}",
        )


def _ult_finished_holding(ult: "ULT") -> None:
    held = _held.pop(id(ult), None)
    if held:
        names = [m.name or "<unnamed>" for m in held]
        _report_at_finish(
            ult,
            RULE_LOCK_ACROSS_YIELD,
            f"ULT {ult.name!r} finished while still holding mutex(es) "
            f"{names}; every waiter is now deadlocked",
            context=f"ult:{ult.name}",
        )


# ----------------------------------------------------------------------
# MCH070: respond exactly once (runtime half of the mochi-flow rule)
# ----------------------------------------------------------------------
def note_explicit_respond(margo: Any, request: Any, already: bool) -> None:
    """Called by ``RequestContext.respond`` at its send point.

    ``already`` is the context's own responded flag; the handle set
    catches the same double-reply when a handler builds two contexts
    for one request.
    """
    key = (id(margo), request.seq)
    if already or key in _responded_handles:
        _report(
            RULE_RESPOND,
            f"handler for RPC {request.rpc_name!r} (seq {request.seq}) "
            "called respond() twice; each request must be answered "
            "exactly once",
            context=f"margo:{margo.process.name}",
        )
        return
    _responded_handles.add(key)


def note_post_respond(
    margo: Any, request: Any, ok: bool, value: Any, error_message: Any
) -> None:
    """Called by ``_handler_body`` when a handler that already replied
    via ``respond()`` went on to raise or return a value -- neither can
    reach the caller, so silence here would hide real failures."""
    key = (id(margo), request.seq)
    _responded_handles.discard(key)
    if not ok:
        _report(
            RULE_RESPOND,
            f"handler for RPC {request.rpc_name!r} (seq {request.seq}) "
            f"raised after respond() ({error_message}); the caller "
            "already got a success reply and never sees this error",
            context=f"margo:{margo.process.name}",
        )
    elif value is not None:
        _report(
            RULE_RESPOND,
            f"handler for RPC {request.rpc_name!r} (seq {request.seq}) "
            "returned a value after respond(); the value is silently "
            "dropped -- pass it to respond() instead",
            context=f"margo:{margo.process.name}",
        )


# ----------------------------------------------------------------------
# MCH012: handler dropped its handle
# ----------------------------------------------------------------------
def note_handler_dispatched(margo: Any, request: Any, ult: "ULT") -> None:
    """Called by ``MargoInstance._dispatch_request`` after the push."""
    key = (id(margo), request.seq)
    _pending_handles[key] = request.rpc_name
    ult.on_finish.append(_HandlerFinished(margo, request.seq))


def note_handler_responded(margo: Any, seq: int) -> None:
    """Called by ``MargoInstance._handler_body`` once the response is sent."""
    _pending_handles.pop((id(margo), seq), None)


class _HandlerFinished:
    """on_finish probe: the handler ULT ended -- did it ever respond?"""

    __slots__ = ("margo", "seq")

    def __init__(self, margo: Any, seq: int) -> None:
        self.margo = margo
        self.seq = seq

    def __call__(self, ult: "ULT") -> None:
        _responded_handles.discard((id(self.margo), self.seq))
        name = _pending_handles.pop((id(self.margo), self.seq), None)
        if name is not None:
            _report_at_finish(
                ult,
                RULE_DROPPED_HANDLE,
                f"handler ULT {ult.name!r} for RPC {name!r} finished without "
                "responding; the caller is left waiting for its timeout",
                context=f"margo:{self.margo.process.name}",
            )


def check_margo_shutdown(margo: Any) -> None:
    """Called by ``MargoInstance.shutdown``.

    A *healthy* process must not finalize with dispatched handlers still
    pending.  Processes that were killed (fault injection) are exempt:
    dropping in-flight handles is exactly what a crash does.
    """
    mid = id(margo)
    for key in [k for k in _responded_handles if k[0] == mid]:
        _responded_handles.discard(key)
    if not margo.process.alive:
        for key in [k for k in _pending_handles if k[0] == mid]:
            del _pending_handles[key]
        return
    stuck = sorted(
        (seq, name) for (owner, seq), name in _pending_handles.items() if owner == mid
    )
    for seq, name in stuck:
        del _pending_handles[(mid, seq)]
        _report(
            RULE_DROPPED_HANDLE,
            f"margo instance finalized with handler for RPC {name!r} "
            f"(seq {seq}) still pending; it never responded",
            context=f"margo:{margo.process.name}",
        )
