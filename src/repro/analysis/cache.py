"""Incremental lint cache.

Per-file rule results are keyed on a content hash under
``.repro-lint-cache/`` so re-linting an unchanged tree costs one hash
per file instead of one parse + rule walk.  The key covers everything
that could change a file's findings:

* the file's *content* (sha256 of the source text) and its *path*
  (findings embed the path, so a moved file misses);
* the *rule set signature* -- cache schema version, engine rule ids,
  and the active ``--select`` / ``--ignore`` filters -- so adding a
  rule, bumping :data:`CACHE_SCHEMA`, or changing filters invalidates
  everything automatically.

Only Python per-file results are cached.  Config-JSON validation is a
*cross-file* check (pool references resolve across documents), so
keying it on one file's content would be unsound -- it simply reruns.
Whole-program (``--interproc``) passes also rerun every time, but they
reuse the parses this cache's bookkeeping already paid for.

The store is one JSON document, pruned on save to the keys the current
run touched (stale entries never accumulate), written atomically so an
interrupted run cannot corrupt it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Iterable, Optional

from .findings import Finding
from .registry import all_rules

__all__ = ["LintCache", "CACHE_SCHEMA", "DEFAULT_CACHE_DIR", "ruleset_signature"]

#: Bump when the cache entry format or any rule implementation changes
#: in a way the rule-id list cannot capture.  2: the mochi-flow layer
#: (MCH070-073) landed with ``check=None`` registrations -- invisible
#: to the rule-id list -- and retired MCH012 at flow-covered sites.
CACHE_SCHEMA = 2

DEFAULT_CACHE_DIR = ".repro-lint-cache"

_STORE_NAME = "cache.json"


def ruleset_signature(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> str:
    """A stable digest of everything that selects which rules run."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "rules": sorted(r.info.id for r in all_rules()),
            "select": sorted(select) if select else None,
            "ignore": sorted(ignore) if ignore else None,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class LintCache:
    """Content-hash-keyed store of per-file findings."""

    def __init__(
        self,
        directory: str = DEFAULT_CACHE_DIR,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        self.directory = directory
        self.signature = ruleset_signature(select, ignore)
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, list[dict]] = {}
        self._touched: set[str] = set()
        self._load()

    # -- persistence ---------------------------------------------------
    @property
    def _store_path(self) -> str:
        return os.path.join(self.directory, _STORE_NAME)

    def _load(self) -> None:
        try:
            with open(self._store_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("signature") != self.signature:
            return  # rule set / engine / filter change: start cold
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def save(self) -> None:
        """Write the store atomically, pruned to this run's keys."""
        os.makedirs(self.directory, exist_ok=True)
        kept = {
            key: self._entries[key]
            for key in sorted(self._touched)
            if key in self._entries
        }
        payload = json.dumps(
            {"signature": self.signature, "entries": kept},
            sort_keys=True,
            indent=1,
        )
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, self._store_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- lookup --------------------------------------------------------
    def key(self, path: str, source: str) -> str:
        digest = hashlib.sha256()
        digest.update(path.encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def get(self, key: str) -> Optional[list[Finding]]:
        """Cached findings for ``key``, or None on a miss."""
        entry = self._entries.get(key)
        self._touched.add(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return [
            Finding(
                rule_id=item["rule_id"],
                severity=item["severity"],
                path=item["path"],
                line=item["line"],
                message=item["message"],
                source=item.get("source", "static"),
            )
            for item in entry
        ]

    def put(self, key: str, findings: list[Finding]) -> None:
        self._entries[key] = [f.to_json() for f in findings]
        self._touched.add(key)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
