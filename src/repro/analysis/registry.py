"""The mochi-lint rule registry.

Every rule -- static AST rule, configuration cross-check, or runtime
sanitizer assertion -- registers here under a stable ``MCH0xx`` id so
that suppressions, the CLI, the docs, and the sanitizer all speak the
same vocabulary.

Rule id blocks:

* ``MCH00x`` -- determinism (wall clock, unseeded randomness,
  environment-dependent iteration), observability (``MCH004``:
  monitoring callbacks growing unbounded state), and performance
  (``MCH006``: per-event allocation inside ``# mochi-lint: hotpath``
  functions);
* ``MCH01x`` -- cooperative scheduling (blocking calls in ULTs,
  yield-while-holding-lock, handlers that never respond, misbehaving
  monitor hooks);
* ``MCH02x`` -- configuration (dangling pool references, duplicate
  names, unresolvable/cyclic provider dependencies);
* ``MCH03x``/``MCH04x`` -- concurrency (mochi-race: unordered accesses
  to shared state, order-dependent outcomes, lock-order cycles,
  wait-while-holding);
* ``MCH05x`` -- RPC contracts (mochi-deps: orphaned client calls, bad
  handler shapes, dead handlers);
* ``MCH06x`` -- partitioning & migration (cross-component shared-state
  writes, migration snapshot coverage);
* ``MCH07x`` -- flow protocols (mochi-flow: path-sensitive typestate
  over per-function CFGs -- respond-exactly-once, lock release balance,
  exception-path resource leaks, use-after-release/migrate);
* ``MCH09x`` -- meta (parse errors, bare suppressions).

``MCH014``/``MCH015`` and the ``MCH05x``/``MCH06x`` blocks are
whole-program rules: they register with ``check=None`` (no per-file
AST callback) and run from the interprocedural driver in
``analysis.interproc`` when ``--interproc`` is given.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Optional

from .findings import Finding, Severity

__all__ = [
    "RuleInfo",
    "AstRule",
    "FileContext",
    "register",
    "rule",
    "all_rules",
    "get_rule",
    "rule_catalog",
    "GROUP_DETERMINISM",
    "GROUP_OBSERVABILITY",
    "GROUP_SCHEDULING",
    "GROUP_CONFIG",
    "GROUP_CONCURRENCY",
    "GROUP_PERF",
    "GROUP_CONTRACTS",
    "GROUP_PARTITION",
    "GROUP_FLOW",
    "GROUP_META",
]

GROUP_DETERMINISM = "determinism"
GROUP_OBSERVABILITY = "observability"
GROUP_SCHEDULING = "scheduling"
GROUP_CONFIG = "configuration"
GROUP_CONCURRENCY = "concurrency"
GROUP_PERF = "performance"
GROUP_CONTRACTS = "rpc-contracts"
GROUP_PARTITION = "partitioning"
GROUP_FLOW = "flow-protocols"
GROUP_META = "meta"


@dataclass(frozen=True)
class RuleInfo:
    """Identity + documentation for one rule."""

    id: str
    name: str
    group: str
    severity: str
    summary: str
    #: Why the invariant matters for the reproduction (rendered in
    #: ``--list-rules`` and the DESIGN.md catalog).
    rationale: str
    #: Whether the runtime sanitizer also asserts this invariant.
    runtime_checked: bool = False


@dataclass
class FileContext:
    """Everything an AST rule may look at for one file."""

    path: str
    source: str
    tree: ast.Module

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()


class AstRule:
    """A static rule: ``check`` walks one parsed file and yields findings."""

    def __init__(self, info: RuleInfo, check: Callable[[FileContext], list[Finding]]):
        self.info = info
        self._check = check

    def check(self, ctx: FileContext) -> list[Finding]:
        return self._check(ctx)

    def finding(self, ctx: FileContext, line: int, message: str) -> Finding:
        return Finding(
            rule_id=self.info.id,
            severity=self.info.severity,
            path=ctx.path,
            line=line,
            message=message,
            source="static",
        )


_RULES: dict[str, AstRule] = {}
_INFOS: dict[str, RuleInfo] = {}


def register(info: RuleInfo, check: Optional[Callable[[FileContext], list[Finding]]] = None) -> None:
    """Register a rule.  Config/runtime-only rules pass ``check=None``:
    they appear in the catalog but run from their own pass."""
    if info.id in _INFOS:
        raise ValueError(f"duplicate rule id {info.id}")
    _INFOS[info.id] = info
    if check is not None:
        _RULES[info.id] = AstRule(info, check)


def rule(info: RuleInfo) -> Callable:
    """Decorator form of :func:`register` for AST rules."""

    def wrap(check: Callable[[FileContext], list[Finding]]) -> Callable:
        register(info, check)
        return check

    return wrap


def all_rules() -> list[AstRule]:
    """Registered AST rules, in id order (deterministic run order)."""
    return [_RULES[rid] for rid in sorted(_RULES)]


def get_rule(rule_id: str) -> Optional[AstRule]:
    return _RULES.get(rule_id)


def rule_catalog() -> list[RuleInfo]:
    """Every known rule (static, config, and runtime), in id order."""
    return [_INFOS[rid] for rid in sorted(_INFOS)]


def info_for(rule_id: str) -> Optional[RuleInfo]:
    return _INFOS.get(rule_id)


def make_finding(
    rule_id: str, path: str, line: int, message: str, source: str = "config"
) -> Finding:
    """Build a finding for a registered non-AST rule (config/runtime)."""
    info = _INFOS[rule_id]
    return Finding(
        rule_id=rule_id,
        severity=info.severity,
        path=path,
        line=line,
        message=message,
        source=source,
    )


# Meta rules (registered here so the ids exist before any pass runs).
PARSE_ERROR = RuleInfo(
    id="MCH090",
    name="parse-error",
    group=GROUP_META,
    severity=Severity.ERROR,
    summary="file could not be parsed (Python syntax error / invalid JSON)",
    rationale=(
        "a file the linter cannot read is a file none of the invariants "
        "below are checked on; CI must fail loudly, not skip silently"
    ),
)

BARE_SUPPRESSION = RuleInfo(
    id="MCH091",
    name="suppression-without-justification",
    group=GROUP_META,
    severity=Severity.ERROR,
    summary="`# mochi-lint: disable=...` without a `-- justification` tail",
    rationale=(
        "suppressions are load-bearing: each one is a claim that a "
        "checked invariant holds for out-of-band reasons, and that claim "
        "must be written down where the suppression lives"
    ),
)

register(PARSE_ERROR)
register(BARE_SUPPRESSION)
