"""Per-function control-flow graphs for the generator-ULT dialect.

One CFG node per statement.  Statement granularity keeps exception
edges precise (an exception splits execution *at* the statement that
raised, not at a basic-block boundary) and makes the "a suspension
point splits the block" requirement hold by construction: every
``yield``/``yield from`` is its own node, annotated with the suspension
primitive it bottoms out in -- including suspensions hidden inside
project callees, which the interproc effect layer reports per line.

Edge kinds:

* ``next`` / ``true`` / ``false`` / ``case`` -- ordinary sequencing and
  branching;
* ``loop`` / ``break`` / ``continue`` -- loop back-edges and escapes;
* ``return`` / ``fall`` -- paths into the synthetic return / implicit
  fall-off-the-end exits;
* ``raise`` -- an explicit ``raise`` statement propagating;
* ``exc`` -- an *implicit* exception edge from a statement that may
  raise (calls, subscripts, yields, asserts).  Builders may omit these
  (``implicit_exc=False``) for rules whose protocol only talks about
  explicit exits, e.g. MCH071;
* ``exc-cont`` -- continuation out of a duplicated ``finally`` body on
  an exceptional path (the finally ran, so its effects propagate).

``try``/``finally`` is handled by duplication: the normal path gets one
copy of the finally body; every abnormal continuation (exception,
return, break, continue) that crosses the frame gets its own copy, so a
``finally`` that releases a lock cleans the typestate on *every* path,
exactly like the interpreter does.

The dataflow engine (:mod:`.dataflow`) propagates a statement's *input*
state along ``exc``/``raise`` edges (the exception may fire before the
statement's effect lands) and its *output* state along everything else.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..rules import last_attr
from ..rules.scheduling import _SUSPENDING_COMMANDS, _SUSPENDING_DELEGATES

__all__ = ["CFG", "Node", "build_cfg", "stmt_scan", "may_raise"]

#: Edge kinds along which the dataflow engine propagates the *input*
#: state of the source node (the statement's effect may not have landed
#: when the exception fires).
EXCEPTIONAL_KINDS = frozenset({"exc", "raise"})

#: Exception-type names treated as catch-alls for routing purposes.
_CATCH_ALL_TYPES = frozenset({"BaseException", "Exception"})

_TRY_TYPES = (ast.Try,) + ((ast.TryStar,) if hasattr(ast, "TryStar") else ())

_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@dataclass
class Node:
    """One CFG node: a statement, or a synthetic entry/exit/finally head."""

    id: int
    stmt: Optional[ast.AST]  #: None for synthetic nodes
    kind: str  #: ``stmt``, ``entry``, ``finally-exc``, or ``exit-*``
    line: int
    label: str
    succs: list[tuple[int, str]] = field(default_factory=list)
    #: Suspension primitive this statement may park the ULT on (from its
    #: own yields or from a delegate whose callee suspends), if any.
    suspends: Optional[str] = None


class CFG:
    """The control-flow graph of one function."""

    ENTRY = 0
    EXIT_RETURN = 1
    EXIT_RAISE = 2
    EXIT_FALL = 3

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: dict[int, Node] = {}
        for nid, label in (
            (self.ENTRY, "entry"),
            (self.EXIT_RETURN, "return-exit"),
            (self.EXIT_RAISE, "raise-exit"),
            (self.EXIT_FALL, "fall-exit"),
        ):
            kind = "entry" if nid == self.ENTRY else "exit"
            self.nodes[nid] = Node(nid, None, kind, getattr(func, "lineno", 0), label)

    @property
    def entry(self) -> Node:
        return self.nodes[self.ENTRY]

    def exits(self) -> tuple[Node, Node, Node]:
        return (
            self.nodes[self.EXIT_RETURN],
            self.nodes[self.EXIT_RAISE],
            self.nodes[self.EXIT_FALL],
        )

    def stmt_nodes(self) -> Iterator[Node]:
        for nid in sorted(self.nodes):
            node = self.nodes[nid]
            if node.stmt is not None:
                yield node

    def edge_count(self) -> int:
        return sum(len(n.succs) for n in self.nodes.values())

    def predecessors(self, target: int) -> list[tuple[Node, str]]:
        """``(node, edge_kind)`` pairs for every edge into ``target``."""
        preds = []
        for nid in sorted(self.nodes):
            for dst, kind in self.nodes[nid].succs:
                if dst == target:
                    preds.append((self.nodes[nid], kind))
        return preds

    def describe(self) -> str:
        """Deterministic one-line-per-node dump (golden-test surface)."""
        lines = []
        for nid in sorted(self.nodes):
            node = self.nodes[nid]
            at = f"@{node.line}" if node.stmt is not None else ""
            mark = f" [suspends {node.suspends}]" if node.suspends else ""
            succs = ", ".join(f"{dst}:{kind}" for dst, kind in node.succs)
            lines.append(f"{nid} {node.label}{at}{mark} -> {succs}".rstrip(" ->"))
        return "\n".join(lines)


def stmt_scan(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` and descendants without entering nested defs/lambdas.

    Nested function bodies run later (or never); their events must not
    be charged to the enclosing statement.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, _OPAQUE):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _header_exprs(stmt: ast.AST) -> list[ast.AST]:
    """The expressions a compound statement evaluates *at its own node*
    (its body statements get their own nodes)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    if isinstance(stmt, _TRY_TYPES):
        return []
    return [stmt]


def may_raise(stmt: ast.AST) -> bool:
    """Whether the statement's own evaluation can raise: any call,
    subscript, or yield (a resumed generator may receive a throw), plus
    ``assert``.  Attribute loads and arithmetic are deliberately not
    counted -- treating every name lookup as a potential exception edge
    would drown the path-sensitive rules in vacuous paths."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for expr in _header_exprs(stmt):
        for node in stmt_scan(expr):
            if isinstance(node, (ast.Call, ast.Subscript, ast.Yield, ast.YieldFrom)):
                return True
    return False


def _suspend_detail(
    stmt: ast.AST, callee_suspends: dict[int, str]
) -> Optional[str]:
    """The suspension primitive a statement may park on, if any."""
    for expr in _header_exprs(stmt):
        for node in stmt_scan(expr):
            if isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
                attr = last_attr(node.value.func)
                if attr in _SUSPENDING_COMMANDS:
                    return attr
            elif isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call):
                attr = last_attr(node.value.func)
                if attr in _SUSPENDING_DELEGATES or attr == "acquire":
                    return f"{attr}()"
    return callee_suspends.get(getattr(stmt, "lineno", -1))


class _LoopFrame:
    __slots__ = ("continue_target", "breaks")

    def __init__(self, continue_target: int) -> None:
        self.continue_target = continue_target
        self.breaks: list[tuple[int, str]] = []


class _TryFrame:
    __slots__ = ("handler_nodes", "catches_all", "finally_stmts", "exc_entry")

    def __init__(
        self,
        handler_nodes: Optional[list[int]],
        catches_all: bool,
        finally_stmts: Optional[list[ast.stmt]],
    ) -> None:
        self.handler_nodes = handler_nodes
        self.catches_all = catches_all
        self.finally_stmts = finally_stmts
        #: Lazily-built duplicated finally body for escaping exceptions.
        self.exc_entry: Optional[int] = None


class _Builder:
    def __init__(
        self,
        func: ast.AST,
        callee_suspends: dict[int, str],
        implicit_exc: bool,
    ) -> None:
        self.cfg = CFG(func)
        self.callee_suspends = callee_suspends
        self.implicit_exc = implicit_exc
        self._next_id = CFG.EXIT_FALL + 1

    # -- node/edge primitives ------------------------------------------
    def _node(self, stmt: Optional[ast.AST], kind: str = "stmt", label: str = "") -> Node:
        nid = self._next_id
        self._next_id += 1
        line = getattr(stmt, "lineno", 0)
        if not label:
            label = type(stmt).__name__.lower() if stmt is not None else kind
        node = Node(nid, stmt, kind, line, label)
        if stmt is not None:
            node.suspends = _suspend_detail(stmt, self.callee_suspends)
        self.cfg.nodes[nid] = node
        return node

    def _edge(self, src: int, dst: int, kind: str) -> None:
        succs = self.cfg.nodes[src].succs
        if (dst, kind) not in succs:
            succs.append((dst, kind))

    def _connect(self, frontier: list[tuple[int, str]], dst: int) -> None:
        for src, kind in frontier:
            self._edge(src, dst, kind)

    # -- statement dispatch --------------------------------------------
    def build(self) -> CFG:
        frontier = self._seq(
            list(self.cfg.func.body), [(CFG.ENTRY, "next")], []
        )
        self._connect(
            [(src, "fall") for src, _ in frontier], CFG.EXIT_FALL
        )
        return self.cfg

    def _seq(self, stmts, frontier, frames):
        for stmt in stmts:
            if not frontier:  # unreachable tail (after return/raise/while True)
                break
            frontier = self._stmt(stmt, frontier, frames)
        return frontier

    def _stmt(self, stmt, frontier, frames):
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier, frames)
        if isinstance(stmt, ast.While):
            return self._while(stmt, frontier, frames)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier, frames)
        if isinstance(stmt, _TRY_TYPES):
            return self._try(stmt, frontier, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._simple(stmt, frontier, frames)
            return self._seq(stmt.body, node, frames)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier, frames)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, frontier, frames)
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, frontier, frames)
        if isinstance(stmt, ast.Break):
            return self._break(stmt, frontier, frames)
        if isinstance(stmt, ast.Continue):
            return self._continue(stmt, frontier, frames)
        return self._simple(stmt, frontier, frames)

    def _simple(self, stmt, frontier, frames):
        node = self._node(stmt)
        self._connect(frontier, node.id)
        if self.implicit_exc and may_raise(stmt):
            self._route_exception(node.id, "exc", frames)
        return [(node.id, "next")]

    def _if(self, stmt, frontier, frames):
        node = self._node(stmt, label="if")
        self._connect(frontier, node.id)
        if self.implicit_exc and may_raise(stmt):
            self._route_exception(node.id, "exc", frames)
        out = self._seq(stmt.body, [(node.id, "true")], frames)
        if stmt.orelse:
            out = out + self._seq(stmt.orelse, [(node.id, "false")], frames)
        else:
            out = out + [(node.id, "false")]
        return out

    def _loop(self, stmt, frontier, frames, label, infinite):
        node = self._node(stmt, label=label)
        self._connect(frontier, node.id)
        if self.implicit_exc and may_raise(stmt):
            self._route_exception(node.id, "exc", frames)
        loop = _LoopFrame(continue_target=node.id)
        body_out = self._seq(stmt.body, [(node.id, "true")], frames + [loop])
        for src, _kind in body_out:
            self._edge(src, node.id, "loop")
        breaks = list(loop.breaks)
        if infinite:
            return breaks
        tail = [(node.id, "false")]
        if stmt.orelse:
            tail = self._seq(stmt.orelse, tail, frames)
        return breaks + tail

    def _while(self, stmt, frontier, frames):
        infinite = isinstance(stmt.test, ast.Constant) and stmt.test.value is True
        return self._loop(stmt, frontier, frames, "while", infinite)

    def _for(self, stmt, frontier, frames):
        return self._loop(stmt, frontier, frames, "for", infinite=False)

    def _match(self, stmt, frontier, frames):
        node = self._node(stmt, label="match")
        self._connect(frontier, node.id)
        if self.implicit_exc and may_raise(stmt):
            self._route_exception(node.id, "exc", frames)
        out = [(node.id, "false")]  # no case may match
        for case in stmt.cases:
            out = out + self._seq(case.body, [(node.id, "case")], frames)
        return out

    def _try(self, stmt, frontier, frames):
        finally_stmts = stmt.finalbody or None
        handler_nodes: list[int] = []
        catches_all = False
        for handler in stmt.handlers:
            hnode = self._node(handler, label="except")
            handler_nodes.append(hnode.id)
            if handler.type is None or last_attr(handler.type) in _CATCH_ALL_TYPES:
                catches_all = True
        frame = _TryFrame(handler_nodes or None, catches_all, finally_stmts)
        inner = frames + [frame]
        body_out = self._seq(stmt.body, frontier, inner)
        # Handlers stop applying once the body completes: exceptions in
        # the else clause or in the handlers themselves propagate out
        # (through this frame's finally).
        frame.handler_nodes = None
        frame.catches_all = False
        if stmt.orelse:
            body_out = self._seq(stmt.orelse, body_out, inner)
        for handler, hid in zip(stmt.handlers, handler_nodes):
            body_out = body_out + self._seq(handler.body, [(hid, "next")], inner)
        if finally_stmts:
            body_out = self._seq(finally_stmts, body_out, frames)
        return body_out

    def _return(self, stmt, frontier, frames):
        node = self._node(stmt, label="return")
        self._connect(frontier, node.id)
        if self.implicit_exc and may_raise(stmt):
            self._route_exception(node.id, "exc", frames)
        src = [(node.id, "return")]
        for i in range(len(frames) - 1, -1, -1):
            fr = frames[i]
            if isinstance(fr, _TryFrame) and fr.finally_stmts:
                src = self._seq(list(fr.finally_stmts), src, frames[:i])
        self._connect(src, CFG.EXIT_RETURN)
        return []

    def _raise(self, stmt, frontier, frames):
        node = self._node(stmt, label="raise")
        self._connect(frontier, node.id)
        self._route_exception(node.id, "raise", frames)
        return []

    def _escape_loop(self, stmt, frontier, frames, label):
        node = self._node(stmt, label=label)
        self._connect(frontier, node.id)
        src = [(node.id, label)]
        for i in range(len(frames) - 1, -1, -1):
            fr = frames[i]
            if isinstance(fr, _LoopFrame):
                return fr, src
            if isinstance(fr, _TryFrame) and fr.finally_stmts:
                src = self._seq(list(fr.finally_stmts), src, frames[:i])
        return None, src  # malformed (outside a loop); drop the path

    def _break(self, stmt, frontier, frames):
        loop, src = self._escape_loop(stmt, frontier, frames, "break")
        if loop is not None:
            loop.breaks.extend(src)
        return []

    def _continue(self, stmt, frontier, frames):
        loop, src = self._escape_loop(stmt, frontier, frames, "continue")
        if loop is not None:
            self._connect(src, loop.continue_target)
        return []

    # -- exception routing ---------------------------------------------
    def _route_exception(self, src, kind, frames):
        for i in range(len(frames) - 1, -1, -1):
            frame = frames[i]
            if not isinstance(frame, _TryFrame):
                continue
            if frame.handler_nodes:
                for hid in frame.handler_nodes:
                    self._edge(src, hid, kind)
                if frame.catches_all:
                    return
            if frame.finally_stmts:
                entry = self._finally_exc_entry(frame, frames[:i])
                self._edge(src, entry, kind)
                return
        self._edge(src, CFG.EXIT_RAISE, kind)

    def _finally_exc_entry(self, frame, outer_frames):
        """Entry of this frame's finally copy for *escaping* exceptions;
        the copy's tail keeps propagating through the outer frames."""
        if frame.exc_entry is None:
            head = self._node(None, kind="finally-exc", label="finally-exc")
            frame.exc_entry = head.id
            tail = self._seq(
                list(frame.finally_stmts), [(head.id, "next")], outer_frames
            )
            for nid, _kind in tail:
                self._route_exception(nid, "exc-cont", outer_frames)
        return frame.exc_entry


def build_cfg(
    func: ast.AST,
    callee_suspends: Optional[dict[int, str]] = None,
    implicit_exc: bool = True,
) -> CFG:
    """Build the CFG of one function.

    ``callee_suspends`` maps line numbers of ``yield from`` delegations
    to a description of the suspension their callee performs (from the
    interproc effect summaries); matching statements are marked as
    suspension points.  ``implicit_exc=False`` omits the conservative
    may-raise edges, leaving only explicit ``raise`` paths.
    """
    return _Builder(func, callee_suspends or {}, implicit_exc).build()
