"""mochi-flow: CFG + path-sensitive typestate analysis.

This package is the ``--flow`` layer of mochi-lint.  Where the per-file
rules pattern-match single statements and the interproc layer reasons
about *which* functions have effects, this layer reasons about *paths*:

* :mod:`cfg` -- one CFG per function (statement-granular, with
  exception edges, duplicated ``finally`` bodies, and suspension points
  taken from the interproc effect summaries);
* :mod:`dataflow` -- a generic forward fixpoint over finite may-set
  typestate lattices;
* :mod:`protocols` -- the MCH070-MCH073 protocol rules.

:func:`run_flow` is the entry point; the engine hands it the
``(path, tree, source)`` triples it already parsed plus the project
index / effect analysis it may already have built for ``--interproc``,
so composing ``--flow --interproc`` pays for one parse and one effect
fixpoint, not two.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Iterable, Optional

from ..findings import Finding
from ..rules import function_defs, last_attr, own_body_walk
from ..rules.scheduling import _is_handler
from ..suppress import parse_suppressions
from . import rulesinfo  # noqa: F401  -- registers MCH070-MCH074
from .cfg import build_cfg
from .protocols import (
    _ACQUIRE_ATTRS,
    _DESTROY_ATTRS,
    check_lock_paths,
    check_resource_paths,
    check_respond,
    check_span_paths,
    check_typestate,
)

__all__ = ["run_flow", "FLOW_RULE_IDS"]

#: Every rule id owned by this layer, in catalog order.
FLOW_RULE_IDS = ("MCH070", "MCH071", "MCH072", "MCH073", "MCH074")


def _prescan(func: ast.AST) -> dict[str, bool]:
    """One cheap body walk deciding which protocol rules apply at all."""
    wants = {
        "respond": _is_handler(func),
        "lock": False,
        "resource": False,
        "typestate": False,
        "span": False,
    }
    for node in own_body_walk(func):
        if isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call):
            attr = last_attr(node.value.func)
            if attr == "acquire":
                wants["lock"] = True
            elif attr == "migrate":
                wants["typestate"] = True
        elif isinstance(node, ast.Call):
            attr = last_attr(node.func)
            if attr in _ACQUIRE_ATTRS:
                wants["resource"] = True
            elif attr == "start_span":
                wants["span"] = True
            elif attr in _DESTROY_ATTRS and isinstance(node.func, ast.Attribute):
                wants["typestate"] = True
    return wants


def run_flow(
    parsed: list[tuple[str, ast.Module, str]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    index=None,
    analysis=None,
) -> tuple[list[Finding], dict, set[tuple[str, int]]]:
    """Run the MCH07x protocol rules over ``(path, tree, source)`` triples.

    Returns ``(findings, stats, covered)``: findings honor the same
    inline suppressions as every other pass and are sorted by
    ``(path, line, rule_id, message)``; ``covered`` is the set of
    ``(path, line)`` sites the MCH070 analysis looked at, where the
    engine retires the flow-insensitive MCH012 heuristic.
    """
    # Imported lazily so `import repro.analysis` stays light; the engine
    # usually hands these in, already built for --interproc.
    from ..interproc.callgraph import build_project
    from ..interproc.effects import (
        EffectAnalysis,
        callee_park_lines,
        callee_suspend_lines,
    )

    if index is None:
        index = build_project([(path, tree) for path, tree, _ in parsed])
    if analysis is None:
        analysis = EffectAnalysis(index)
    by_node = {id(info.node): info for info in index.functions.values()}

    findings: list[Finding] = []
    covered: set[tuple[str, int]] = set()
    stats = {
        "flow_functions_scanned": 0,
        "flow_cfgs_built": 0,
        "flow_cfg_nodes": 0,
        "flow_cfg_edges": 0,
        "flow_suspend_points": 0,
        "flow_handlers_analyzed": 0,
        "flow_exit_paths": 0,
    }

    for path, tree, _source in parsed:
        for func in function_defs(tree):
            stats["flow_functions_scanned"] += 1
            wants = _prescan(func)
            if not any(wants.values()):
                continue
            info = by_node.get(id(func))
            suspends = callee_suspend_lines(analysis, info) if info else {}
            parks = callee_park_lines(analysis, info) if info else {}

            full_cfg = None
            if (
                wants["respond"]
                or wants["resource"]
                or wants["typestate"]
                or wants["span"]
            ):
                full_cfg = build_cfg(func, callee_suspends=suspends)
                stats["flow_cfgs_built"] += 1
                stats["flow_cfg_nodes"] += len(full_cfg.nodes)
                stats["flow_cfg_edges"] += full_cfg.edge_count()
                stats["flow_suspend_points"] += sum(
                    1 for n in full_cfg.stmt_nodes() if n.suspends
                )
                stats["flow_exit_paths"] += sum(
                    len(full_cfg.predecessors(exit_node.id))
                    for exit_node in full_cfg.exits()
                )
            if wants["respond"]:
                stats["flow_handlers_analyzed"] += 1
                handler_findings, handler_covered = check_respond(
                    path, func, full_cfg, parks
                )
                findings.extend(handler_findings)
                covered.update(handler_covered)
            if wants["resource"]:
                findings.extend(check_resource_paths(path, func, full_cfg))
            if wants["span"]:
                findings.extend(check_span_paths(path, func, full_cfg))
            if wants["typestate"]:
                findings.extend(check_typestate(path, func, full_cfg))
            if wants["lock"]:
                exits_cfg = build_cfg(
                    func, callee_suspends=suspends, implicit_exc=False
                )
                stats["flow_cfgs_built"] += 1
                findings.extend(check_lock_paths(path, func, exits_cfg))

    wanted = set(select) if select else None
    dropped = set(ignore) if ignore else set()
    findings = [
        f
        for f in findings
        if (wanted is None or f.rule_id in wanted) and f.rule_id not in dropped
    ]

    suppressions = {
        path: parse_suppressions(source, path) for path, _, source in parsed
    }
    kept = []
    for finding in findings:
        supp = suppressions.get(finding.path)
        if supp is not None and supp.is_suppressed(finding):
            continue
        kept.append(replace(finding, source="flow"))
    kept.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return kept, stats, covered
