"""Forward dataflow fixpoint over a CFG and a finite typestate lattice.

States are *may*-sets: ``frozenset`` of hashable atoms, joined by set
union.  Every protocol rule picks its own atom vocabulary (respond
counts, per-lock held markers, per-resource liveness); the engine only
needs join-is-union and a monotone transfer function, which makes
termination a counting argument -- atoms are drawn from a finite set,
states only grow, so the worklist drains.

Exception edges (``exc``/``raise``) propagate the *input* state of the
raising statement: the exception may fire before the statement's effect
lands (``x = add_pool(...)`` that raises never bound ``x``).  All other
edges -- including ``exc-cont``, the continuation out of a duplicated
``finally`` body -- propagate the transfer output.
"""

from __future__ import annotations

from typing import Callable, Dict

from .cfg import CFG, EXCEPTIONAL_KINDS, Node

__all__ = ["State", "forward_fixpoint", "edge_state"]

State = frozenset

#: Transfer: (node, input state) -> output state.  Must be monotone in
#: the may-set sense (never remove an atom another input would keep).
Transfer = Callable[[Node, State], State]


def forward_fixpoint(cfg: CFG, init: State, transfer: Transfer) -> Dict[int, State]:
    """Least fixpoint of ``transfer`` over ``cfg``; returns the joined
    *input* state of every reachable node (keyed by node id)."""
    in_states: Dict[int, State] = {CFG.ENTRY: init}
    work = [CFG.ENTRY]
    queued = {CFG.ENTRY}
    while work:
        nid = work.pop()
        queued.discard(nid)
        node = cfg.nodes[nid]
        state = in_states[nid]
        out = transfer(node, state)
        for dst, kind in node.succs:
            propagated = state if kind in EXCEPTIONAL_KINDS else out
            old = in_states.get(dst)
            new = propagated if old is None else old | propagated
            if new != old:
                in_states[dst] = new
                if dst not in queued:
                    work.append(dst)
                    queued.add(dst)
    return in_states


def edge_state(
    cfg: CFG, in_states: Dict[int, State], src: Node, kind: str, transfer: Transfer
) -> State:
    """The state flowing along one edge out of ``src`` (input state for
    exceptional kinds, transfer output otherwise); empty if ``src`` was
    never reached."""
    state = in_states.get(src.id)
    if state is None:
        return frozenset()
    if kind in EXCEPTIONAL_KINDS:
        return state
    return transfer(src, state)
