"""Registry entries for the mochi-flow rules (MCH070-MCH074).

These are whole-function path-sensitive rules: they register with
``check=None`` (no per-file AST callback) and run from
:func:`repro.analysis.flow.run_flow` when ``--flow`` is given, exactly
like the interproc block runs from ``--interproc``.
"""

from __future__ import annotations

from ..findings import Severity
from ..registry import GROUP_FLOW, GROUP_OBSERVABILITY, RuleInfo, register

RESPOND_EXACTLY_ONCE = RuleInfo(
    id="MCH070",
    name="respond-exactly-once",
    group=GROUP_FLOW,
    severity=Severity.ERROR,
    summary="RPC handler must respond exactly once on every path",
    rationale=(
        "margo_respond semantics: each dispatched RPC gets exactly one "
        "response.  A double respond silently drops the second reply, a "
        "raise after responding loses the error, and a swallowed "
        "exception path that parks before responding wedges the caller; "
        "the CFG proves the count on every path, so the flow-insensitive "
        "MCH012 heuristic stands down at covered sites"
    ),
    runtime_checked=True,
)

LOCK_RELEASED_ON_EXIT = RuleInfo(
    id="MCH071",
    name="lock-release-balance",
    group=GROUP_FLOW,
    severity=Severity.ERROR,
    summary="UltMutex acquired but not released on some exit path",
    rationale=(
        "a mutex that stays held across an early return, an escaping "
        "raise, or the fall-through exit serializes every later waiter "
        "behind a lock nobody will ever release; the runtime sanitizer "
        "only sees the executed path, this rule proves all of them"
    ),
)

RESOURCE_RELEASED_ON_EXC = RuleInfo(
    id="MCH072",
    name="resource-leak-on-exception-path",
    group=GROUP_FLOW,
    severity=Severity.ERROR,
    summary="pool/xstream acquired but leaked if an exception escapes",
    rationale=(
        "elastic reconfiguration (the paper's add/remove pool and "
        "xstream dance) only stays balanced if every acquisition either "
        "reaches its owner or is torn down when the path fails; "
        "exception paths are exactly the ones CI-time execution never "
        "covers"
    ),
)

USE_AFTER_RELEASE = RuleInfo(
    id="MCH073",
    name="use-after-release",
    group=GROUP_FLOW,
    severity=Severity.ERROR,
    summary="handle used after release/destroy, or provider state used after migrate",
    rationale=(
        "a destroyed handle or a provider whose state has migrated away "
        "is a dangling reference: operations on it read state that no "
        "longer lives here, which is how delete-then-migrate bugs "
        "corrupt the destination"
    ),
)

SPAN_ENDED_ON_EXC = RuleInfo(
    id="MCH074",
    name="span-leak-on-exception-path",
    group=GROUP_OBSERVABILITY,
    severity=Severity.ERROR,
    summary="span opened with start_span() but not ended on an exception path",
    rationale=(
        "a manually-timed span that escapes on an exception path never "
        "reaches the tracer's buffer: the operation vanishes from trace "
        "trees and critical paths exactly when it failed -- the case "
        "observability exists for -- and open_span_count climbs forever; "
        "end the span in a finally, or hand it to a callee that will"
    ),
)

for _info in (
    RESPOND_EXACTLY_ONCE,
    LOCK_RELEASED_ON_EXIT,
    RESOURCE_RELEASED_ON_EXC,
    USE_AFTER_RELEASE,
    SPAN_ENDED_ON_EXC,
):
    register(_info)
