"""The MCH07x protocol rules: typestate lattices over the CFG.

Each rule is one finite may-set lattice plus a transfer function, run
through :func:`..flow.dataflow.forward_fixpoint`:

* **MCH070** -- respond-exactly-once.  Atoms are response counts
  ``{0, 1, 2}`` (2 = "two or more").  A respond event with a response
  already sent, a value returned after an explicit respond, a ``raise``
  after responding (the error response is lost), or a divergence point
  (unbounded wait / exit-less loop / delegation into a callee that
  parks unboundedly) reachable with count 0 are all violations.  The
  flow-insensitive MCH012 heuristic stands down at every site this
  rule analyzed.
* **MCH071** -- lock release balance.  Atoms are ``(lock, H|F)``; any
  exit edge (return / escaping raise / fall-through) carrying ``H`` is
  a leak.  Runs on the explicit-exit CFG: implicit may-raise edges are
  not part of this protocol's contract.
* **MCH072** -- pool/xstream exception-path leaks.  A resource assigned
  from ``add_pool``/``add_xstream`` is tracked from the acquisition to
  the first statement that mentions it again (release, registration,
  escape -- any mention transfers ownership); an exception edge leaving
  the function inside that window leaks it.
* **MCH073** -- use-after-release / use-after-migrate.  Atoms are
  ``(handle, rel/mig, line)``; method calls or argument passes on a
  released handle, and non-teardown method calls on a migrated
  provider, are violations.  Rebinding the name clears its state.
* **MCH074** -- span leaked on an exception path.  A span opened with
  ``var = <tracer>.start_span(...)`` is tracked until ``var.end()`` /
  ``var.finish()``, a rebind, or an escape (the variable passed as a
  call argument transfers the obligation to the callee); an exception
  escaping the function inside that window loses the span.

All checks are may-analyses: a finding means some path exhibits the
violation, and messages hedge with "on some path" where the state is
mixed.  Collection happens after the fixpoint in node-id order, so the
output is deterministic.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding, Severity
from ..rules import dotted_name, last_attr, own_body_walk
from ..rules.scheduling import _loops_forever, _unbounded_wait
from .cfg import CFG, EXCEPTIONAL_KINDS, Node, _header_exprs, stmt_scan
from .dataflow import State, edge_state, forward_fixpoint

__all__ = [
    "check_respond",
    "check_lock_paths",
    "check_resource_paths",
    "check_span_paths",
    "check_typestate",
]

#: Acquisition calls MCH072 tracks (elastic pool/xstream lifecycle).
_ACQUIRE_ATTRS = frozenset({"add_pool", "add_xstream"})

#: Receiver methods that end an MCH072 resource's lifetime.
_RELEASE_ATTRS = frozenset({"join", "destroy", "release", "shutdown", "remove", "close"})

#: Free/manager functions that release an MCH072 resource passed as arg.
_RELEASE_FUNCS = frozenset(
    {"remove_pool", "remove_xstream", "release_pool", "destroy_pool"}
)

#: Receiver methods that put a handle in the RELEASED typestate (073).
#: ``release`` itself belongs to MCH071's mutex protocol, not here.
_DESTROY_ATTRS = frozenset({"destroy", "shutdown", "finalize"})

#: Methods still legal on a provider after ``yield from x.migrate(...)``
#: (teardown and identity only -- its data now lives at the target).
_ALLOWED_AFTER_MIGRATE = frozenset(
    {"destroy", "get_config", "local_files", "name", "provider_id"}
)


def _scan_exprs(stmt: ast.AST) -> Iterator[ast.AST]:
    """Sub-expressions a statement's own node evaluates, in source order."""
    nodes = []
    for expr in _header_exprs(stmt):
        nodes.extend(stmt_scan(expr))
    nodes.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))
    return iter(nodes)


def _yield_from_calls(stmt: ast.AST) -> set[int]:
    """ids of Call nodes that are the operand of a ``yield from``."""
    return {
        id(node.value)
        for node in _scan_exprs(stmt)
        if isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call)
    }


def _receiver(call: ast.Call) -> Optional[str]:
    """Dotted name of a method call's receiver (``a.b`` for ``a.b.c()``)."""
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value)
    return None


def _finding(rule_id: str, path: str, line: int, message: str) -> Finding:
    return Finding(rule_id, Severity.ERROR, path, line, message, source="flow")


# ---------------------------------------------------------------------------
# MCH070: respond exactly once
# ---------------------------------------------------------------------------


def _respond_events(node: Node) -> int:
    """Number of ``yield from ...respond(...)`` events at this node."""
    if node.stmt is None:
        return 0
    count = 0
    for sub in _scan_exprs(node.stmt):
        if isinstance(sub, ast.YieldFrom) and isinstance(sub.value, ast.Call):
            if last_attr(sub.value.func) == "respond":
                count += 1
    return count


def _divergence(node: Node, callee_parks: dict[int, str]) -> Optional[str]:
    """Why this node can stall forever without responding, if it can."""
    stmt = node.stmt
    if stmt is None:
        return None
    for sub in _scan_exprs(stmt):
        if isinstance(sub, ast.Call):
            why = _unbounded_wait(sub)
            if why is not None:
                return why
    if isinstance(stmt, ast.While):
        test = stmt.test
        if isinstance(test, ast.Constant) and test.value is True:
            exits = any(
                isinstance(inner, (ast.Return, ast.Break, ast.Raise))
                for inner in ast.walk(stmt)
            )
            responds = any(
                isinstance(inner, ast.YieldFrom)
                and isinstance(inner.value, ast.Call)
                and last_attr(inner.value.func) == "respond"
                for inner in ast.walk(stmt)
            )
            if not exits and not responds:
                return "`while True` loop with no return/break/raise"
    return callee_parks.get(node.line)


def _returns_value(stmt: ast.AST) -> bool:
    if not isinstance(stmt, ast.Return) or stmt.value is None:
        return False
    return not (isinstance(stmt.value, ast.Constant) and stmt.value.value is None)


def check_respond(
    path: str,
    func: ast.AST,
    cfg: CFG,
    callee_parks: dict[int, str],
) -> tuple[list[Finding], set[tuple[str, int]]]:
    """MCH070 over one handler.  Also returns the ``(path, line)`` sites
    this analysis covered, where the MCH012 heuristic must stand down."""
    name = getattr(func, "name", "<handler>")

    respond_counts = {n.id: _respond_events(n) for n in cfg.stmt_nodes()}

    def transfer(node: Node, state: State) -> State:
        count = respond_counts.get(node.id, 0)
        if not count:
            return state
        return frozenset(min(2, s + count) for s in state)

    in_states = forward_fixpoint(cfg, frozenset({0}), transfer)

    findings: list[Finding] = []
    seen: set[tuple[int, str]] = set()

    def emit(line: int, message: str) -> None:
        if (line, message) not in seen:
            seen.add((line, message))
            findings.append(_finding("MCH070", path, line, message))

    # Undriven respond: a plain ``ctx.respond(...)`` builds the response
    # generator and throws it away -- nothing is ever sent.
    for stmt_node in cfg.stmt_nodes():
        stmt = stmt_node.stmt
        driven = _yield_from_calls(stmt)
        for sub in _scan_exprs(stmt):
            if (
                isinstance(sub, ast.Call)
                and last_attr(sub.func) == "respond"
                and id(sub) not in driven
            ):
                emit(
                    sub.lineno,
                    f"handler {name!r} calls respond() without `yield from`; "
                    "the response generator is never driven and nothing is sent",
                )

    for node in cfg.stmt_nodes():
        state = in_states.get(node.id)
        if state is None:
            continue
        responded = {s for s in state if s >= 1}
        if respond_counts.get(node.id, 0) and responded:
            qualifier = "" if 0 not in state else " on some path"
            emit(
                node.line,
                f"handler {name!r} responds here with a response already "
                f"sent{qualifier}; each RPC must be answered exactly once",
            )
        if _returns_value(node.stmt) and responded:
            emit(
                node.line,
                f"handler {name!r} returns a value after explicitly "
                "responding; the runtime drops it (respond once, or return "
                "the value and let the runtime respond)",
            )
        if isinstance(node.stmt, ast.Raise) and responded:
            emit(
                node.line,
                f"handler {name!r} raises after responding; the error "
                "response is lost because the reply already went out",
            )
        why = _divergence(node, callee_parks)
        if why is not None and 0 in state:
            if len(state) == 1:
                emit(
                    node.line,
                    f"handler {name!r} stalls ({why}) before any response; "
                    "the caller waits forever",
                )
            else:
                emit(
                    node.line,
                    f"handler {name!r} stalls ({why}) with no response sent "
                    "on some path (e.g. an exception path); respond before "
                    "waiting",
                )

    covered = {
        (path, node.lineno)
        for node in own_body_walk(func)
        if _unbounded_wait(node) is not None
    }
    loop_line = _loops_forever(func)
    if loop_line is not None:
        covered.add((path, loop_line))
    return findings, covered


# ---------------------------------------------------------------------------
# MCH071: mutex release balance on every exit path
# ---------------------------------------------------------------------------


def _lock_node_events(node: Node) -> list[tuple[str, str]]:
    """``(acquire|release, lock-name)`` events at this node, in order."""
    if node.stmt is None:
        return []
    events: list[tuple[str, str]] = []
    driven = _yield_from_calls(node.stmt)
    for sub in _scan_exprs(node.stmt):
        if not isinstance(sub, ast.Call):
            continue
        attr = last_attr(sub.func)
        key = _receiver(sub) or "<lock>"
        if attr == "acquire" and id(sub) in driven:
            events.append(("acquire", key))
        elif attr == "release" and id(sub) not in driven:
            events.append(("release", key))
    return events


def check_lock_paths(path: str, func: ast.AST, cfg: CFG) -> list[Finding]:
    """MCH071 over one function (explicit-exit CFG)."""
    name = getattr(func, "name", "<function>")
    events = {n.id: _lock_node_events(n) for n in cfg.stmt_nodes()}

    def transfer(node: Node, state: State) -> State:
        evs = events.get(node.id)
        if not evs:
            return state
        held = set(state)
        for kind, key in evs:
            held = {a for a in held if a[0] != key}
            held.add((key, "H" if kind == "acquire" else "F"))
        return frozenset(held)

    in_states = forward_fixpoint(cfg, frozenset(), transfer)

    exit_desc = {
        CFG.EXIT_RETURN: "returns",
        CFG.EXIT_RAISE: "lets an exception escape",
        CFG.EXIT_FALL: "falls off the end",
    }
    findings: list[Finding] = []
    seen: set[tuple[int, str]] = set()
    for exit_id, verb in exit_desc.items():
        for pred, kind in cfg.predecessors(exit_id):
            state = edge_state(cfg, in_states, pred, kind, transfer)
            for key, mark in sorted(state):
                if mark != "H":
                    continue
                maybe = (key, "F") in state
                qualifier = " on some path" if maybe else ""
                message = (
                    f"{name!r} {verb} (line {pred.line}) while still holding "
                    f"{key}{qualifier}; release it on every exit path "
                    "(try/finally)"
                )
                if (pred.line, message) not in seen:
                    seen.add((pred.line, message))
                    findings.append(_finding("MCH071", path, pred.line, message))
    return findings


# ---------------------------------------------------------------------------
# MCH072: pool/xstream leaked on an exception path
# ---------------------------------------------------------------------------


def _resource_acquire(stmt: ast.AST) -> Optional[tuple[str, str, int]]:
    """``(var, kind, line)`` for ``var = <margo>.add_pool/add_xstream(...)``."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return None
    value = stmt.value
    if not isinstance(value, ast.Call):
        return None
    attr = last_attr(value.func)
    if attr not in _ACQUIRE_ATTRS:
        return None
    kind = "pool" if attr == "add_pool" else "xstream"
    return target.id, kind, stmt.lineno


def _names_mentioned(stmt: ast.AST, skip: Optional[ast.AST] = None) -> set[str]:
    """Every plain name the statement mentions (``skip``'s subtree aside)."""
    skipped: set[int] = set()
    if skip is not None:
        skipped = {id(node) for node in ast.walk(skip)}
    names: set[str] = set()
    for sub in _scan_exprs(stmt):
        if isinstance(sub, ast.Name) and id(sub) not in skipped:
            names.add(sub.id)
    return names


def check_resource_paths(path: str, func: ast.AST, cfg: CFG) -> list[Finding]:
    """MCH072 over one function (full CFG with implicit exception edges).

    A resource is "in the window" from its acquisition until the next
    statement that mentions the variable at all: that mention is the
    release, the registration, or the ownership transfer -- and it ends
    the window even along that statement's own exception edge (ownership
    questions past the first handoff are the owner's business, not this
    rule's).  Only an exception *escaping the function* inside the
    window leaks -- local handlers get the chance to clean up.
    """
    name = getattr(func, "name", "<function>")
    acquires = {}
    for node in cfg.stmt_nodes():
        acq = _resource_acquire(node.stmt)
        if acq is not None:
            acquires[node.id] = acq

    def transfer(node: Node, state: State) -> State:
        if node.stmt is None:
            return state
        acq = acquires.get(node.id)
        target = node.stmt.targets[0] if acq is not None else None
        mentioned = _names_mentioned(node.stmt, skip=target)
        live = {a for a in state if a[0] not in mentioned}
        if acq is not None:
            var, kind, line = acq
            live = {a for a in live if a[0] != var}
            live.add((var, kind, line))
        return frozenset(live)

    def exc_transfer(node: Node, state: State) -> State:
        # Along a statement's own exception edge the *acquire* effect is
        # withheld (the exception means nothing was acquired), but a
        # mention still ends the window.
        if node.stmt is None:
            return state
        acq = acquires.get(node.id)
        target = node.stmt.targets[0] if acq is not None else None
        mentioned = _names_mentioned(node.stmt, skip=target)
        return frozenset(a for a in state if a[0] not in mentioned)

    if not acquires:
        return []
    in_states = forward_fixpoint(cfg, frozenset(), transfer)

    leaks: dict[tuple[str, str, int], int] = {}
    for pred, kind in cfg.predecessors(CFG.EXIT_RAISE):
        state = in_states.get(pred.id, frozenset())
        state = (
            exc_transfer(pred, state)
            if kind in EXCEPTIONAL_KINDS
            else transfer(pred, state)
        )
        for atom in state:
            leaks.setdefault(atom, pred.line)
            leaks[atom] = min(leaks[atom], pred.line)
    findings = []
    for (var, res_kind, line), escape_line in sorted(leaks.items()):
        findings.append(
            _finding(
                "MCH072",
                path,
                line,
                f"{res_kind} {var!r} acquired here is not released if the "
                f"exception path through line {escape_line} is taken; "
                "join/remove it in a finally or except before re-raising",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# MCH074: span leaked on an exception path
# ---------------------------------------------------------------------------

#: Receiver methods that close an MCH074 span's obligation window.
_SPAN_END_ATTRS = frozenset({"end", "finish"})


def _span_acquire(stmt: ast.AST) -> Optional[tuple[str, int]]:
    """``(var, line)`` for ``var = <tracer>.start_span(...)``."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return None
    value = stmt.value
    if not isinstance(value, ast.Call):
        return None
    if last_attr(value.func) != "start_span":
        return None
    return target.id, stmt.lineno


def check_span_paths(path: str, func: ast.AST, cfg: CFG) -> list[Finding]:
    """MCH074 over one function (full CFG with implicit exception edges).

    Unlike MCH072's any-mention window, a span's obligation survives
    ordinary uses (reading ``span.start``, logging it): only an
    explicit ``end()``/``finish()`` on the variable, a rebind, or an
    escape (the span passed as a call argument -- the callee owns the
    obligation now) discharges it.  An exception escaping the function
    while the obligation is live loses the span: it never reaches the
    tracer's buffer and ``open_span_count`` never drains.
    """
    name = getattr(func, "name", "<function>")
    acquires: dict[int, tuple[str, int]] = {}
    for node in cfg.stmt_nodes():
        acq = _span_acquire(node.stmt)
        if acq is not None:
            acquires[node.id] = acq
    if not acquires:
        return []

    def _discharged(stmt: ast.AST) -> set[str]:
        """Span vars this statement ends, escapes, or rebinds."""
        done: set[str] = set()
        for sub in _scan_exprs(stmt):
            if not isinstance(sub, ast.Call):
                continue
            if last_attr(sub.func) in _SPAN_END_ATTRS:
                receiver = _receiver(sub)
                if receiver is not None:
                    done.add(receiver)
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                if isinstance(arg, ast.Name):
                    done.add(arg.id)
        done.update(_assigned_keys(stmt))
        return done

    def transfer(node: Node, state: State) -> State:
        if node.stmt is None:
            return state
        acq = acquires.get(node.id)
        done = _discharged(node.stmt)
        live = {a for a in state if a[0] not in done}
        if acq is not None:
            var, line = acq
            live = {a for a in live if a[0] != var}
            live.add((var, line))
        return frozenset(live)

    def exc_transfer(node: Node, state: State) -> State:
        # The acquire is withheld on the statement's own exception edge
        # (start_span raising means no span exists), but a discharge
        # still counts.
        if node.stmt is None:
            return state
        done = _discharged(node.stmt)
        return frozenset(a for a in state if a[0] not in done)

    in_states = forward_fixpoint(cfg, frozenset(), transfer)

    leaks: dict[tuple[str, int], int] = {}
    for pred, kind in cfg.predecessors(CFG.EXIT_RAISE):
        state = in_states.get(pred.id, frozenset())
        state = (
            exc_transfer(pred, state)
            if kind in EXCEPTIONAL_KINDS
            else transfer(pred, state)
        )
        for atom in state:
            leaks.setdefault(atom, pred.line)
            leaks[atom] = min(leaks[atom], pred.line)
    findings = []
    for (var, line), escape_line in sorted(leaks.items()):
        findings.append(
            _finding(
                "MCH074",
                path,
                line,
                f"{name!r} starts span {var!r} here but never ends it if "
                f"the exception path through line {escape_line} is taken; "
                "the span is lost and open_span_count never drains -- "
                "end it in a finally",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# MCH073: use-after-release / use-after-migrate
# ---------------------------------------------------------------------------


def _assigned_keys(stmt: ast.AST) -> set[str]:
    """Dotted names (re)bound by this statement (rebinding clears state)."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [
            item.optional_vars
            for item in stmt.items
            if item.optional_vars is not None
        ]
    keys = set()
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            elements = list(target.elts)
        else:
            elements = [target]
        for element in elements:
            dotted = dotted_name(element)
            if dotted is not None:
                keys.add(dotted)
    return keys


def _typestate_events(node: Node) -> list[tuple]:
    """Ordered events: ``use``/``arg`` checks, ``kill``/``migrate``
    transitions, and ``clear`` rebinds at this node."""
    stmt = node.stmt
    if stmt is None:
        return []
    events: list[tuple] = []
    driven = _yield_from_calls(stmt)
    for sub in _scan_exprs(stmt):
        if not isinstance(sub, ast.Call):
            continue
        attr = last_attr(sub.func)
        key = _receiver(sub)
        if key is not None:
            # The call is itself a use of its receiver; checked against
            # the state *before* any transition this call performs.
            events.append(("use", key, attr, sub.lineno))
            if attr in _DESTROY_ATTRS:
                events.append(("kill", key, attr, sub.lineno))
            elif attr == "migrate" and id(sub) in driven:
                events.append(("migrate", key, sub.lineno))
        for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
            arg_key = dotted_name(arg)
            if arg_key is not None:
                events.append(("arg", arg_key, sub.lineno))
    for key in sorted(_assigned_keys(stmt)):
        events.append(("clear", key))
    return events


def _clear_key(state: set, key: str) -> set:
    prefix = key + "."
    return {a for a in state if a[0] != key and not a[0].startswith(prefix)}


def check_typestate(path: str, func: ast.AST, cfg: CFG) -> list[Finding]:
    """MCH073 over one function (full CFG)."""
    name = getattr(func, "name", "<function>")
    events = {n.id: _typestate_events(n) for n in cfg.stmt_nodes()}

    def replay(node: Node, state: State, emit=None) -> State:
        evs = events.get(node.id)
        if not evs:
            return state
        current = set(state)
        for event in evs:
            kind, key = event[0], event[1]
            if kind in ("use", "arg"):
                for atom in sorted(a for a in current if a[0] == key):
                    if emit is None:
                        continue
                    _key, mark, via, mark_line = atom
                    line = event[-1]
                    if mark == "rel":
                        what = (
                            f"calls {event[2]}() on" if kind == "use" else "passes"
                        )
                        emit(
                            line,
                            f"{name!r} {what} {key!r} after {via}() released "
                            f"it at line {mark_line} (use-after-release on "
                            "some path)",
                        )
                    elif mark == "mig" and kind == "use":
                        if event[2] not in _ALLOWED_AFTER_MIGRATE:
                            emit(
                                line,
                                f"{name!r} calls {event[2]}() on {key!r} "
                                f"after it migrated away at line {mark_line}; "
                                "its state now lives at the migration target",
                            )
            elif kind == "kill":
                current = _clear_key(current, key)
                current.add((key, "rel", event[2], event[3]))
            elif kind == "migrate":
                current = _clear_key(current, key)
                current.add((key, "mig", "migrate", event[2]))
            elif kind == "clear":
                current = _clear_key(current, key)
        return frozenset(current)

    def transfer(node: Node, state: State) -> State:
        return replay(node, state)

    in_states = forward_fixpoint(cfg, frozenset(), transfer)

    findings: list[Finding] = []
    seen: set[tuple[int, str]] = set()

    def emit(line: int, message: str) -> None:
        if (line, message) not in seen:
            seen.add((line, message))
            findings.append(_finding("MCH073", path, line, message))

    for node in cfg.stmt_nodes():
        state = in_states.get(node.id)
        if state is not None:
            replay(node, state, emit=emit)
    return findings
