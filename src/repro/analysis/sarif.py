"""SARIF 2.1.0 serialization for mochi-lint findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading a run makes every finding annotate the PR
diff at its file/line.  One ``run`` carries the whole mochi-lint pass --
static, config, and runtime findings alike -- with each referenced rule
documented once in the tool driver so the annotations link back to the
catalog summary and rationale.
"""

from __future__ import annotations

from typing import Any

from .findings import Finding, Severity
from .registry import info_for

__all__ = ["to_sarif"]

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: mochi-lint severity -> SARIF result level.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _uri(path: str) -> str:
    """A SARIF artifact URI: forward slashes, no pseudo-URI schemes.

    Runtime findings use pseudo-paths like ``race:lock-order``; a bare
    colon would parse as a URI scheme, so it becomes a path separator.
    """
    return path.replace("\\", "/").replace(":", "/").lstrip("./") or "unknown"


def _rule_doc(rule_id: str, fallback_level: str) -> dict[str, Any]:
    info = info_for(rule_id)
    if info is None:
        return {
            "id": rule_id,
            "defaultConfiguration": {"level": fallback_level},
        }
    return {
        "id": info.id,
        "name": info.name,
        "shortDescription": {"text": info.summary},
        "fullDescription": {"text": info.rationale},
        "defaultConfiguration": {"level": _LEVELS.get(info.severity, "warning")},
        # The registry's group is the one source of truth for rule
        # categories; --list-rules and this writer both render it.
        "properties": {"category": info.group, "tags": [info.group]},
    }


def to_sarif(findings: list[Finding], tool_name: str = "mochi-lint") -> dict[str, Any]:
    """Render findings as one SARIF 2.1.0 document with a single run."""
    rules: dict[str, dict[str, Any]] = {}
    results: list[dict[str, Any]] = []
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule_id, f.message))
    for finding in ordered:
        level = _LEVELS.get(finding.severity, "warning")
        if finding.rule_id not in rules:
            rules[finding.rule_id] = _rule_doc(finding.rule_id, level)
        results.append(
            {
                "ruleId": finding.rule_id,
                "level": level,
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": _uri(finding.path)},
                            "region": {"startLine": max(1, finding.line)},
                        }
                    }
                ],
                "properties": {"source": finding.source},
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://github.com/mochi-hpc",
                        "rules": [rules[rid] for rid in sorted(rules)],
                    }
                },
                "results": results,
            }
        ],
    }
