"""The mochi-lint command line.

Installed as ``repro-lint`` (see ``setup.py``), also runnable as
``python -m repro.analysis``.  Exit status: 0 when clean, 1 when any
finding survives suppression, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from . import config_check  # noqa: F401 - registers the MCH02x config rules
from .engine import lint_paths
from .findings import format_findings
from .registry import rule_catalog

__all__ = ["main"]


def _list_rules() -> str:
    lines = ["mochi-lint rule catalog:"]
    group = None
    for info in rule_catalog():
        if info.group != group:
            group = info.group
            lines.append(f"\n[{group}]")
        runtime = "  (also runtime-checked)" if info.runtime_checked else ""
        lines.append(f"  {info.id}  {info.name:<36} {info.summary}{runtime}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Mochi-aware static analyzer: enforces the simulator's "
            "determinism and cooperative-scheduling invariants over "
            "Python sources, and cross-validates Margo/Bedrock JSON "
            "configuration documents."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "examples", "benchmarks"],
        help="files or directories to check (default: src examples benchmarks)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run exclusively (e.g. MCH001,MCH011)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--race",
        action="store_true",
        help=(
            "run the mochi-race dynamic suite (happens-before + lock-order "
            "+ schedule exploration over the example services) instead of "
            "the static pass"
        ),
    )
    parser.add_argument(
        "--race-seeds",
        type=int,
        default=8,
        metavar="N",
        help="perturbation seeds per scenario for --race (default: 8)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.race:
        # Imported lazily: the scenarios pull in the full runtime stack.
        from .race.scenarios import run_race_suite

        emit = print if args.format == "text" else (lambda _line: None)
        findings, _reports = run_race_suite(seeds=args.race_seeds, emit=emit)
    else:
        select = args.select.split(",") if args.select else None
        ignore = args.ignore.split(",") if args.ignore else None
        try:
            findings = lint_paths(args.paths, select=select, ignore=ignore)
        except FileNotFoundError as err:
            print(f"repro-lint: {err}", file=sys.stderr)
            return 2

    if args.format == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2, sort_keys=True))
    elif args.format == "sarif":
        from .sarif import to_sarif

        print(json.dumps(to_sarif(findings), indent=2, sort_keys=True))
    elif findings:
        print(format_findings(findings))
        print(f"\n{len(findings)} finding(s)")
    else:
        print("mochi-lint: clean" + (" (race suite)" if args.race else ""))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
