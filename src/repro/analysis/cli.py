"""The mochi-lint command line.

Installed as ``repro-lint`` (see ``setup.py``), also runnable as
``python -m repro.analysis``.  Exit status: 0 when clean, 1 when any
finding survives suppression, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from . import config_check  # noqa: F401 - registers the MCH02x config rules
from . import flow as _flow  # noqa: F401 - registers MCH070-073
from . import interproc as _interproc  # noqa: F401 - registers MCH014/015/05x/06x
from .baseline import BaselineError, filter_new, load_baseline, write_baseline
from .cache import DEFAULT_CACHE_DIR, LintCache
from .engine import run_lint
from .findings import format_findings
from .registry import rule_catalog

__all__ = ["main"]


def _list_rules() -> str:
    lines = ["mochi-lint rule catalog:"]
    group = None
    for info in rule_catalog():
        if info.group != group:
            group = info.group
            lines.append(f"\n[{group}]")
        runtime = "  (also runtime-checked)" if info.runtime_checked else ""
        lines.append(f"  {info.id}  {info.name:<36} {info.summary}{runtime}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Mochi-aware static analyzer: enforces the simulator's "
            "determinism and cooperative-scheduling invariants over "
            "Python sources, and cross-validates Margo/Bedrock JSON "
            "configuration documents."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "examples", "benchmarks"],
        help="files or directories to check (default: src examples benchmarks)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run exclusively (e.g. MCH001,MCH011)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--interproc",
        action="store_true",
        help=(
            "also run the mochi-deps whole-program passes (call-graph "
            "effect inference, RPC contracts, partition safety, "
            "migration coverage: MCH014/015/050-053/060/061)"
        ),
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "also run the mochi-flow path-sensitive passes (per-function "
            "CFG + typestate: respond-exactly-once, lock release balance, "
            "exception-path resource leaks, use-after-release/migrate: "
            "MCH070-073)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print analysis coverage counters (dynamic call sites "
            "skipped, RPC pairs checked, cache hit rate) to stderr"
        ),
    )
    parser.add_argument(
        "--allowlist",
        metavar="FILE",
        default="partition-allowlist.txt",
        help=(
            "partition-safety allowlist for MCH060 "
            "(default: partition-allowlist.txt, if it exists)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental per-file result cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "per-file-lint only files git reports as changed (whole-"
            "program passes still run over the full tree)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="fail only on findings not recorded in this baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline (default lint-baseline.json) from the "
        "current findings and exit",
    )
    parser.add_argument(
        "--race",
        action="store_true",
        help=(
            "run the mochi-race dynamic suite (happens-before + lock-order "
            "+ schedule exploration over the example services) instead of "
            "the static pass"
        ),
    )
    parser.add_argument(
        "--race-seeds",
        type=int,
        default=8,
        metavar="N",
        help="perturbation seeds per scenario for --race (default: 8)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.race:
        # Imported lazily: the scenarios pull in the full runtime stack.
        from .race.scenarios import run_race_suite

        emit = print if args.format == "text" else (lambda _line: None)
        findings, _reports = run_race_suite(seeds=args.race_seeds, emit=emit)
    else:
        select = args.select.split(",") if args.select else None
        ignore = args.ignore.split(",") if args.ignore else None
        cache = (
            None
            if args.no_cache
            else LintCache(args.cache_dir, select=select, ignore=ignore)
        )
        try:
            result = run_lint(
                args.paths,
                select=select,
                ignore=ignore,
                cache=cache,
                changed_only=args.changed_only,
                interproc=args.interproc,
                flow=args.flow,
                allowlist_path=args.allowlist,
            )
        except FileNotFoundError as err:
            print(f"repro-lint: {err}", file=sys.stderr)
            return 2
        findings = result.findings
        if args.stats and result.stats:
            for key in sorted(result.stats):
                print(f"repro-lint: stats {key}={result.stats[key]}", file=sys.stderr)

    if args.update_baseline:
        baseline_path = args.baseline or "lint-baseline.json"
        count = write_baseline(baseline_path, findings)
        print(f"repro-lint: wrote {count} finding(s) to {baseline_path}")
        return 0
    if args.baseline:
        try:
            known = load_baseline(args.baseline)
        except BaselineError as err:
            print(f"repro-lint: {err}", file=sys.stderr)
            return 2
        baselined = len(findings)
        findings = filter_new(findings, known)
        baselined -= len(findings)
        if baselined and args.format == "text":
            print(f"repro-lint: {baselined} baselined finding(s) hidden")

    if args.format == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2, sort_keys=True))
    elif args.format == "sarif":
        from .sarif import to_sarif

        print(json.dumps(to_sarif(findings), indent=2, sort_keys=True))
    elif findings:
        print(format_findings(findings))
        print(f"\n{len(findings)} finding(s)")
    else:
        print("mochi-lint: clean" + (" (race suite)" if args.race else ""))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
