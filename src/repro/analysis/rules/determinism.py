"""Determinism rules (MCH00x).

Code running under the simulated Margo runtime must produce bit-identical
schedules for equal seeds.  Anything that reads the real world -- the
wall clock, the process RNG, the environment -- silently breaks that
contract without failing a single functional test, which is exactly why
these are lint rules and not assertions.
"""

from __future__ import annotations

import ast

from ..findings import Finding, Severity
from ..registry import (
    GROUP_DETERMINISM,
    FileContext,
    RuleInfo,
    rule,
)
from . import call_name, dotted_name

__all__ = ["WALL_CLOCK_CALLS", "UNSEEDED_RANDOM_CALLS"]

#: Callables that read (or block on) the host's wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``random`` module-level functions (they draw from the shared,
#: process-global generator, whose state no simulation seed controls).
UNSEEDED_RANDOM_CALLS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.triangular",
        "random.betavariate",
        "random.expovariate",
        "random.gammavariate",
        "random.gauss",
        "random.lognormvariate",
        "random.normalvariate",
        "random.vonmisesvariate",
        "random.paretovariate",
        "random.weibullvariate",
        "random.getrandbits",
        "random.randbytes",
    }
)

#: Other nondeterministic entropy sources.
ENTROPY_CALLS = frozenset(
    {"os.urandom", "uuid.uuid1", "uuid.uuid4", "os.getrandom"}
)

_UNORDERED_LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)


@rule(
    RuleInfo(
        id="MCH001",
        name="wall-clock-access",
        group=GROUP_DETERMINISM,
        severity=Severity.ERROR,
        summary="call reads or blocks on the host wall clock",
        rationale=(
            "simulated components must take time only from SimKernel.now "
            "and pass time only via Sleep/UltSleep/Compute; a wall-clock "
            "read makes two runs with the same seed diverge, and a real "
            "sleep stalls the single-threaded event loop"
        ),
    )
)
def check_wall_clock(ctx: FileContext) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in WALL_CLOCK_CALLS:
                findings.append(
                    Finding(
                        "MCH001",
                        Severity.ERROR,
                        ctx.path,
                        node.lineno,
                        f"wall-clock call {name}(); use SimKernel.now / "
                        "Sleep for simulated time",
                    )
                )
    return findings


@rule(
    RuleInfo(
        id="MCH002",
        name="unseeded-randomness",
        group=GROUP_DETERMINISM,
        severity=Severity.ERROR,
        summary="randomness drawn from an unseeded / process-global source",
        rationale=(
            "every stochastic decision must draw from a named "
            "repro.sim.random.RandomSource stream so that adding "
            "randomness to one subsystem never perturbs another; the "
            "global `random` module and OS entropy are seeded by the host"
        ),
    )
)
def check_unseeded_random(ctx: FileContext) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        offender = None
        if name in UNSEEDED_RANDOM_CALLS or name in ENTROPY_CALLS:
            offender = f"{name}()"
        elif name == "random.Random" and not node.args and not node.keywords:
            offender = "random.Random() with no seed"
        elif name == "random.seed" and not node.args and not node.keywords:
            offender = "random.seed() with no argument (reseeds from the OS)"
        elif name.startswith("secrets."):
            offender = f"{name}() (OS entropy)"
        elif name.startswith(("numpy.random.", "np.random.")):
            offender = f"{name}() (global numpy generator)"
        if offender is not None:
            findings.append(
                Finding(
                    "MCH002",
                    Severity.ERROR,
                    ctx.path,
                    node.lineno,
                    f"unseeded randomness: {offender}; draw from a "
                    "RandomSource stream instead",
                )
            )
    return findings


def _is_unordered_iterable(node: ast.AST) -> str | None:
    """Describe ``node`` if iterating it is environment-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set (iteration order follows PYTHONHASHSEED)"
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return f"{name}() (iteration order follows PYTHONHASHSEED)"
        if name in _UNORDERED_LISTING_CALLS:
            return f"{name}() (directory order is filesystem-dependent)"
    if dotted_name(node) == "os.environ":
        return "os.environ (order and content are host-dependent)"
    return None


@rule(
    RuleInfo(
        id="MCH003",
        name="env-dependent-iteration",
        group=GROUP_DETERMINISM,
        severity=Severity.ERROR,
        summary="iteration order depends on the environment, not the seed",
        rationale=(
            "set iteration order changes with PYTHONHASHSEED and "
            "os.listdir order with the filesystem; if such an order ever "
            "decides which event is scheduled first, two identical runs "
            "produce different schedules -- wrap the iterable in sorted()"
        ),
    )
)
def check_env_iteration(ctx: FileContext) -> list[Finding]:
    findings = []

    def flag(node: ast.AST, where: str) -> None:
        why = _is_unordered_iterable(node)
        if why is not None:
            findings.append(
                Finding(
                    "MCH003",
                    Severity.ERROR,
                    ctx.path,
                    node.lineno,
                    f"{where} iterates {why}; wrap it in sorted(...)",
                )
            )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For):
            flag(node.iter, "for loop")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for comp in node.generators:
                flag(comp.iter, "comprehension")
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name in ("list", "tuple") and len(node.args) == 1:
                flag(node.args[0], f"{name}()")
    return findings
