"""mochi-lint rule catalog.

Importing this package registers every static rule with the registry.
Shared AST helpers used by the rule modules live here.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = [
    "dotted_name",
    "call_name",
    "own_body_walk",
    "function_defs",
    "is_ult_generator",
    "ordered_walk",
]

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Kernel / ULT command constructors: a generator that yields one of
#: these is, by construction, code running under the simulation kernel.
ULT_COMMANDS = frozenset(
    {"Sleep", "WaitEvent", "Compute", "Park", "UltSleep", "UltYield"}
)

#: Methods whose generators ULT code composes with ``yield from``.
ULT_DELEGATES = frozenset(
    {"forward", "bulk_transfer", "acquire", "wait", "ult_sleep"}
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    return dotted_name(node.func)


def last_attr(node: ast.AST) -> Optional[str]:
    """The final attribute/name of a call target (``c`` for ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def function_defs(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, FunctionNode):
            yield node


def own_body_walk(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body, not entering nested function/class defs."""
    stack: list[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, FunctionNode + (ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def ordered_walk(node: ast.AST) -> list[ast.AST]:
    """All descendants of ``node`` in source order (line, column)."""
    nodes = [n for n in ast.walk(node) if hasattr(n, "lineno")]
    nodes.sort(key=lambda n: (n.lineno, n.col_offset))
    return nodes


def is_ult_generator(func: ast.AST) -> bool:
    """True when the function body is a kernel task / ULT body: it yields
    kernel commands, or delegates to runtime generators via yield-from."""
    for node in own_body_walk(func):
        if isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
            if last_attr(node.value.func) in ULT_COMMANDS:
                return True
        elif isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call):
            if last_attr(node.value.func) in ULT_DELEGATES:
                return True
    return False


# Import the rule modules for their registration side effects.
from . import determinism as _determinism  # noqa: E402,F401
from . import monitoring as _monitoring  # noqa: E402,F401
from . import perf as _perf  # noqa: E402,F401
from . import scheduling as _scheduling  # noqa: E402,F401
