"""Observability rules (MCH004, MCH005).

Monitoring and profiling callbacks fire on every RPC and every
scheduling event.  State they accumulate must therefore be bounded by
construction -- a ring buffer (``deque(maxlen=...)``) or a windowed
rollup that evicts as it fills, like the continuous profiler's
``ProfileStore``.  A module-level list that grows by one entry per
event is a memory leak proportional to simulated traffic, and no
functional test ever notices it (MCH004).

The same callbacks are also where failures disappear: an ``except``
block in a monitor hook or an introspection handler that neither
re-raises nor increments an error counter turns a broken observer into
silence -- the one component whose job is to notice problems becomes
the one place problems are invisible (MCH005)."""

from __future__ import annotations

import ast
from typing import Optional

from ..findings import Finding, Severity
from ..registry import GROUP_OBSERVABILITY, FileContext, RuleInfo, rule
from . import FunctionNode, last_attr

__all__ = ["GROWING_METHODS"]

#: Mutating methods that add entries to a container.
GROWING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "update",
        "setdefault",
    }
)

#: dict-like constructors (matched on their final attribute, so both
#: ``defaultdict(...)`` and ``collections.defaultdict(...)`` hit).
_DICT_CALLS = frozenset({"defaultdict", "OrderedDict", "Counter"})


def _deque_is_bounded(node: ast.Call) -> bool:
    """``deque(maxlen=N)`` (or positional maxlen) with a non-None bound."""
    bound: Optional[ast.expr] = None
    if len(node.args) >= 2:
        bound = node.args[1]
    for kw in node.keywords:
        if kw.arg == "maxlen":
            bound = kw.value
    if bound is None:
        return False
    return not (isinstance(bound, ast.Constant) and bound.value is None)


def _container_kind(node: ast.AST) -> Optional[str]:
    """'list' / 'dict' / 'set' when ``node`` builds an unbounded mutable
    container, else None (bounded rings and non-containers pass)."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        name = last_attr(node.func)
        if name == "deque":
            return None if _deque_is_bounded(node) else "deque"
        if name in ("list", "dict", "set") and not node.args and not node.keywords:
            return name
        if name in _DICT_CALLS:
            return "dict"
    return None


def _module_containers(tree: ast.Module) -> dict[str, tuple[str, int]]:
    """name -> (kind, def line) for module-level unbounded containers."""
    containers: dict[str, tuple[str, int]] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        kind = _container_kind(value)
        if kind is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                containers[target.id] = (kind, stmt.lineno)
    return containers


def _is_hook(func: ast.AST) -> bool:
    """Monitoring callbacks follow the ``on_<event>`` hook convention
    (RPC handlers use ``_on_<rpc>`` and are covered by MCH012)."""
    return getattr(func, "name", "").startswith("on_")


def _growth_sites(func: ast.AST, containers: dict) -> list[tuple[int, str, str]]:
    """(line, name, how) for each statement growing a known container."""
    sites = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = node.func
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.attr in GROWING_METHODS
                and target.value.id in containers
            ):
                sites.append((node.lineno, target.value.id, f".{target.attr}()"))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for tgt in targets:
                if (
                    isinstance(tgt, ast.Subscript)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id in containers
                ):
                    sites.append((node.lineno, tgt.value.id, "[key] assignment"))
    return sites


@rule(
    RuleInfo(
        id="MCH004",
        name="unbounded-monitoring-state",
        group=GROUP_OBSERVABILITY,
        severity=Severity.ERROR,
        summary="monitoring callback grows module-level state without a bound",
        rationale=(
            "monitor and profiler hooks run once per RPC / scheduling "
            "event: appending to a module-level list or dict there leaks "
            "memory in proportion to simulated traffic, and no functional "
            "test notices; keep per-event state in a ring "
            "(deque(maxlen=...)) or a windowed rollup that evicts as it "
            "fills, as the continuous profiler does"
        ),
    )
)
def check_unbounded_monitoring_state(ctx: FileContext) -> list[Finding]:
    containers = _module_containers(ctx.tree)
    if not containers:
        return []
    findings = []
    for func in ast.walk(ctx.tree):
        if not (isinstance(func, FunctionNode) and _is_hook(func)):
            continue
        for line, name, how in _growth_sites(func, containers):
            kind, def_line = containers[name]
            findings.append(
                Finding(
                    "MCH004",
                    Severity.ERROR,
                    ctx.path,
                    line,
                    f"hook {func.name!r} grows module-level {kind} {name!r} "
                    f"(defined line {def_line}) via {how} with no bound; "
                    "use a ring buffer (deque(maxlen=...)) or a windowed "
                    "rollup instead",
                )
            )
    return findings


#: Call suffixes that count as observing a failure inside an except
#: block: counter increments and flight-recorder / registry appends.
_OBSERVING_CALLS = frozenset({"inc", "record"})


def _is_observer(func: ast.AST) -> bool:
    """Functions MCH005 holds to the observe-or-reraise contract:
    ``on_<event>`` monitor hooks (the MCH004 convention) and Bedrock
    introspection handlers (``_on_get_*`` / ``_on_query``)."""
    name = getattr(func, "name", "")
    return name.startswith("on_") or name.startswith("_on_get_") or name == "_on_query"


def _handler_observes(handler: ast.ExceptHandler) -> bool:
    """True when the except body re-raises or visibly counts the error."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and last_attr(node.func) in _OBSERVING_CALLS:
            return True
    return False


@rule(
    RuleInfo(
        id="MCH005",
        name="unobserved-failure-swallow",
        group=GROUP_OBSERVABILITY,
        severity=Severity.ERROR,
        summary="observer except-block swallows the failure it should count",
        rationale=(
            "monitor hooks and introspection handlers are the system's "
            "eyes: an `except` there that neither re-raises nor "
            "increments an error counter makes observer failures "
            "invisible exactly where visibility is the job; count the "
            "error (`...errors.inc()`), record it, or re-raise"
        ),
    )
)
def check_unobserved_failure_swallow(ctx: FileContext) -> list[Finding]:
    findings = []
    for func in ast.walk(ctx.tree):
        if not (isinstance(func, FunctionNode) and _is_observer(func)):
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _handler_observes(node):
                continue
            caught = ast.unparse(node.type) if node.type is not None else "BaseException"
            findings.append(
                Finding(
                    "MCH005",
                    Severity.ERROR,
                    ctx.path,
                    node.lineno,
                    f"observer {func.name!r} swallows {caught} without "
                    "re-raising or incrementing an error counter; failures "
                    "in the observation path must be observable themselves",
                )
            )
    return findings
