"""Cooperative-scheduling rules (MCH01x).

The kernel is single-threaded and cooperative: an RPC handler ULT that
blocks for real, parks forever, or suspends while holding a mutex does
not crash anything -- it silently wedges or serializes the simulation.
PR 2 fixed two shipped bugs of exactly this shape; these rules catch the
class statically.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..findings import Finding, Severity
from ..registry import GROUP_SCHEDULING, FileContext, RuleInfo, rule
from . import (
    FunctionNode,
    call_name,
    function_defs,
    is_ult_generator,
    last_attr,
    own_body_walk,
)

#: Real-world blocking calls that stall the whole event loop when issued
#: from inside a kernel task / ULT body.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "input",
        "os.system",
        "os.popen",
        "os.wait",
        "select.select",
        "socket.socket",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.delete",
        "requests.request",
        "urllib.request.urlopen",
        "threading.Thread",
        "threading.Lock",
        "threading.Event",
        "multiprocessing.Process",
        "queue.Queue",
    }
)

#: Yielded commands that suspend the ULT (give up the stream).
_SUSPENDING_COMMANDS = frozenset({"Sleep", "UltSleep", "Park", "WaitEvent"})

#: ``yield from`` delegates that suspend the calling ULT.
_SUSPENDING_DELEGATES = frozenset({"forward", "wait", "ult_sleep", "bulk_transfer"})


def _blocking_helpers(tree: ast.Module) -> dict[str, tuple[str, int]]:
    """name -> (blocking call, def line) for plain helpers that block.

    One hop of call graph: a helper that is *not* itself a ULT generator
    (those are flagged directly) but whose own body issues a blocking
    call.  Calling such a helper from a ULT stalls the loop just as
    surely as inlining the ``time.sleep``.
    """
    helpers: dict[str, tuple[str, int]] = {}
    for func in function_defs(tree):
        if is_ult_generator(func):
            continue
        for node in own_body_walk(func):
            if isinstance(node, ast.Call) and call_name(node) in BLOCKING_CALLS:
                helpers[func.name] = (call_name(node), func.lineno)
                break
    return helpers


def _local_callee(node: ast.Call) -> Optional[str]:
    """The called name when the target is ``helper()`` or ``self.helper()``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return func.attr
    return None


def _is_handler(func: ast.AST) -> bool:
    """Heuristic: RPC handler bodies follow the ``_on_<rpc>`` convention
    (and must be generators to yield kernel commands)."""
    name = getattr(func, "name", "")
    if not name.startswith(("on_", "_on_")):
        return False
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in own_body_walk(func)
    )


@rule(
    RuleInfo(
        id="MCH010",
        name="blocking-call-in-ult",
        group=GROUP_SCHEDULING,
        severity=Severity.ERROR,
        summary="real blocking call inside a kernel task / ULT body",
        rationale=(
            "the kernel is single-threaded: one time.sleep() or socket "
            "read inside a ULT freezes every simulated process at once; "
            "blocking must be expressed as Sleep/UltSleep/Park so the "
            "scheduler can run other work"
        ),
        runtime_checked=False,
    )
)
def check_blocking_call(ctx: FileContext) -> list[Finding]:
    findings = []
    helpers = _blocking_helpers(ctx.tree)
    for func in function_defs(ctx.tree):
        if not is_ult_generator(func):
            continue
        for node in own_body_walk(func):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) in BLOCKING_CALLS:
                findings.append(
                    Finding(
                        "MCH010",
                        Severity.ERROR,
                        ctx.path,
                        node.lineno,
                        f"blocking call {call_name(node)}() inside ULT body "
                        f"{func.name!r}; yield a kernel command instead",
                    )
                )
                continue
            callee = _local_callee(node)
            if callee is not None and callee in helpers:
                blocked_by, def_line = helpers[callee]
                findings.append(
                    Finding(
                        "MCH010",
                        Severity.ERROR,
                        ctx.path,
                        node.lineno,
                        f"ULT body {func.name!r} calls helper {callee!r} "
                        f"(defined line {def_line}) which blocks via "
                        f"{blocked_by}(); yield a kernel command instead",
                    )
                )
    return findings


def _lock_events(func: ast.AST) -> list[tuple[int, int, str, str]]:
    """(line, col, kind, detail) events in source order.

    kinds: ``acquire`` (yield from ...acquire()), ``release``
    (...release() call), ``suspend`` (a yielded command or delegate that
    gives up the stream).
    """
    events = []
    yielded_calls: set[int] = set()
    for node in own_body_walk(func):
        if isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call):
            call = node.value
            yielded_calls.add(id(call))
            attr = last_attr(call.func)
            if attr == "acquire":
                events.append((node.lineno, node.col_offset, "acquire", "acquire"))
            elif attr in _SUSPENDING_DELEGATES:
                events.append((node.lineno, node.col_offset, "suspend", f"{attr}()"))
        elif isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
            call = node.value
            yielded_calls.add(id(call))
            attr = last_attr(call.func)
            if attr in _SUSPENDING_COMMANDS:
                events.append((node.lineno, node.col_offset, "suspend", attr))
    for node in own_body_walk(func):
        if (
            isinstance(node, ast.Call)
            and id(node) not in yielded_calls
            and last_attr(node.func) == "release"
        ):
            events.append((node.lineno, node.col_offset, "release", "release"))
    events.sort()
    return events


@rule(
    RuleInfo(
        id="MCH011",
        name="yield-while-holding-lock",
        group=GROUP_SCHEDULING,
        severity=Severity.ERROR,
        summary="ULT suspends (Sleep/Park/forward/...) while holding a mutex",
        rationale=(
            "a suspended lock holder serializes every other ULT that "
            "needs the mutex behind an arbitrary sleep or remote peer -- "
            "and deadlocks outright if the wakeup depends on a waiter; "
            "hold locks only across Compute sections"
        ),
        runtime_checked=True,
    )
)
def check_yield_holding_lock(ctx: FileContext) -> list[Finding]:
    findings = []
    for func in function_defs(ctx.tree):
        held = 0
        for line, _col, kind, detail in _lock_events(func):
            if kind == "acquire":
                held += 1
            elif kind == "release":
                held = max(0, held - 1)
            elif kind == "suspend" and held > 0:
                findings.append(
                    Finding(
                        "MCH011",
                        Severity.ERROR,
                        ctx.path,
                        line,
                        f"{func.name!r} suspends ({detail}) while holding a "
                        "mutex; release before yielding the stream",
                    )
                )
    return findings


def _unbounded_wait(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it waits with no timeout, else None."""
    if not isinstance(node, ast.Call):
        return None
    attr = last_attr(node.func)
    if attr in ("Park", "WaitEvent"):
        timeout: Optional[ast.expr] = None
        if len(node.args) >= 2:
            timeout = node.args[1]
        for kw in node.keywords:
            if kw.arg == "timeout":
                timeout = kw.value
        if timeout is None or (
            isinstance(timeout, ast.Constant) and timeout.value is None
        ):
            return f"{attr} with no timeout"
    elif attr == "wait" and not node.args and not node.keywords:
        return "wait() with no timeout"
    return None


def _loops_forever(func: ast.AST) -> Optional[int]:
    """Line of a ``while True:`` in ``func`` with no exit path, if any."""
    for node in own_body_walk(func):
        if not isinstance(node, ast.While):
            continue
        test = node.test
        if not (isinstance(test, ast.Constant) and test.value is True):
            continue
        exits = any(
            isinstance(inner, (ast.Return, ast.Break, ast.Raise))
            for inner in ast.walk(node)
        )
        if not exits:
            return node.lineno
    return None


@rule(
    RuleInfo(
        id="MCH012",
        name="handler-never-responds",
        group=GROUP_SCHEDULING,
        severity=Severity.ERROR,
        summary="RPC handler path that can block forever without responding",
        rationale=(
            "every dispatched RPC must end in a response or an error "
            "response -- a handler parked on an event with no timeout, or "
            "spinning in an exit-less loop, leaves the caller waiting "
            "until its own timeout (or forever), which is how the paper's "
            "services wedge under reconfiguration"
        ),
        runtime_checked=True,
    )
)
def check_handler_responds(ctx: FileContext) -> list[Finding]:
    findings = []
    for func in function_defs(ctx.tree):
        if not _is_handler(func):
            continue
        for node in own_body_walk(func):
            why = _unbounded_wait(node)
            if why is not None:
                findings.append(
                    Finding(
                        "MCH012",
                        Severity.ERROR,
                        ctx.path,
                        node.lineno,
                        f"handler {func.name!r} waits unboundedly ({why}); "
                        "pass a timeout so the caller always gets a response",
                    )
                )
        loop_line = _loops_forever(func)
        if loop_line is not None:
            findings.append(
                Finding(
                    "MCH012",
                    Severity.ERROR,
                    ctx.path,
                    loop_line,
                    f"handler {func.name!r} contains a `while True` loop "
                    "with no return/break/raise; it can never respond",
                )
            )
    return findings


def _is_monitor_class(node: ast.ClassDef) -> bool:
    if "Monitor" in node.name or node.name.endswith("Tracer"):
        return True
    for base in node.bases:
        name = last_attr(base)
        if name is not None and ("Monitor" in name or name.endswith("Tracer")):
            return True
    return False


@rule(
    RuleInfo(
        id="MCH013",
        name="monitor-hook-misbehavior",
        group=GROUP_SCHEDULING,
        severity=Severity.ERROR,
        summary="monitor hook raises, yields, or issues RPCs",
        rationale=(
            "monitoring callbacks run inline on the RPC fast path with "
            "no ULT context of their own: a raise would take the data "
            "path down (the runtime now contains it, but counts it as an "
            "error), a forward() would recurse into the dispatcher, and "
            "a yield makes the hook a no-op generator"
        ),
    )
)
def check_monitor_hooks(ctx: FileContext) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.ClassDef) and _is_monitor_class(node)):
            continue
        for method in node.body:
            if not isinstance(method, FunctionNode):
                continue
            if not method.name.startswith("on_"):
                continue
            for inner in own_body_walk(method):
                bad = None
                if isinstance(inner, ast.Raise):
                    bad = "raises"
                elif isinstance(inner, (ast.Yield, ast.YieldFrom)):
                    bad = "yields (hooks are plain callbacks, not ULTs)"
                elif isinstance(inner, ast.Call) and last_attr(inner.func) == "forward":
                    bad = "issues an RPC via forward()"
                if bad is not None:
                    findings.append(
                        Finding(
                            "MCH013",
                            Severity.ERROR,
                            ctx.path,
                            inner.lineno,
                            f"monitor hook {node.name}.{method.name} {bad}; "
                            "hooks must observe and record only",
                        )
                    )
    return findings
