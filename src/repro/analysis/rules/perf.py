"""Hot-path performance rules (MCH00x, perf group).

The P1 speed round flattened the kernel's schedule→fire path into slot
lists precisely to kill per-event allocation; functions on that path are
annotated ``# mochi-lint: hotpath`` (the comment sits on the ``def``
line or the line directly above it).  MCH006 keeps them flat: a lambda,
a nested ``def`` (closure cell + function object per call), or a dict
literal/comprehension inside a marked function is an allocation the
event loop pays millions of times, the exact regression the wheel
rewrite removed.
"""

from __future__ import annotations

import ast

from ..findings import Finding, Severity
from ..registry import GROUP_PERF, FileContext, RuleInfo, rule
from . import FunctionNode, function_defs, own_body_walk

HOTPATH_MARKER = "mochi-lint: hotpath"


def _is_hotpath(func: ast.AST, lines: list[str]) -> bool:
    """True when the marker comment is on the ``def`` line or the line
    directly above it (above any decorators, the repo convention puts it
    immediately over the ``def``)."""
    lineno = getattr(func, "lineno", 0)
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines) and HOTPATH_MARKER in lines[candidate - 1]:
            return True
    return False


def _describe(node: ast.AST) -> str:
    if isinstance(node, ast.Lambda):
        return "lambda (a function object per call)"
    if isinstance(node, FunctionNode):
        return f"nested def {node.name!r} (a closure per call)"
    if isinstance(node, ast.DictComp):
        return "dict comprehension (a fresh dict per call)"
    return "dict literal (a fresh dict per call)"


@rule(
    RuleInfo(
        id="MCH006",
        name="hotpath-allocation",
        group=GROUP_PERF,
        severity=Severity.WARNING,
        summary="per-call allocation inside a '# mochi-lint: hotpath' function",
        rationale=(
            "hot-path functions (kernel post/schedule, pool push/pop, "
            "task step) run once per simulated event -- millions of "
            "times per run; a lambda, closure, or dict literal there "
            "allocates and GC-tracks an object per event, the exact "
            "overhead the P1 flat-slot rewrite removed, so keep state "
            "in preallocated slots or hoist it out of the function"
        ),
        runtime_checked=False,
    )
)
def check_hotpath_allocation(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    lines = ctx.lines
    for func in function_defs(ctx.tree):
        if not _is_hotpath(func, lines):
            continue
        for node in own_body_walk(func):
            if isinstance(node, (ast.Lambda, ast.Dict, ast.DictComp) + FunctionNode):
                findings.append(
                    Finding(
                        "MCH006",
                        Severity.WARNING,
                        ctx.path,
                        node.lineno,
                        f"{_describe(node)} inside hot-path function "
                        f"{func.name!r}; allocate outside the per-event "
                        "path or use preallocated slots",
                        source="static",
                    )
                )
    return findings
