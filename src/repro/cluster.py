"""Deployment convenience: build a simulated cluster in a few lines.

A :class:`Cluster` owns the kernel, network, randomness, and fault
injector, and offers helpers to create nodes, Margo-equipped processes,
and to drive ULTs to completion.  Examples, tests, and benchmarks all
start here::

    cluster = Cluster(seed=1)
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1")
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        reply = yield from client.forward(server.address, "echo", "hi")
        return reply

    assert cluster.run_ult(client, driver()) == "hi"
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .margo.runtime import MargoInstance
from .margo.ult import ULT
from .observability import exporters as _obs_exporters
from .observability.health.plane import HealthPlane
from .observability.tracer import Tracer
from .sim.faults import FaultInjector
from .sim.kernel import SimKernel, WaitEvent
from .sim.network import Network, NetworkConfig, Node, Process
from .sim.random import RandomSource

__all__ = ["Cluster", "UltFailedError"]


class UltFailedError(RuntimeError):
    """A driver ULT raised; the original error is ``__cause__``."""


class Cluster:
    """A self-contained simulated deployment."""

    def __init__(
        self,
        seed: int = 0,
        network_config: Optional[NetworkConfig] = None,
    ) -> None:
        self.kernel = SimKernel()
        self.randomness = RandomSource(seed)
        self.network = Network(self.kernel, config=network_config, randomness=self.randomness)
        self.faults = FaultInjector(self.kernel, self.network)
        self.margos: dict[str, MargoInstance] = {}
        #: The cluster health plane (ISSUE 6); ``None`` until
        #: :meth:`enable_health` opts in.
        self.health: Optional[HealthPlane] = None

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> Node:
        return self.network.add_node(name)

    def node(self, name: str) -> Node:
        if name not in self.network.nodes:
            return self.network.add_node(name)
        return self.network.nodes[name]

    def add_process(self, name: str, node: str | Node) -> Process:
        if isinstance(node, str):
            node = self.node(node)
        return self.network.add_process(name, node)

    def add_margo(
        self,
        name: str,
        node: str | Node,
        config: Any = None,
        monitors: tuple = (),
        default_rpc_timeout: Optional[float] = None,
    ) -> MargoInstance:
        """Create a process on ``node`` running a Margo instance."""
        process = self.add_process(name, node)
        margo = MargoInstance(
            process,
            self.network,
            config=config,
            monitors=monitors,
            default_rpc_timeout=default_rpc_timeout,
        )
        self.margos[name] = margo
        return margo

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run_ult(self, margo: MargoInstance, gen: Generator, pool: Any = None) -> Any:
        """Run ``gen`` as a ULT on ``margo`` until it finishes.

        Returns the ULT's return value; re-raises its exception wrapped
        in :class:`UltFailedError` context for a clear traceback.
        """
        ult = self.spawn(margo, gen, pool=pool)
        done = self.kernel.event(name=f"cluster-wait:{ult.name}")
        ult.on_finish.append(lambda _ult: done.set(None))

        def waiter():
            if ult.state.value != "done":
                yield WaitEvent(done)
            return None

        task = self.kernel.spawn(waiter(), name=f"wait:{ult.name}")
        self.kernel.run(until_tasks=[task])
        if ult.error is not None:
            raise ult.error
        return ult.result

    def spawn(self, margo: MargoInstance, gen: Generator, pool: Any = None, name: str = "") -> ULT:
        """Start a ULT without waiting for it."""
        return margo.spawn_ult(gen, pool=pool, name=name)

    def wait_ults(self, ults: list[ULT]) -> list[Any]:
        """Run the simulation until every ULT in ``ults`` finishes.

        Unlike ``kernel.run()`` with no stop condition, this works in the
        presence of perpetual background activity (SWIM loops, samplers).
        Returns the ULTs' results; re-raises the first error.
        """
        pending = [u for u in ults if u.state.value != "done"]
        if pending:
            done = self.kernel.event(name="cluster-wait-ults")
            remaining = {"n": len(pending)}

            def on_one_finished(_ult) -> None:
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    done.set(None)

            for ult in pending:
                ult.on_finish.append(on_one_finished)

            def waiter():
                yield WaitEvent(done)

            task = self.kernel.spawn(waiter(), name="wait-ults")
            self.kernel.run(until_tasks=[task])
        for ult in ults:
            if ult.error is not None:
                raise ult.error
        return [u.result for u in ults]

    def run(self, **kwargs: Any) -> None:
        """Advance the simulation (passes through to ``kernel.run``)."""
        self.kernel.run(**kwargs)

    @property
    def now(self) -> float:
        return self.kernel.now

    # ------------------------------------------------------------------
    # observability (cluster-wide views over per-process planes)
    # ------------------------------------------------------------------
    def enable_health(self, **kwargs: Any) -> HealthPlane:
        """Attach the cluster health plane (flight recorder, failure
        detector, health registry, incident log).  Idempotent: a second
        call returns the existing plane.  Keyword arguments pass through
        to :class:`~repro.observability.health.HealthPlane`."""
        if self.health is None:
            HealthPlane(self, **kwargs)  # installs itself as self.health
        return self.health

    def tracers(self) -> list[Tracer]:
        """Tracers of every margo with tracing enabled (sorted by name)."""
        return [
            self.margos[name].tracer
            for name in sorted(self.margos)
            if self.margos[name].tracer is not None
        ]

    def profilers(self) -> list[Any]:
        """Profilers of every margo with profiling enabled (sorted by name)."""
        return [
            self.margos[name].profiler
            for name in sorted(self.margos)
            if self.margos[name].profiler is not None
        ]

    def xray_plane(self) -> Optional[Any]:
        """The kernel-shared mochi-xray plane, or ``None`` when no
        process enabled ``observability.xray``."""
        return getattr(self.kernel, "xray_plane", None)

    def chrome_trace(self, highlight_critical: bool = False) -> dict[str, Any]:
        """All spans cluster-wide as one Chrome trace-event document."""
        return _obs_exporters.chrome_trace(
            *self.tracers(), highlight_critical=highlight_critical
        )

    def dumps_chrome_trace(self, indent: int = 2) -> str:
        return _obs_exporters.dumps_chrome_trace(*self.tracers(), indent=indent)

    def metrics_snapshot(self) -> dict[str, Any]:
        """Every process's metrics registry, keyed by process name."""
        return _obs_exporters.metrics_snapshot(
            {name: margo.metrics for name, margo in self.margos.items()}
        )
