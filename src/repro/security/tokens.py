"""Capability tokens: HMAC-signed, scoped, expiring.

The paper's future-work direction (section 9): "security needs to be
enabled in a composable manner, that is, by providing security
components to form secure building blocks."  Tokens are the portable
capability those blocks exchange: a signed JSON payload naming the
principal, its scopes (component type -> allowed operations), an expiry
(in simulated time), and a unique id (for revocation).
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["TokenError", "TokenPayload", "sign_token", "verify_token"]


class TokenError(RuntimeError):
    """Invalid, expired, or tampered token."""


@dataclass(frozen=True)
class TokenPayload:
    """What a verified token asserts."""

    principal: str
    scopes: dict[str, list[str]]  # component type -> operations
    expires_at: float  # simulated seconds
    token_id: str

    def allows(self, component_type: str, operation: str) -> bool:
        operations = self.scopes.get(component_type)
        if operations is None:
            return False
        return "*" in operations or operation in operations


def _signature(secret: str, body: bytes) -> str:
    return hmac.new(secret.encode(), body, hashlib.sha256).hexdigest()


def sign_token(
    secret: str,
    principal: str,
    scopes: dict[str, list[str]],
    expires_at: float,
    token_id: str,
) -> str:
    """Produce a token string: ``base64(payload).hexhmac``."""
    payload = {
        "principal": principal,
        "scopes": scopes,
        "expires_at": expires_at,
        "token_id": token_id,
    }
    body = json.dumps(payload, sort_keys=True).encode()
    encoded = base64.urlsafe_b64encode(body).decode()
    return f"{encoded}.{_signature(secret, body)}"


def verify_token(secret: str, token: str, now: float) -> TokenPayload:
    """Verify signature and expiry; raises :class:`TokenError`."""
    if not isinstance(token, str) or "." not in token:
        raise TokenError("malformed token")
    encoded, signature = token.rsplit(".", 1)
    try:
        body = base64.urlsafe_b64decode(encoded.encode())
    except Exception as err:
        raise TokenError("malformed token body") from err
    expected = _signature(secret, body)
    if not hmac.compare_digest(signature, expected):
        raise TokenError("bad token signature")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as err:
        raise TokenError("unparseable token payload") from err
    if payload["expires_at"] < now:
        raise TokenError(
            f"token expired at {payload['expires_at']:.3f} (now {now:.3f})"
        )
    return TokenPayload(
        principal=payload["principal"],
        scopes={k: list(v) for k, v in payload["scopes"].items()},
        expires_at=payload["expires_at"],
        token_id=payload["token_id"],
    )
