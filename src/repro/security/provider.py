"""The authentication component: a security building block.

An :class:`AuthProvider` authenticates principals (username/password
table in its config) and issues scoped, expiring capability tokens.
Validation can happen remotely (RPC to this provider) or locally by any
component sharing the signing secret -- the composable "secure building
block" pattern of the paper's section 9.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.component import Client, Provider, ResourceHandle
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute
from .tokens import TokenError, sign_token, verify_token

__all__ = ["AuthProvider", "AuthClient", "AuthHandle", "AuthError"]

#: Cost of one token signature / verification (HMAC-SHA256 of ~200 B).
CRYPTO_OP_COST = 1.5e-6


class AuthError(RuntimeError):
    """Authentication or authorization failure."""


class AuthProvider(Provider):
    """Issues and validates capability tokens.

    Config::

        {
          "secret": "signing-secret",
          "users": {"alice": {"password": "pw", "scopes": {"yokan": ["*"]}}},
          "token_ttl": 60.0
        }
    """

    component_type = "auth"

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        pool: Any = None,
        config: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(margo, name, provider_id, pool=pool, config=config)
        self.secret: str = self.config.get("secret", f"secret:{name}")
        self.users: dict[str, dict] = dict(self.config.get("users", {}))
        self.token_ttl: float = float(self.config.get("token_ttl", 60.0))
        self._revoked: set[str] = set()
        self._issued = 0

        self.register_rpc("login", self._on_login)
        self.register_rpc("validate", self._on_validate)
        self.register_rpc("revoke", self._on_revoke)

    # ------------------------------------------------------------------
    def _on_login(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        yield Compute(CRYPTO_OP_COST)
        user = self.users.get(args["user"])
        if user is None or user.get("password") != args.get("password"):
            raise AuthError(f"authentication failed for {args.get('user')!r}")
        self._issued += 1
        token = sign_token(
            self.secret,
            principal=args["user"],
            scopes=user.get("scopes", {}),
            expires_at=self.margo.kernel.now + self.token_ttl,
            token_id=f"{self.name}:{self._issued}",
        )
        return token

    def _on_validate(self, ctx: RequestContext) -> Generator:
        yield Compute(CRYPTO_OP_COST)
        payload = self.check(ctx.args["token"])
        return {
            "principal": payload.principal,
            "scopes": payload.scopes,
            "expires_at": payload.expires_at,
            "token_id": payload.token_id,
        }

    def _on_revoke(self, ctx: RequestContext) -> Generator:
        yield Compute(CRYPTO_OP_COST)
        payload = self.check(ctx.args["token"])
        self._revoked.add(payload.token_id)
        return None

    # ------------------------------------------------------------------
    def check(self, token: str):
        """Local validation path (for components sharing the secret)."""
        payload = verify_token(self.secret, token, now=self.margo.kernel.now)
        if payload.token_id in self._revoked:
            raise TokenError(f"token {payload.token_id} was revoked")
        return payload

    def get_config(self) -> dict[str, Any]:
        doc = dict(self.config)
        doc.pop("secret", None)  # never expose the signing secret
        doc["users"] = sorted(self.users)
        doc["tokens_issued"] = self._issued
        doc["tokens_revoked"] = len(self._revoked)
        return doc


class AuthHandle(ResourceHandle):
    """Handle to a remote auth provider."""

    def login(self, user: str, password: str) -> Generator:
        token = yield from self._forward("login", {"user": user, "password": password})
        return token

    def validate(self, token: str) -> Generator:
        payload = yield from self._forward("validate", {"token": token})
        return payload

    def revoke(self, token: str) -> Generator:
        yield from self._forward("revoke", {"token": token})
        return None


class AuthClient(Client):
    """Client library of the auth component."""

    component_type = "auth"
    handle_cls = AuthHandle

    def make_handle(self, address: str, provider_id: int) -> AuthHandle:
        return AuthHandle(self, address, provider_id)
