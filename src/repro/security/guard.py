"""Transparent guards: authentication + encryption for existing components.

The paper (section 9) wants security enabled "transparently in existing
components".  A :class:`GuardProvider` does for security what the
virtual database does for replication: it registers the *same* RPCs as
the component it protects (so clients keep using their ordinary
handles, plus a token on the handle), verifies the capability token on
every call, optionally charges authenticated-encryption costs for the
payload, and forwards to the protected provider -- which never learns
security exists.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.component import Provider
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute
from ..mercury import estimate_size
from .provider import CRYPTO_OP_COST, AuthProvider
from .tokens import TokenError, verify_token

__all__ = ["GuardProvider", "GuardError", "ENCRYPTION_BYTES_PER_SECOND"]

#: AES-GCM-class authenticated encryption throughput.
ENCRYPTION_BYTES_PER_SECOND = 3e9


class GuardError(RuntimeError):
    """Guard misconfiguration or authorization failure."""


class GuardProvider(Provider):
    """Protects one provider behind token checks (and encryption).

    Parameters
    ----------
    protected:
        ``{"type": ..., "address": ..., "provider_id": ...}`` of the
        provider being protected.
    operations:
        The operation names to expose (e.g. ``["put", "get", ...]``).
    auth:
        Either a local :class:`AuthProvider` (shared-secret validation,
        no extra RPC) or a ``(secret)`` string for mesh-style local
        verification.
    encrypt:
        When true, payloads are charged authenticated-encryption cost in
        both directions.
    """

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        protected: dict[str, Any],
        operations: list[str],
        auth: Any,
        pool: Any = None,
        encrypt: bool = False,
    ) -> None:
        missing = {"type", "address", "provider_id"} - set(protected)
        if missing:
            raise GuardError(f"protected spec missing {sorted(missing)}")
        if not operations:
            raise GuardError("guard needs at least one operation to expose")
        # The guard impersonates the protected component's RPC namespace.
        self.component_type = protected["type"]
        super().__init__(margo, name, provider_id, pool=pool, config={})
        self.protected = dict(protected)
        self.encrypt = encrypt
        if isinstance(auth, AuthProvider):
            self._validator = auth.check
        elif isinstance(auth, str):
            secret = auth

            def validate(token: str):
                return verify_token(secret, token, now=margo.kernel.now)

            self._validator = validate
        else:
            raise GuardError("auth must be an AuthProvider or a shared secret string")
        self.denied = 0
        self.allowed = 0
        for operation in operations:
            self.register_rpc(operation, self._make_handler(operation))

    # ------------------------------------------------------------------
    def _make_handler(self, operation: str):
        def handler(ctx: RequestContext) -> Generator:
            result = yield from self._guarded(operation, ctx)
            return result

        return handler

    def _guarded(self, operation: str, ctx: RequestContext) -> Generator:
        envelope = ctx.args
        yield Compute(CRYPTO_OP_COST)
        if not isinstance(envelope, dict) or "__token__" not in envelope:
            self.denied += 1
            raise GuardError(f"operation {operation!r} requires a capability token")
        try:
            payload = self._validator(envelope["__token__"])
        except TokenError as err:
            self.denied += 1
            raise GuardError(f"token rejected: {err}") from err
        if not payload.allows(self.component_type, operation):
            self.denied += 1
            raise GuardError(
                f"principal {payload.principal!r} lacks scope "
                f"{self.component_type}:{operation}"
            )
        self.allowed += 1
        inner_args = envelope.get("__args__")
        if self.encrypt:
            yield Compute(estimate_size(inner_args) / ENCRYPTION_BYTES_PER_SECOND)
        result = yield from self.margo.forward(
            self.protected["address"],
            f"{self.component_type}_{operation}",
            inner_args,
            provider_id=self.protected["provider_id"],
        )
        if self.encrypt:
            yield Compute(estimate_size(result) / ENCRYPTION_BYTES_PER_SECOND)
        return result

    def get_config(self) -> dict[str, Any]:
        return {
            "protected": self.protected,
            "encrypt": self.encrypt,
            "statistics": {"allowed": self.allowed, "denied": self.denied},
        }
