"""Composable security (the paper's section-9 future work, implemented).

* :class:`AuthProvider` -- a security building block issuing scoped,
  expiring, revocable HMAC capability tokens;
* :class:`GuardProvider` -- transparent authentication (and optional
  encryption) in front of any existing component;
* handle-side: set ``handle.auth_token`` and keep using the component's
  ordinary client API.
"""

from ..bedrock.module import BedrockModule, register_library
from .guard import ENCRYPTION_BYTES_PER_SECOND, GuardError, GuardProvider
from .provider import AuthClient, AuthError, AuthHandle, AuthProvider
from .tokens import TokenError, TokenPayload, sign_token, verify_token

__all__ = [
    "AuthProvider",
    "AuthClient",
    "AuthHandle",
    "AuthError",
    "GuardProvider",
    "GuardError",
    "ENCRYPTION_BYTES_PER_SECOND",
    "sign_token",
    "verify_token",
    "TokenError",
    "TokenPayload",
]


def _auth_factory(margo, name, provider_id, pool, config, dependencies):
    return AuthProvider(margo, name, provider_id, pool=pool, config=config)


register_library(
    "libauth.so",
    BedrockModule(
        type_name="auth",
        provider_factory=_auth_factory,
        client_factory=lambda margo: AuthClient(margo),
    ),
)
