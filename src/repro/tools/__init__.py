"""Diagnostic tooling (the paper's community-support lesson, section 2.2)."""

from .diagnostics import (
    cluster_report,
    config_report,
    fault_report,
    health_report,
    lint_report,
    monitoring_report,
    process_report,
    profile_report,
    race_report,
    trace_report,
    xray_report,
)

__all__ = [
    "cluster_report",
    "process_report",
    "monitoring_report",
    "trace_report",
    "profile_report",
    "lint_report",
    "config_report",
    "race_report",
    "health_report",
    "fault_report",
    "xray_report",
]
