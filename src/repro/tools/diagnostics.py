"""Diagnostic reports.

Paper section 2.2 (lessons learned): "Mochi users must be able to
rapidly diagnose behavioral and performance problems on their own ...
we created easy-to-install Mochi packages, command-line diagnostic
tools, and monitoring infrastructure."

These helpers render the state of a cluster, a Bedrock-managed process,
or a statistics monitor as human-readable text -- the simulated
equivalent of those command-line tools.
"""

from __future__ import annotations

from typing import Any

from ..analysis import format_findings, lint_paths
from ..analysis import sanitize as _sanitize
from ..bedrock.server import BedrockServer
from ..cluster import Cluster
from ..monitoring.stats_monitor import StatisticsMonitor
from ..observability.exporters import build_trace_tree, collect_spans
from ..observability.profile import PHASES, ContinuousProfiler
from ..observability.tracer import Tracer

__all__ = [
    "cluster_report",
    "process_report",
    "monitoring_report",
    "trace_report",
    "profile_report",
    "lint_report",
    "config_report",
    "race_report",
    "health_report",
    "fault_report",
    "xray_report",
]


def cluster_report(cluster: Cluster) -> str:
    """Topology + liveness overview."""
    lines = [f"cluster @ t={cluster.now:.6f}s"]
    lines.append(
        f"  nodes: {len(cluster.network.nodes)}  "
        f"processes: {len(cluster.network.processes)}  "
        f"messages: {cluster.network.messages_sent} sent / "
        f"{cluster.network.messages_dropped} dropped / "
        f"{cluster.network.bytes_sent} bytes"
    )
    for node_name in sorted(cluster.network.nodes):
        node = cluster.network.nodes[node_name]
        state = "up" if node.alive else "DEAD"
        lines.append(f"  node {node_name} [{state}]")
        for process in sorted(
            (p for p in cluster.network.processes.values() if p.node is node),
            key=lambda p: p.name,
        ):
            pstate = "up" if process.alive else "DEAD"
            lines.append(f"    process {process.name} [{pstate}] {process.address}")
    if cluster.faults.history:
        lines.append("  fault history:")
        for fault in cluster.faults.history:
            lines.append(f"    t={fault.time:.3f}s {fault.kind}: {fault.target}")
    return "\n".join(lines)


def process_report(bedrock: BedrockServer) -> str:
    """One Bedrock-managed process: runtime shape + providers + deps."""
    margo = bedrock.margo
    lines = [f"process {margo.process.name} ({margo.address})"]
    lines.append("  argobots:")
    for name, pool in sorted(margo.pools.items()):
        streams = ",".join(x.name for x in pool.xstreams) or "none"
        lines.append(
            f"    pool {name}: queued={pool.size} "
            f"pushed={pool.total_pushed} xstreams=[{streams}]"
        )
    for name, xstream in sorted(margo.xstreams.items()):
        lines.append(
            f"    xstream {name}: busy={xstream.busy_time:.6f}s "
            f"slices={xstream.slices_run}"
        )
    lines.append(
        f"  rpc: sent={margo.rpcs_sent} handled={margo.rpcs_handled} "
        f"inflight={margo.inflight_incoming}/{margo.inflight_outgoing}"
    )
    lines.append(f"  libraries: {dict(bedrock.library_of)}")
    lines.append("  providers:")
    for name, record in sorted(bedrock.records.items()):
        lines.append(
            f"    {name} (type={record.type_name} id={record.provider_id} "
            f"pool={record.pool})"
        )
        for dep_name, spec in record.dependencies.items():
            lines.append(f"      depends on {dep_name}: {spec}")
        holders = bedrock.dependents.get(name)
        if holders:
            lines.append(f"      depended on by: {sorted(holders)}")
    return "\n".join(lines)


def monitoring_report(monitor: StatisticsMonitor, top: int = 10) -> str:
    """Top RPCs by total target-side time (the "where does time go"
    question the paper's monitoring answers)."""
    doc = monitor.to_json()
    entries: list[tuple[float, str, dict[str, Any]]] = []
    for key, record in doc.get("rpcs", {}).items():
        total = 0.0
        count = 0
        for peer in record.get("target", {}).values():
            duration = peer.get("ult", {}).get("duration", {})
            total += duration.get("sum", 0.0)
            count += duration.get("num", 0)
        entries.append((total, record["name"], {"key": key, "count": count}))
    entries.sort(reverse=True)
    lines = [f"top {min(top, len(entries))} RPCs by server-side time:"]
    for total, name, info in entries[:top]:
        mean = total / info["count"] if info["count"] else 0.0
        lines.append(
            f"  {name:<24} calls={info['count']:<8} total={total * 1e6:10.2f}us "
            f"mean={mean * 1e6:8.2f}us  [{info['key']}]"
        )
    if "bulk" in doc:
        bulk = doc["bulk"]
        lines.append(
            f"  bulk transfers: n={bulk['duration']['num']} "
            f"bytes={int(bulk['size']['sum'])}"
        )
    return "\n".join(lines)


def profile_report(
    *targets: Any, last: "int | None" = None, waterfalls: int = 3
) -> str:
    """Continuous-profiling view: utilization, per-provider rates, the
    RPC latency decomposition, and recent request waterfalls.

    Accepts Margo instances (their attached profiler is used) or
    :class:`ContinuousProfiler` objects directly.  ``last`` bounds how
    many closed windows feed the rollups (default: the whole ring);
    ``waterfalls`` how many recent complete waterfalls are rendered per
    process.
    """
    lines: list[str] = []
    for target in targets:
        profiler = (
            target
            if isinstance(target, ContinuousProfiler)
            else getattr(target, "profiler", None)
        )
        if profiler is None:
            name = getattr(getattr(target, "process", None), "name", str(target))
            lines.append(f"process {name}: profiling disabled")
            continue
        doc = profiler.profile(last=last)
        windows = doc["windows"]
        lines.append(
            f"process {doc['process']}: window={doc['window']}s, "
            f"{len(windows)} window(s) shown"
        )
        if not windows:
            continue
        latest = windows[-1]
        for xname in sorted(latest["xstreams"]):
            sample = latest["xstreams"][xname]
            lines.append(
                f"  xstream {xname}: {sample['utilization'] * 100:5.1f}% busy "
                f"(slices={sample['slices']:.0f} ults={sample['ults_finished']:.0f})"
            )
        for pname in sorted(latest["pools"]):
            sample = latest["pools"][pname]
            lines.append(
                f"  pool {pname}: depth={sample['depth']:.0f} "
                f"pushed={sample['pushed']:.0f} popped={sample['popped']:.0f}"
            )
        span = windows[-1]["end"] - windows[0]["start"]
        provider_totals: dict[str, dict[str, float]] = {}
        for window in windows:
            for key, entry in window["providers"].items():
                acc = provider_totals.setdefault(
                    key, {"requests": 0, "bytes_in": 0, "bytes_out": 0}
                )
                for field in acc:
                    acc[field] += entry[field]
        if provider_totals:
            lines.append("  providers (over shown windows):")
            for key in sorted(provider_totals):
                acc = provider_totals[key]
                rate = acc["requests"] / span if span > 0 else 0.0
                lines.append(
                    f"    {key:<16} requests={acc['requests']:<6.0f} "
                    f"rate={rate:8.1f}/s in={acc['bytes_in']:.0f}B "
                    f"out={acc['bytes_out']:.0f}B"
                )
        # Phase means per series, in causal phase order (the flamegraph
        # rollup: where each RPC's time goes, summed over windows).
        per_series: dict[str, dict[str, dict[str, float]]] = {}
        for window in windows:
            for rpc_key, phases in window["rpc"].items():
                series = per_series.setdefault(rpc_key, {})
                for phase, agg in phases.items():
                    acc = series.setdefault(phase, {"count": 0, "sum": 0.0, "p95": 0.0})
                    acc["count"] += agg["count"]
                    acc["sum"] += agg["sum"]
                    acc["p95"] = max(acc["p95"], agg["p95"])
        if per_series:
            lines.append("  latency decomposition (mean per phase):")
            for rpc_key in sorted(per_series):
                series = per_series[rpc_key]
                parts = []
                for phase in (*PHASES, "sched"):
                    acc = series.get(phase)
                    if acc and acc["count"]:
                        parts.append(f"{phase}={acc['sum'] / acc['count'] * 1e6:.2f}us")
                lines.append(f"    {rpc_key}: " + " ".join(parts))
        recent = list(profiler.waterfalls)[-waterfalls:]
        if recent:
            lines.append(f"  last {len(recent)} waterfall(s):")
            for waterfall in recent:
                total = waterfall["end"] - waterfall["start"]
                lines.append(
                    f"    {waterfall['rpc']}/{waterfall['provider']} "
                    f"{total * 1e6:.2f}us @t={waterfall['start']:.6f}s"
                )
                for phase in waterfall["phases"]:
                    duration = phase["end"] - phase["start"]
                    width = int(round(40 * duration / total)) if total > 0 else 0
                    bar = "#" * max(width, 1 if duration > 0 else 0)
                    lines.append(
                        f"      {phase['phase']:<12} {duration * 1e6:9.2f}us |{bar}"
                    )
    return "\n".join(lines)


def lint_report(*paths: str) -> str:
    """Static-analysis health of a source tree (the ``repro-lint`` view).

    Runs the full mochi-lint pass (AST rules plus the configuration
    cross-validator for any config JSON encountered) over ``paths`` and
    appends whatever the runtime sanitizer has recorded so far, so one
    report answers "is this deployment clean?" across all three passes.
    """
    findings = lint_paths(paths or ("src", "examples", "benchmarks"))
    findings = findings + list(_sanitize.violations)
    if not findings:
        return "mochi-lint: clean"
    by_severity: dict[str, int] = {}
    for finding in findings:
        by_severity[finding.severity] = by_severity.get(finding.severity, 0) + 1
    summary = ", ".join(f"{n} {sev}" for sev, n in sorted(by_severity.items()))
    return f"mochi-lint: {len(findings)} finding(s) ({summary})\n" + format_findings(
        findings
    )


def race_report(seeds: int = 8) -> str:
    """Concurrency-correctness health of the example services.

    Runs the full mochi-race suite -- the happens-before engine and the
    lock-order graph watch every scenario while the schedule explorer
    re-runs it under ``seeds`` seeded ready-queue perturbations -- and
    renders one line per scenario plus any MCH03x/MCH04x findings.
    """
    # Imported lazily: the scenarios pull in the full runtime stack.
    from ..analysis.race.scenarios import run_race_suite

    lines: list[str] = []
    findings, reports = run_race_suite(seeds=seeds, emit=lines.append)
    total_runs = sum(len(r.runs) for r in reports)
    if not findings:
        lines.append(
            f"mochi-race: clean ({len(reports)} scenario(s), "
            f"{total_runs} perturbed runs)"
        )
        return "\n".join(lines)
    lines.append(f"mochi-race: {len(findings)} finding(s)")
    lines.append(format_findings(findings))
    return "\n".join(lines)


def health_report(cluster: Cluster, events: int = 10) -> str:
    """The mochi-health view: per-target health states, phi levels,
    open incidents, per-process SLO status, and the tail of the flight
    recorder (``events`` bounds how many recent events are shown)."""
    plane = getattr(cluster, "health", None)
    if plane is None:
        return "mochi-health: disabled (call cluster.enable_health() first)"
    doc = plane.health_doc()
    lines = [f"mochi-health @ t={doc['time']:.6f}s"]
    states = doc["states"]
    if states:
        lines.append("  health states:")
        for target in sorted(states):
            phi = doc["phi"].get(target)
            suffix = f"  phi={phi['phi']:.2f}" if phi else ""
            lines.append(f"    {target:<16} {states[target]}{suffix}")
    else:
        lines.append("  health states: (no observations yet)")
    open_incidents = plane.incidents.open_incidents()
    closed = [i for i in plane.incidents.incidents if not i.open]
    lines.append(
        f"  incidents: {len(open_incidents)} open / {len(closed)} closed"
    )
    for incident in plane.incidents.incidents:
        status = "OPEN" if incident.open else f"closed ({incident.resolution})"
        lines.append(
            f"    {incident.incident_id} [{status}] {incident.kind}: "
            f"{incident.target} opened@t={incident.opened_at:.3f}s"
        )
        if incident.detection_latency is not None:
            lines.append(
                f"      detection latency: {incident.detection_latency:.3f}s"
            )
        if incident.mttr is not None:
            lines.append(f"      mttr: {incident.mttr:.3f}s")
    for name in sorted(cluster.margos):
        engine = cluster.margos[name].slo_engine
        if engine is None:
            continue
        status = engine.status()
        lines.append(f"  slo status [{name}]:")
        for slo in status["slos"]:
            lines.append(
                f"    {slo['slo']:<16} {slo['state']:<7} "
                f"burn_short={slo['burn_short']:.2f} "
                f"burn_long={slo['burn_long']:.2f} "
                f"budget={slo['budget_remaining'] * 100:.0f}%"
            )
    tail = list(plane.recorder.events)[-events:]
    if tail:
        lines.append(f"  flight recorder (last {len(tail)} of "
                     f"{plane.recorder.recorded}):")
        for event in tail:
            lines.append(
                f"    t={event['time']:.3f}s [{event['category']}] "
                f"{event['name']}: {event['target']}"
            )
    return "\n".join(lines)


def fault_report(cluster: Cluster) -> str:
    """Injected faults correlated with their observed consequences.

    Each :class:`~repro.sim.faults.FaultRecord` is the ground truth;
    when the health plane is enabled, the matching incident supplies
    what the cluster *observed* -- suspicion, detection, election and
    recovery events, detection latency and MTTR."""
    history = cluster.faults.history
    if not history:
        return "fault report: no faults injected"
    plane = getattr(cluster, "health", None)
    incidents_by_target: dict[str, list[Any]] = {}
    if plane is not None:
        for incident in plane.incidents.incidents:
            incidents_by_target.setdefault(incident.target, []).append(incident)
    lines = [f"fault report: {len(history)} fault(s) injected"]
    for fault in history:
        lines.append(f"  t={fault.time:.3f}s {fault.kind}: {fault.target}")
        candidates = incidents_by_target.get(fault.target, [])
        incident = next(
            (i for i in candidates if abs(i.opened_at - fault.time) < 1e-9),
            None,
        )
        if incident is None:
            if plane is not None and fault.kind in ("process", "node"):
                lines.append("    (no incident recorded)")
            continue
        status = "OPEN" if incident.open else f"closed: {incident.resolution}"
        lines.append(f"    incident {incident.incident_id} [{status}]")
        if incident.suspect_latency is not None:
            lines.append(
                f"      suspected after {incident.suspect_latency:.3f}s"
            )
        if incident.detection_latency is not None:
            lines.append(
                f"      detected after {incident.detection_latency:.3f}s"
            )
        if incident.mttr is not None:
            lines.append(f"      recovered after {incident.mttr:.3f}s (MTTR)")
        for event in incident.events:
            detail = {
                k: v for k, v in event.items() if k not in ("time", "kind")
            }
            lines.append(
                f"      t={event['time']:.3f}s {event['kind']}: {detail}"
            )
    if plane is None:
        lines.append("  (health plane disabled: no incident correlation)")
    return "\n".join(lines)


def config_report(config: "dict[str, Any] | str | None", name: str = "<config>") -> str:
    """Cross-validate one Margo/Bedrock document and render the verdict.

    ``config`` may be a parsed dict, JSON text, or a path to a ``.json``
    file.  This is the same validation :func:`repro.bedrock.boot_process`
    applies before booting, exposed as a report for interactive use.
    """
    # Imported lazily: config_check depends on the margo/bedrock packages.
    from ..analysis.config_check import validate_config_doc, validate_config_file

    if isinstance(config, str) and config.lstrip()[:1] not in ("{", "["):
        findings = validate_config_file(config)
        name = config
    else:
        import json

        doc = json.loads(config) if isinstance(config, str) else config
        findings = validate_config_doc(doc, path=name)
    if not findings:
        return f"{name}: config OK"
    return f"{name}: {len(findings)} problem(s)\n" + format_findings(findings)


def xray_report(
    target: Any, last: "int | None" = 3, actions: int = 3, paths: int = 3
) -> str:
    """The mochi-xray view: per-window tail attribution, what-if
    rankings, and recent per-request critical paths.

    ``target`` is a :class:`~repro.cluster.Cluster` (its shared plane is
    used) or an :class:`~repro.observability.xray.XrayPlane` directly;
    ``last`` bounds the windows shown, ``actions`` the attribution
    segments / ranked actions per window, ``paths`` the recent path
    records rendered in full.
    """
    from ..observability.xray.critical_path import format_path_record

    plane = target.xray_plane() if isinstance(target, Cluster) else target
    if plane is None:
        return (
            "mochi-xray: disabled (no process ran with "
            '{"observability": {"xray": true}})'
        )
    lines = [
        f"mochi-xray: {len(plane.windows)} closed window(s), "
        f"{len(plane.recent)} recent path(s)"
    ]
    for window in plane.attribution(last=last):
        attribution = window["attribution"]
        lines.append(
            f"  window {window['index']} "
            f"[{window['start']:.3f}s..{window['end']:.3f}s]: "
            f"{window['requests']} request(s), "
            f"{window['dropped_paths']} dropped, "
            f"p50={attribution['p50'] * 1e6:.2f}us "
            f"p99={attribution['p99'] * 1e6:.2f}us"
        )
        for segment in attribution["segments"][:actions]:
            where = segment["pool"] or "-"
            lines.append(
                f"    excess {segment['excess'] * 1e6:>9.2f}us  "
                f"{segment['phase']:<12} {segment['process']} [{where}]"
            )
        for action in window["whatif"]["actions"][:actions]:
            lines.append(
                f"    what-if {action['predicted_improvement']:>6.1%} p99: "
                f"{action['action']} {action['target']} on {action['process']}"
            )
    for record in plane.critical_paths(last=paths):
        lines.extend("  " + line for line in format_path_record(record))
    return "\n".join(lines)


def trace_report(
    *tracers: Tracer, trace_id: "str | None" = None, limit: int = 20
) -> str:
    """Causal trace trees, rendered as indented text.

    Accepts any number of tracers (typically ``cluster.tracers()``) and
    merges their spans, so cross-process wire spans pair up.  Shows the
    ``limit`` longest traces (all of them when ``trace_id`` is given).
    """
    spans = collect_spans(*tracers)
    if not spans:
        return "no spans recorded (is tracing enabled?)"
    by_trace: dict[str, list] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    if trace_id is not None:
        if trace_id not in by_trace:
            return f"no trace {trace_id!r} (known: {sorted(by_trace)[:10]})"
        selected = [trace_id]
    else:
        # Longest root-to-end traces first; ties broken by id for
        # deterministic output.
        selected = sorted(
            by_trace,
            key=lambda t: (-(max(s.end for s in by_trace[t])
                            - min(s.start for s in by_trace[t])), t),
        )[:limit]
    lines = [f"{len(by_trace)} trace(s), {len(spans)} span(s)"]

    def render(node: dict, depth: int) -> None:
        doc = node["span"]
        duration_us = (doc["end"] - doc["start"]) * 1e6
        lines.append(
            f"  {'  ' * depth}{doc['category']:<8} {doc['name']:<24} "
            f"[{doc['process']}] {duration_us:9.2f}us  ({doc['span_id']})"
        )
        for child in node["children"]:
            render(child, depth + 1)

    # Imported lazily: the xray package is optional machinery on top of
    # the tracer and must not become a hard import of the tools module.
    from ..observability.xray.critical_path import critical_chain

    for tid in selected:
        trace_spans = by_trace[tid]
        total_us = (
            max(s.end for s in trace_spans) - min(s.start for s in trace_spans)
        ) * 1e6
        lines.append(f"trace {tid}: {len(trace_spans)} spans, {total_us:.2f}us")
        for root in build_trace_tree(spans, tid):
            render(root, 0)
        chain = critical_chain(spans, tid)
        if chain:
            gated_us = sum((s["end"] - s["start"]) for s in chain) * 1e6
            steps = " > ".join(f"{s['category']}:{s['name']}" for s in chain)
            lines.append(
                f"  critical path: {len(chain)}/{len(trace_spans)} spans, "
                f"{gated_us:.2f}us gated -- {steps}"
            )
    return "\n".join(lines)
