"""Core: the component anatomy (Fig. 1) and the dynamic-service layer.

The service-layer symbols are loaded lazily to break the import cycle
bedrock -> core.component -> core.__init__ -> core.service -> bedrock.
"""

from .component import (
    Client,
    ComponentError,
    Provider,
    ProviderIdError,
    ResourceHandle,
)
from .parallel import ParallelError, parallel
from .spec import ProcessSpec, ServiceSpec, SpecError

__all__ = [
    "Provider",
    "Client",
    "ResourceHandle",
    "ComponentError",
    "ProviderIdError",
    "parallel",
    "ParallelError",
    "ServiceSpec",
    "ProcessSpec",
    "SpecError",
    "DynamicService",
    "ReconfigurationController",
    "ManagedProcess",
    "ServiceError",
    "ElasticityManager",
    "ElasticityPolicy",
    "ScalingEvent",
    "ResilienceManager",
    "RecoveryEvent",
]

_LAZY = {
    "DynamicService": "service",
    "ReconfigurationController": "service",
    "ManagedProcess": "service",
    "ServiceError": "service",
    "ElasticityManager": "elasticity",
    "ElasticityPolicy": "elasticity",
    "ScalingEvent": "elasticity",
    "ResilienceManager": "resilience",
    "RecoveryEvent": "resilience",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
