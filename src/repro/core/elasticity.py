"""Elasticity manager: introspection-driven scale up/down.

Closes the loop the paper describes: performance introspection
(section 4) feeds reconfiguration decisions (section 5) that exercise
elasticity mechanisms (section 6).  Node allocation is delegated to a
resource-manager callback pair (``allocate_node``/``release_node``),
the role Flux [6] plays in the paper's vision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..margo.ult import UltSleep
from .service import DynamicService, ServiceError
from .spec import ProcessSpec

__all__ = ["ElasticityPolicy", "ElasticityManager", "ScalingEvent"]


@dataclass(frozen=True)
class ElasticityPolicy:
    """Threshold policy over per-process execution-stream utilization.

    Utilization is the fraction of the decision interval the process's
    execution streams spent running ULTs (averaged over streams and
    processes) -- the busy-time series the monitoring layer exposes.
    """

    #: Scale out when mean utilization exceeds this.
    high_watermark: float = 0.7
    #: Scale in when it drops below this (and more than min_processes run).
    low_watermark: float = 0.1
    min_processes: int = 1
    max_processes: int = 64
    decision_interval: float = 2.0
    #: Consecutive observations required before acting (hysteresis).
    patience: int = 2

    def __post_init__(self) -> None:
        if self.low_watermark >= self.high_watermark:
            raise ValueError("low_watermark must be below high_watermark")
        if self.min_processes < 1 or self.max_processes < self.min_processes:
            raise ValueError("bad process bounds")


@dataclass(frozen=True)
class ScalingEvent:
    time: float
    kind: str  # "out" | "in"
    process: str
    load: float


class ElasticityManager:
    """Periodically samples service load and grows/shrinks it."""

    def __init__(
        self,
        service: DynamicService,
        policy: ElasticityPolicy,
        allocate_node: Callable[[], Optional[str]],
        release_node: Callable[[str], None],
        make_process_spec: Callable[[str, str], ProcessSpec],
    ) -> None:
        self.service = service
        self.policy = policy
        self.allocate_node = allocate_node
        self.release_node = release_node
        self.make_process_spec = make_process_spec
        self.events: list[ScalingEvent] = []
        self.load_history: list[tuple[float, float]] = []
        self._running = False
        self._counter = 0
        self._streak = 0  # positive = consecutive high, negative = low
        #: per-process (time, total busy seconds) at the last observation.
        self._busy_snapshots: dict[str, tuple[float, float]] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            raise ServiceError("elasticity manager already running")
        self._running = True
        control = self.service.control
        assert control is not None
        control.spawn_ult(self._loop(), name=f"elastic:{self.service.spec.name}")

    def stop(self) -> None:
        self._running = False

    def current_load(self) -> float:
        """Mean execution-stream utilization per live process since the
        previous observation."""
        now = self.service.cluster.now
        processes = [p for p in self.service.processes.values() if p.alive]
        if not processes:
            return 0.0
        utilizations = []
        for process in processes:
            xstreams = list(process.margo.xstreams.values())
            busy = sum(x.busy_time for x in xstreams)
            last_time, last_busy = self._busy_snapshots.get(
                process.name, (now - self.policy.decision_interval, 0.0)
            )
            self._busy_snapshots[process.name] = (now, busy)
            elapsed = now - last_time
            if elapsed <= 0 or not xstreams:
                continue
            utilizations.append((busy - last_busy) / (elapsed * len(xstreams)))
        return sum(utilizations) / len(utilizations) if utilizations else 0.0

    # ------------------------------------------------------------------
    def _loop(self) -> Generator:
        policy = self.policy
        while self._running:
            yield UltSleep(policy.decision_interval)
            if not self._running:
                return
            load = self.current_load()
            now = self.service.cluster.now
            self.load_history.append((now, load))
            n = len([p for p in self.service.processes.values() if p.alive])
            if load > policy.high_watermark and n < policy.max_processes:
                self._streak = self._streak + 1 if self._streak > 0 else 1
                if self._streak >= policy.patience:
                    yield from self._scale_out(load)
                    self._streak = 0
            elif load < policy.low_watermark and n > policy.min_processes:
                self._streak = self._streak - 1 if self._streak < 0 else -1
                if -self._streak >= policy.patience:
                    yield from self._scale_in(load)
                    self._streak = 0
            else:
                self._streak = 0

    def _scale_out(self, load: float) -> Generator:
        node = self.allocate_node()
        if node is None:
            return  # resource manager has nothing to give
        self._counter += 1
        name = f"{self.service.spec.name}-elastic-{self._counter}"
        spec = self.make_process_spec(name, node)
        yield from self.service.grow(spec)
        self.events.append(
            ScalingEvent(self.service.cluster.now, "out", name, load)
        )

    def _scale_in(self, load: float) -> Generator:
        # Retire the most recently added elastic process first.
        candidates = [
            p
            for p in self.service.processes.values()
            if p.alive and "-elastic-" in p.name
        ]
        if not candidates:
            return
        victim = sorted(candidates, key=lambda p: p.name)[-1]
        node = victim.spec.node
        yield from self.service.shrink(victim.name)
        self.release_node(node)
        self.events.append(
            ScalingEvent(self.service.cluster.now, "in", victim.name, load)
        )
