"""DynamicService: the paper's contribution as one orchestration object.

Deploys a :class:`~repro.core.spec.ServiceSpec` (Bedrock boot per
process + one SSG group), then exposes the dynamic operations the paper
derives in sections 5-7:

* **online reconfiguration** -- per-process Bedrock handles;
* **elasticity** -- ``grow()`` / ``shrink()`` with REMI-backed provider
  migration and Pufferscale-planned rebalancing;
* **resilience** -- service-wide checkpoints to a PFS and failure
  recovery (see :mod:`repro.core.resilience`).

All mutating methods are ULT generators driven from the service's
control process.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from collections import deque

from ..bedrock.boot import boot_process
from ..bedrock.client import BedrockClient, ServiceHandle
from ..bedrock.server import BEDROCK_PROVIDER_ID, BedrockServer
from ..cluster import Cluster
from ..margo.runtime import MargoInstance
from ..margo.ult import UltSleep
from ..observability.profile import LoadEstimator
from ..pufferscale.model import Placement, Shard
from ..pufferscale.planner import MigrationPlan, Objective, plan_rebalance
from ..ssg.bootstrap import create_group
from ..ssg.group import SSGGroup
from ..storage.pfs import ParallelFileSystem
from .spec import ProcessSpec, ServiceSpec

__all__ = [
    "DynamicService",
    "ReconfigurationController",
    "ServiceError",
    "ManagedProcess",
]


class ServiceError(RuntimeError):
    """Service-level orchestration failure."""


class ManagedProcess:
    """Everything the service knows about one of its processes."""

    def __init__(
        self,
        spec: ProcessSpec,
        margo: MargoInstance,
        bedrock: BedrockServer,
        group: Optional[SSGGroup],
    ) -> None:
        self.spec = spec
        self.margo = margo
        self.bedrock = bedrock
        self.group = group

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def address(self) -> str:
        return self.margo.address

    @property
    def alive(self) -> bool:
        return self.margo.process.alive


class DynamicService:
    """A deployed, dynamically manageable Mochi service."""

    def __init__(
        self,
        cluster: Cluster,
        spec: ServiceSpec,
        pfs: Optional[ParallelFileSystem] = None,
    ) -> None:
        self.cluster = cluster
        self.spec = spec
        self.pfs = pfs
        self.processes: dict[str, ManagedProcess] = {}
        self.control: Optional[MargoInstance] = None
        self._bedrock_client: Optional[BedrockClient] = None
        self._groups: list[SSGGroup] = []

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    @classmethod
    def deploy(
        cls,
        cluster: Cluster,
        spec: ServiceSpec,
        pfs: Optional[ParallelFileSystem] = None,
    ) -> "DynamicService":
        """Boot every process of the spec and form the service group."""
        service = cls(cluster, spec, pfs=pfs)
        booted: list[tuple[ProcessSpec, MargoInstance, BedrockServer]] = []
        for proc_spec in spec.processes:
            margo, bedrock = boot_process(
                cluster, proc_spec.name, proc_spec.node, proc_spec.config, pfs=pfs
            )
            booted.append((proc_spec, margo, bedrock))
        groups: dict[str, SSGGroup] = {}
        if spec.group is not None:
            ssg_groups = create_group(
                spec.group,
                [margo for _, margo, _ in booted],
                cluster.randomness,
                swim=spec.swim,
            )
            groups = {g.margo.address: g for g in ssg_groups}
            service._groups = ssg_groups
        for proc_spec, margo, bedrock in booted:
            service.processes[proc_spec.name] = ManagedProcess(
                proc_spec, margo, bedrock, groups.get(margo.address)
            )
        # Dedicated control process for service-wide operations.
        service.control = cluster.add_margo(
            f"{spec.name}-ctl", cluster.node(f"{spec.name}-ctl-node")
        )
        service._bedrock_client = BedrockClient(service.control)
        return service

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def addresses(self) -> list[str]:
        return [p.address for p in self.processes.values() if p.alive]

    def handle_for(self, process_name: str) -> ServiceHandle:
        assert self._bedrock_client is not None
        return self._bedrock_client.make_service_handle(
            self.processes[process_name].address
        )

    def view(self):
        """The current SSG view (from any live member)."""
        for process in self.processes.values():
            if process.alive and process.group is not None:
                return process.group.view
        raise ServiceError("no live group member")

    def run_control(self, gen: Generator) -> Any:
        """Run a driver ULT on the control process to completion."""
        assert self.control is not None
        return self.cluster.run_ult(self.control, gen)

    def service_config(self) -> Generator:
        """Fetch every process's configuration (one JSON document)."""
        out: dict[str, Any] = {"name": self.spec.name, "processes": {}}
        for name, process in self.processes.items():
            if not process.alive:
                out["processes"][name] = None
                continue
            config = yield from self.handle_for(name).get_config()
            out["processes"][name] = config
        return out

    # ------------------------------------------------------------------
    # elasticity (paper section 6)
    # ------------------------------------------------------------------
    def grow(self, proc_spec: ProcessSpec) -> Generator:
        """Add a process to the running service (scale-out)."""
        if proc_spec.name in self.processes:
            raise ServiceError(f"process {proc_spec.name!r} already in service")
        margo, bedrock = boot_process(
            self.cluster, proc_spec.name, proc_spec.node, proc_spec.config, pfs=self.pfs
        )
        group: Optional[SSGGroup] = None
        if self.spec.group is not None:
            from ..ssg.bootstrap import join_group

            group = yield from join_group(
                self.spec.group,
                margo,
                self.addresses,
                self.cluster.randomness,
                swim=self.spec.swim,
            )
            self._groups.append(group)
        self.processes[proc_spec.name] = ManagedProcess(proc_spec, margo, bedrock, group)
        self.spec.processes.append(proc_spec)
        return self.processes[proc_spec.name]

    def shrink(self, process_name: str, migrate_to: Optional[str] = None) -> Generator:
        """Remove a process: migrate its data away first (paper Obs. 4:
        'Removing nodes first requires their data to be sent to
        remaining nodes'), then leave the group and shut down."""
        process = self.processes.get(process_name)
        if process is None:
            raise ServiceError(f"no process named {process_name!r}")
        survivors = [p for p in self.processes.values() if p is not process and p.alive]
        if not survivors:
            raise ServiceError("cannot shrink the last process of a service")
        handle = self.handle_for(process_name)
        migratable = [
            r for r in process.bedrock.records.values() if r.module.supports_migration
        ]
        target = (
            self.processes[migrate_to]
            if migrate_to is not None
            else min(survivors, key=lambda p: len(p.bedrock.records))
        )
        remi_id = self._remi_provider_id(target)
        for record in migratable:
            yield from handle.migrate_provider(
                record.name, target.address, remi_provider_id=remi_id
            )
        if process.group is not None:
            # Announce the departure from the leaving process itself and
            # wait for it before tearing the process down.
            leave_ult = process.margo.spawn_ult(
                process.group.leave(), name=f"leave:{process_name}"
            )
            from ..margo.ult import Park

            yield Park(leave_ult.done_event, 5.0)
        process.margo.shutdown()
        process.margo.process.alive = False
        del self.processes[process_name]
        self.spec.processes = [p for p in self.spec.processes if p.name != process_name]
        return target.name

    @staticmethod
    def _remi_provider_id(process: ManagedProcess) -> int:
        for record in process.bedrock.records.values():
            if record.type_name == "remi":
                return record.provider_id
        raise ServiceError(
            f"process {process.name!r} has no REMI provider to receive migrations"
        )

    # ------------------------------------------------------------------
    # rebalancing (Pufferscale integration, paper Obs. 6)
    # ------------------------------------------------------------------
    def placement(self) -> Placement:
        """Current placement of migratable providers, sized from their
        live statistics (performance introspection feeding rebalancing)."""
        placement = Placement([p.name for p in self.processes.values() if p.alive])
        for process in self.processes.values():
            if not process.alive:
                continue
            for record in process.bedrock.records.values():
                if not record.module.supports_migration:
                    continue
                stats = record.instance.get_config().get("statistics", {})
                placement.add(
                    process.name,
                    Shard(
                        shard_id=record.name,
                        size_bytes=int(stats.get("size_bytes", 0)),
                        load=float(stats.get("count", 0)),
                    ),
                )
        return placement

    def measured_placement(
        self, estimates_by_process: dict[str, dict[str, dict[str, float]]]
    ) -> Placement:
        """Placement whose shard loads come from *measured* windows.

        ``estimates_by_process`` maps process name to a
        :meth:`LoadEstimator.estimate` result (provider key
        ``"<type>:<provider_id>"`` -> ``{"load": ...}``).  Shard sizes
        still come from provider statistics (bytes at rest are known
        exactly); loads are the observed request rates -- this is the
        seam where the monitor -> decide loop replaces hand-fed
        ``Shard.load`` values.
        """
        placement = Placement([p.name for p in self.processes.values() if p.alive])
        for process in self.processes.values():
            if not process.alive:
                continue
            estimates = estimates_by_process.get(process.name, {})
            for record in process.bedrock.records.values():
                if not record.module.supports_migration:
                    continue
                stats = record.instance.get_config().get("statistics", {})
                key = f"{record.type_name}:{record.provider_id}"
                entry = estimates.get(key)
                placement.add(
                    process.name,
                    Shard(
                        shard_id=record.name,
                        size_bytes=int(stats.get("size_bytes", 0)),
                        load=entry["load"] if entry is not None else 0.0,
                    ),
                )
        return placement

    def rebalance(
        self,
        objective: Optional[Objective] = None,
        target: Optional[list[str]] = None,
        placement: Optional[Placement] = None,
    ) -> Generator:
        """Plan with Pufferscale; execute with Bedrock/REMI migrations.

        ``placement`` overrides the synthetically-sized default -- the
        :class:`ReconfigurationController` passes a measured one.
        """
        if placement is None:
            placement = self.placement()
        target_nodes = target if target is not None else placement.nodes
        plan = plan_rebalance(placement, target_nodes, objective)
        for move in plan.moves:
            source = self.processes[move.source]
            destination = self.processes[move.destination]
            remi_id = self._remi_provider_id(destination)
            handle = self.handle_for(move.source)
            yield from handle.migrate_provider(
                move.shard.shard_id, destination.address, remi_provider_id=remi_id
            )
        return plan

    # ------------------------------------------------------------------
    # resilience hooks (paper section 7)
    # ------------------------------------------------------------------
    def checkpoint_all(self, prefix: str) -> Generator:
        """Checkpoint every checkpointable provider to the PFS."""
        if self.pfs is None:
            raise ServiceError("service has no PFS for checkpoints")
        written: dict[str, int] = {}
        for name, process in self.processes.items():
            if not process.alive:
                continue
            handle = self.handle_for(name)
            for record in list(process.bedrock.records.values()):
                if not record.module.supports_checkpoint:
                    continue
                path = f"{prefix}/{name}/{record.name}"
                result = yield from handle.checkpoint_provider(record.name, path)
                written[path] = result["bytes"]
        return written

    def shutdown(self) -> None:
        for process in self.processes.values():
            if process.group is not None:
                process.group.stop()
            process.margo.shutdown()
        if self.control is not None:
            self.control.shutdown()


class ReconfigurationController:
    """Autonomic monitor -> decide -> reconfigure loop (ROADMAP north
    star: the paper's "performance introspection" made actionable).

    Each control cycle the controller queries every live process's
    Bedrock ``get_profile`` / ``get_utilization`` RPCs, reduces the
    measured windows to per-provider loads with a
    :class:`~repro.observability.profile.LoadEstimator`, and compares
    them against the declarative thresholds of the processes'
    :class:`~repro.observability.ObservabilitySpec`:

    * ``load_imbalance_threshold`` -- measured max/mean node load above
      which a Pufferscale rebalance is planned and executed;
    * ``busy_threshold`` -- measured per-xstream busy fraction above
      which a process counts as overloaded (same reaction).

    Every decision -- triggered or not -- is recorded in a bounded ring
    and attributed to the profile windows that produced it; when the
    control process traces, each decision is also emitted as a span.
    Decisions are deterministic functions of the measured windows, so
    two identical runs produce byte-identical decision traces (tested).

    When a process runs mochi-xray, each cycle additionally queries the
    latest tail-attribution window over Bedrock ``get_attribution`` and
    records the top-ranked what-if action under ``decision["xray"]``.
    With ``apply_xray_actions`` the controller *acts* on ``add_xstream``
    recommendations whose predicted p99 improvement clears
    ``xray_min_improvement``, then writes the realized improvement into
    that same decision on the next cycle -- the predicted-vs-realized
    delta the what-if engine is judged by.  ``migrate_provider`` and
    ``add_node`` recommendations are recorded but never auto-applied:
    both move state or hardware, which stays an operator decision.
    """

    def __init__(
        self,
        service: DynamicService,
        objective: Optional[Objective] = None,
        period: Optional[float] = None,
        smoothing: int = 3,
        load_imbalance_threshold: Optional[float] = None,
        busy_threshold: Optional[float] = None,
        max_decisions: int = 64,
        apply_xray_actions: bool = False,
        xray_min_improvement: float = 0.05,
    ) -> None:
        self.service = service
        self.objective = objective
        self.estimator = LoadEstimator(smoothing=smoothing)
        first = next(iter(service.processes.values()), None)
        obs = first.margo.config.observability if first is not None else None
        if period is None:
            period = obs.profile_window if obs is not None else 1.0
        if load_imbalance_threshold is None:
            load_imbalance_threshold = (
                obs.load_imbalance_threshold if obs is not None else 1.5
            )
        if busy_threshold is None:
            busy_threshold = obs.busy_threshold if obs is not None else 0.9
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.load_imbalance_threshold = load_imbalance_threshold
        self.busy_threshold = busy_threshold
        #: Bounded decision trace (see lint rule MCH004: control loops
        #: must not accumulate unbounded state).
        self.decisions: deque[dict[str, Any]] = deque(maxlen=max_decisions)
        self.rebalances = 0
        self.apply_xray_actions = apply_xray_actions
        self.xray_min_improvement = xray_min_improvement
        self.xray_actions_applied = 0
        #: ``(decision, predicted_p99, base_p99)`` of an applied xray
        #: action whose effect has not been measured yet; the next
        #: cycle's window resolves it into ``realized_improvement``.
        self._pending_prediction: Optional[tuple[dict[str, Any], float, float]] = None

    # ------------------------------------------------------------------
    def run(self, cycles: int) -> Generator:
        """Drive ``cycles`` control cycles (a ULT on the control
        process); returns the list of decisions taken."""
        taken: list[dict[str, Any]] = []
        for cycle in range(cycles):
            yield UltSleep(self.period)
            decision = yield from self.evaluate_once(cycle)
            taken.append(decision)
        return taken

    def evaluate_once(self, cycle: int = 0) -> Generator:
        """One control cycle: measure, decide, (maybe) rebalance."""
        service = self.service
        control = service.control
        assert control is not None
        started = control.kernel.now
        estimates: dict[str, dict[str, dict[str, float]]] = {}
        windows_used: dict[str, Any] = {}
        busy: dict[str, float] = {}
        for name in sorted(service.processes):
            process = service.processes[name]
            if not process.alive:
                continue
            handle = service.handle_for(name)
            profile = yield from handle.get_profile(last=self.estimator.smoothing)
            if not profile.get("enabled"):
                continue
            estimates[name] = self.estimator.estimate(profile)
            windows = profile.get("windows", [])
            windows_used[name] = (
                [windows[0]["index"], windows[-1]["index"]] if windows else None
            )
            utilization = yield from handle.get_utilization()
            xstreams = utilization.get("xstreams", {})
            busy[name] = max(
                (s["utilization"] for s in xstreams.values()), default=0.0
            )
        placement = service.measured_placement(estimates)
        imbalance = placement.load_imbalance()
        max_busy = max(busy.values(), default=0.0)
        total_load = sum(placement.load_of(n) for n in placement.nodes)
        triggered = total_load > 0 and (
            imbalance > self.load_imbalance_threshold
            or max_busy > self.busy_threshold
        )
        # Health veto (ISSUE 6): never plan migrations *onto* a target
        # the health plane currently holds suspect or dead -- moving
        # shards to a dying process converts an imbalance into an
        # outage.  Degraded targets stay eligible (the move may be the
        # cure for their burning SLO).
        health = getattr(service.cluster, "health", None)
        vetoed: list[str] = []
        if health is not None:
            vetoed = sorted(
                name
                for name in placement.nodes
                if not health.registry.is_placeable(name)
            )
        decision: dict[str, Any] = {
            "cycle": cycle,
            "time": started,
            "windows": windows_used,
            "load_imbalance": imbalance,
            "max_busy": max_busy,
            "loads": {n: placement.load_of(n) for n in sorted(placement.nodes)},
            "triggered": triggered,
            "vetoed_nodes": vetoed,
            "moves": [],
        }
        eligible = [n for n in placement.nodes if n not in vetoed]
        if triggered and len(eligible) >= 1:
            plan = yield from service.rebalance(
                objective=self.objective, placement=placement, target=eligible
            )
            self.rebalances += 1
            decision["moves"] = [
                {
                    "shard": move.shard.shard_id,
                    "source": move.source,
                    "destination": move.destination,
                }
                for move in plan.moves
            ]
        decision["xray"] = yield from self._evaluate_xray(decision)
        self.decisions.append(decision)
        if health is not None:
            health.note_decision(decision)
        if control.tracer is not None:
            control.tracer.record_span(
                name="reconfiguration_decision",
                category="control",
                process=control.process.name,
                start=started,
                end=control.kernel.now,
                attributes={
                    "cycle": cycle,
                    "triggered": triggered,
                    "load_imbalance": imbalance,
                    "max_busy": max_busy,
                    "moves": len(decision["moves"]),
                },
            )
        return decision

    def _evaluate_xray(self, decision: dict[str, Any]) -> Generator:
        """Tail-attribution step of one cycle: query the latest xray
        window, resolve any pending predicted-vs-realized delta, and
        (optionally) apply the top ``add_xstream`` recommendation."""
        service = self.service
        source = None
        for name in sorted(service.processes):
            process = service.processes[name]
            if not process.alive:
                continue
            if getattr(process.margo.config.observability, "xray", False):
                source = name
                break
        if source is None:
            return None
        reply = yield from service.handle_for(source).get_attribution(last=1)
        if not reply.get("enabled") or not reply["windows"]:
            return None
        window = reply["windows"][-1]
        attribution = window["attribution"]
        actions = window["whatif"]["actions"]
        top = actions[0] if actions else None
        doc: dict[str, Any] = {
            "window": window["index"],
            "p99": attribution["p99"],
            "top_action": None
            if top is None
            else {
                "action": top["action"],
                "process": top["process"],
                "target": top["target"],
                "predicted_p99": top["predicted_p99"],
                "predicted_improvement": top["predicted_improvement"],
            },
        }
        if self._pending_prediction is not None:
            prior, predicted_p99, base_p99 = self._pending_prediction
            realized_p99 = attribution["p99"]
            prior["xray"]["realized_p99"] = realized_p99
            prior["xray"]["realized_improvement"] = (
                (base_p99 - realized_p99) / base_p99 if base_p99 > 0 else 0.0
            )
            self._pending_prediction = None
        elif (
            self.apply_xray_actions
            and top is not None
            and top["action"] == "add_xstream"
            and top["predicted_improvement"] >= self.xray_min_improvement
            and top["process"] in service.processes
            and service.processes[top["process"]].alive
        ):
            xs_name = f"xray_xs_{decision['cycle']}"
            yield from service.handle_for(top["process"]).add_xstream(
                {"name": xs_name, "scheduler": {"pools": [top["target"]]}}
            )
            self.xray_actions_applied += 1
            doc["applied"] = {
                "action": "add_xstream",
                "name": xs_name,
                "pool": top["target"],
                "process": top["process"],
            }
            self._pending_prediction = (
                decision,
                top["predicted_p99"],
                attribution["p99"],
            )
        return doc
