"""Concurrent composition of ULT generators.

``yield from parallel(margo, [gen1, gen2, ...])`` runs the generators as
concurrent ULTs and returns their results in order; the first failure is
re-raised after all complete.  Used wherever a component fans out work:
replicated writes, pipelined REMI chunks, scatter-gather queries.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Sequence

from ..margo.runtime import MargoInstance
from ..margo.ult import Park, UltState

__all__ = ["parallel", "ParallelError"]


class ParallelError(RuntimeError):
    """One or more parallel branches failed; ``errors`` holds them all
    (index, exception); the first is the ``__cause__``."""

    def __init__(self, errors: Sequence[tuple[int, BaseException]]) -> None:
        super().__init__(
            f"{len(errors)} parallel branch(es) failed: "
            + "; ".join(f"[{i}] {type(e).__name__}: {e}" for i, e in errors)
        )
        self.errors = list(errors)


def parallel(margo: MargoInstance, gens: Iterable[Generator], pool: Any = None) -> Generator:
    """Run ``gens`` concurrently; return their results in input order."""
    ults = [margo.spawn_ult(gen, pool=pool, name=f"parallel-{i}") for i, gen in enumerate(gens)]
    errors: list[tuple[int, BaseException]] = []
    results: list[Any] = []
    for index, ult in enumerate(ults):
        if ult.state != UltState.DONE:
            yield Park(ult.done_event, None)
        if ult.error is not None:
            errors.append((index, ult.error))
            results.append(None)
        else:
            results.append(ult.result)
    if errors:
        error = ParallelError(errors)
        error.__cause__ = errors[0][1]
        raise error
    return results
