"""Resilience manager: top-down failure reaction (paper section 7).

Combines the paper's building blocks into the service-wide reactor the
"top-down" design requires:

* a **periodic checkpointer** writes every provider's state to the PFS
  (Observation 9: at worst, the modifications since the last checkpoint
  are lost);
* a **failure reactor** subscribes to SSG death notifications
  (Observation 12) and re-provisions the dead process's providers on a
  replacement node, restoring each from its latest checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..margo.ult import UltSleep
from .service import DynamicService, ManagedProcess, ServiceError
from .spec import ProcessSpec

__all__ = ["ResilienceManager", "RecoveryEvent"]


@dataclass(frozen=True)
class RecoveryEvent:
    time: float
    failed_process: str
    replacement_process: str
    providers_restored: int
    recovery_duration: float


class ResilienceManager:
    """Checkpoints the service and recovers from process/node deaths."""

    def __init__(
        self,
        service: DynamicService,
        checkpoint_interval: float,
        allocate_node: Callable[[], Optional[str]],
        checkpoint_prefix: str = "ckpt",
    ) -> None:
        if service.pfs is None:
            raise ServiceError("resilience manager needs a service with a PFS")
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.service = service
        self.checkpoint_interval = checkpoint_interval
        self.allocate_node = allocate_node
        self.checkpoint_prefix = checkpoint_prefix
        #: provider name -> latest checkpoint path.
        self.latest_checkpoint: dict[str, str] = {}
        #: provider name -> (type, provider_id, pool, config) for re-provisioning.
        self._provider_specs: dict[str, dict] = {}
        #: provider name -> owning process name.
        self._owner: dict[str, str] = {}
        self.checkpoints_taken = 0
        self.recoveries: list[RecoveryEvent] = []
        #: Subscribers called with each :class:`RecoveryEvent` as it
        #: completes (the health plane closes incidents here, stamping
        #: the measured MTTR).
        self.on_recovery: list[Callable[[RecoveryEvent], None]] = []
        self._running = False
        self._version = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            raise ServiceError("resilience manager already running")
        self._running = True
        control = self.service.control
        assert control is not None
        control.spawn_ult(self._checkpoint_loop(), name="resilience-ckpt")
        for process in self.service.processes.values():
            self._watch(process)

    def stop(self) -> None:
        self._running = False

    def _watch(self, process: ManagedProcess) -> None:
        if process.group is None:
            return
        process.group.on_member_died.append(self._on_member_died)

    # ------------------------------------------------------------------
    # checkpointing (bottom-up, Observation 9)
    # ------------------------------------------------------------------
    def _checkpoint_loop(self) -> Generator:
        while self._running:
            yield UltSleep(self.checkpoint_interval)
            if not self._running:
                return
            yield from self.checkpoint_now()

    def checkpoint_now(self) -> Generator:
        self._version += 1
        version = self._version
        for name, process in list(self.service.processes.items()):
            if not process.alive:
                continue
            handle = self.service.handle_for(name)
            for record in list(process.bedrock.records.values()):
                if not record.module.supports_checkpoint:
                    continue
                path = f"{self.checkpoint_prefix}/v{version}/{record.name}"
                try:
                    yield from handle.checkpoint_provider(record.name, path)
                except Exception:
                    continue  # process may have died mid-round
                self.latest_checkpoint[record.name] = path
                self._provider_specs[record.name] = {
                    "type": record.type_name,
                    "provider_id": record.provider_id,
                    "config": record.config,
                }
                self._owner[record.name] = name
        self.checkpoints_taken += 1
        return self._version

    # ------------------------------------------------------------------
    # failure reaction (top-down, Observation 12)
    # ------------------------------------------------------------------
    def _on_member_died(self, address: str) -> None:
        control = self.service.control
        if control is None or control.finalized or not self._running:
            return
        dead = None
        for process in self.service.processes.values():
            if process.address == address:
                dead = process
                break
        if dead is None or dead.alive:
            return  # not ours, or a false positive
        control.spawn_ult(self._recover(dead), name=f"recover:{dead.name}")

    def _recover(self, dead: ManagedProcess) -> Generator:
        started = self.service.cluster.now
        node = self.allocate_node()
        if node is None:
            return None
        replacement_name = f"{dead.name}-r{int(started * 1000) % 1000000}"
        # Re-create the process shell (same margo/bedrock config shape).
        spec = ProcessSpec(
            name=replacement_name, node=node, config=dict(dead.spec.config)
        )
        # Strip providers from the boot config: we restore them one by
        # one from checkpoints instead.
        boot_config = dict(spec.config)
        lost_entries = boot_config.pop("providers", [])
        spec.config = boot_config
        del self.service.processes[dead.name]
        self.service.spec.processes = [
            p for p in self.service.spec.processes if p.name != dead.name
        ]
        replacement = yield from self.service.grow(spec)
        self._watch(replacement)
        handle = self.service.handle_for(replacement_name)
        restored = 0
        lost_providers = [
            name for name, owner in self._owner.items() if owner == dead.name
        ]
        for provider_name in lost_providers:
            provider_spec = self._provider_specs[provider_name]
            yield from handle.start_provider(
                provider_name,
                provider_spec["type"],
                provider_id=provider_spec["provider_id"],
                config=provider_spec["config"],
            )
            path = self.latest_checkpoint.get(provider_name)
            if path is not None:
                yield from handle.restore_provider(provider_name, path)
            self._owner[provider_name] = replacement_name
            restored += 1
        event = RecoveryEvent(
            time=self.service.cluster.now,
            failed_process=dead.name,
            replacement_process=replacement_name,
            providers_restored=restored,
            recovery_duration=self.service.cluster.now - started,
        )
        self.recoveries.append(event)
        for callback in list(self.on_recovery):
            callback(event)
        return None
