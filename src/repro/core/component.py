"""The anatomy of a Mochi component (paper Fig. 1).

Every component in this package provides:

* a **server library**: a :class:`Provider` subclass that manages a
  resource and registers RPCs for remote access.  Multiple providers
  coexist in one process, distinguished by their *provider id*; each is
  configured from a JSON document and runs its handlers in an Argobots
  pool;
* a **client library**: a :class:`Client` subclass from which users
  instantiate :class:`ResourceHandle` objects encapsulating the address
  and provider id of the provider holding the resource;
* a **resource** following an abstract backend interface so the
  component's functionality "can be implemented in various ways"
  (e.g. Yokan over map/ordered-map/file backends).

Dynamic-service hooks (``migrate``, ``checkpoint``, ``restore``,
``get_config``) are part of the provider interface so Bedrock can
orchestrate migration and resilience without knowing component
internals (paper sections 6-7).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..margo.pool import Pool
from ..margo.runtime import MargoInstance, RequestContext
from ..mercury import NULL_PROVIDER

__all__ = ["Provider", "Client", "ResourceHandle", "ComponentError", "ProviderIdError"]

_UNSET = object()


class ComponentError(RuntimeError):
    """Base class for component-level errors."""


class ProviderIdError(ComponentError, ValueError):
    """Invalid or conflicting provider id."""


class Provider:
    """Base class for the server side of a component.

    Subclasses set :attr:`component_type` (the RPC namespace) and call
    :meth:`register_rpc` for each operation.  RPC names on the wire are
    ``"<component_type>_<operation>"``, so different component types
    never collide even at the same provider id.
    """

    #: Override in subclasses, e.g. ``"yokan"``.
    component_type: str = "component"

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        pool: str | Pool | None = None,
        config: Optional[dict[str, Any]] = None,
    ) -> None:
        if not 0 <= provider_id < NULL_PROVIDER:
            raise ProviderIdError(
                f"provider id must be in [0, {NULL_PROVIDER}), got {provider_id}"
            )
        self.margo = margo
        self.name = name
        self.provider_id = provider_id
        self.config: dict[str, Any] = dict(config or {})
        pool_name = pool if isinstance(pool, str) else (
            pool.name if pool is not None else margo.config.rpc_pool
        )
        self.pool: Pool = margo.claim_pool(pool_name, owner=f"provider:{name}")
        self._registered: list[str] = []
        self._destroyed = False

    # ------------------------------------------------------------------
    def register_rpc(self, operation: str, handler: Any) -> None:
        """Register an RPC handler under this provider's id and pool."""
        rpc_name = f"{self.component_type}_{operation}"
        self.margo.register(
            rpc_name, handler, provider_id=self.provider_id, pool=self.pool
        )
        self._registered.append(rpc_name)

    @property
    def address(self) -> str:
        return self.margo.address

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    def destroy(self) -> None:
        """Deregister all RPCs and release the pool claim."""
        if self._destroyed:
            return
        self._destroyed = True
        for rpc_name in self._registered:
            try:
                self.margo.deregister(rpc_name, provider_id=self.provider_id)
            except Exception:
                pass  # margo may already be finalized
        self._registered.clear()
        self.margo.release_pool(self.pool.name, owner=f"provider:{self.name}")

    # ------------------------------------------------------------------
    # dynamic-service hooks (Bedrock modules call these)
    # ------------------------------------------------------------------
    def get_config(self) -> dict[str, Any]:
        """The provider's live JSON configuration."""
        return dict(self.config)

    def migrate(self, remi_client: Any, dest_address: str, dest_provider_id: int) -> Generator:
        """Move this provider's state to another process via REMI.

        Components that own persistent state override this (paper
        section 6, Observation 5: components "expose a migrate function
        pointer for Bedrock to call").
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support migration"
        )
        yield  # pragma: no cover - makes this a generator

    def checkpoint(self, pfs: Any, path: str) -> Generator:
        """Save the provider's state to a parallel file system path
        (paper section 7, Observation 9)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )
        yield  # pragma: no cover

    def restore(self, pfs: Any, path: str) -> Generator:
        """Restore the provider's state from a checkpoint."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support restore"
        )
        yield  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} {self.name!r} id={self.provider_id} "
            f"at {self.margo.process.name}>"
        )


class Client:
    """Base class for the client side of a component."""

    #: Must match the provider's :attr:`Provider.component_type`.
    component_type: str = "component"
    #: Subclasses point this at their ResourceHandle subclass.
    handle_cls: type["ResourceHandle"]

    def __init__(self, margo: MargoInstance) -> None:
        self.margo = margo

    def make_handle(self, address: str, provider_id: int) -> "ResourceHandle":
        """Create a handle to the remote resource at (address, provider_id)."""
        return self.handle_cls(self, address, provider_id)


class ResourceHandle:
    """Maps to a remote resource: encapsulates address + provider id
    (paper Fig. 1)."""

    def __init__(self, client: Client, address: str, provider_id: int) -> None:
        self.client = client
        self.address = address
        self.provider_id = provider_id
        #: Per-handle default RPC timeout; when set, applies to every
        #: operation issued through this handle (overridable per call).
        self.timeout: Any = _UNSET
        #: When set, every RPC carries this capability token; guarded
        #: providers (repro.security) unwrap and verify it.
        self.auth_token: Optional[str] = None

    def _forward(self, operation: str, args: Any = None, timeout: Any = _UNSET) -> Generator:
        """Issue ``<component_type>_<operation>`` to the remote provider."""
        rpc_name = f"{self.client.component_type}_{operation}"
        if self.auth_token is not None:
            args = {"__token__": self.auth_token, "__args__": args}
        if timeout is _UNSET:
            timeout = self.timeout
        kwargs: dict[str, Any] = {}
        if timeout is not _UNSET:
            kwargs["timeout"] = timeout
        result = yield from self.client.margo.forward(
            self.address, rpc_name, args, provider_id=self.provider_id, **kwargs
        )
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} -> {self.address} "
            f"provider={self.provider_id}>"
        )
