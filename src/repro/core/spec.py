"""Declarative service specifications.

A :class:`ServiceSpec` describes a whole distributed service in one
document -- the multi-process generalization of the paper's Listing 3:

.. code-block:: python

    ServiceSpec(
        name="kvsvc",
        processes=[
            ProcessSpec(name="kv0", node="n0", config={
                "margo": {...},                      # Listing 2
                "libraries": {"yokan": "libyokan.so"},
                "providers": [{"name": "db0", "type": "yokan", ...}],
            }),
            ...
        ],
        group="kvsvc-group",    # SSG group all processes join
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..ssg.swim import SwimConfig

__all__ = ["ProcessSpec", "ServiceSpec", "SpecError"]


class SpecError(ValueError):
    """Malformed service specification."""


@dataclass
class ProcessSpec:
    """One process of the service."""

    name: str
    node: str
    config: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("process name must be non-empty")
        if not self.node:
            raise SpecError(f"process {self.name!r} needs a node")


@dataclass
class ServiceSpec:
    """A whole service."""

    name: str
    processes: list[ProcessSpec] = field(default_factory=list)
    #: Name of the SSG group the service's processes form (None = no group).
    group: Optional[str] = None
    swim: Optional[SwimConfig] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("service name must be non-empty")
        if not self.processes:
            raise SpecError(f"service {self.name!r} needs at least one process")
        names = [p.name for p in self.processes]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate process names in service {self.name!r}: {names}")

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "ServiceSpec":
        unknown = set(doc) - {"name", "processes", "group", "swim"}
        if unknown:
            raise SpecError(f"unknown service spec keys: {sorted(unknown)}")
        processes = [
            ProcessSpec(name=p["name"], node=p["node"], config=p.get("config", {}))
            for p in doc.get("processes", [])
        ]
        swim = doc.get("swim")
        return cls(
            name=doc.get("name", ""),
            processes=processes,
            group=doc.get("group"),
            swim=SwimConfig(**swim) if isinstance(swim, dict) else swim,
        )
