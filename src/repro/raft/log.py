"""The replicated log, with snapshot-based compaction.

Raft's log is 1-indexed; entry 0 is a virtual sentinel.  After a
snapshot at index S, entries [1..S] are discarded and the log remembers
``(snapshot_index, snapshot_term)`` so consistency checks still work at
the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["LogEntry", "RaftLog", "CompactedError"]


class CompactedError(RuntimeError):
    """The requested index has been compacted into a snapshot."""


@dataclass(frozen=True)
class LogEntry:
    term: int
    index: int
    command: Any


class RaftLog:
    """In-memory Raft log with compaction."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self.snapshot_index = 0
        self.snapshot_term = 0

    # ------------------------------------------------------------------
    @property
    def last_index(self) -> int:
        if self._entries:
            return self._entries[-1].index
        return self.snapshot_index

    @property
    def last_term(self) -> int:
        if self._entries:
            return self._entries[-1].term
        return self.snapshot_term

    @property
    def first_index(self) -> int:
        """Smallest index still present (snapshot_index + 1), or
        ``last_index + 1`` when empty."""
        return self.snapshot_index + 1

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def append_new(self, term: int, command: Any) -> LogEntry:
        """Leader path: append a fresh entry."""
        entry = LogEntry(term=term, index=self.last_index + 1, command=command)
        self._entries.append(entry)
        return entry

    def entry_at(self, index: int) -> LogEntry:
        if index <= self.snapshot_index:
            raise CompactedError(f"index {index} <= snapshot {self.snapshot_index}")
        offset = index - self.snapshot_index - 1
        if offset < 0 or offset >= len(self._entries):
            raise IndexError(f"no entry at index {index}")
        return self._entries[offset]

    def term_at(self, index: int) -> int:
        if index == self.snapshot_index:
            return self.snapshot_term
        if index == 0:
            return 0
        return self.entry_at(index).term

    def has_index(self, index: int) -> bool:
        return self.snapshot_index < index <= self.last_index

    def entries_from(self, start: int, limit: int = 0) -> list[LogEntry]:
        """Entries with index >= start (up to ``limit`` when non-zero)."""
        if start <= self.snapshot_index:
            raise CompactedError(f"start {start} <= snapshot {self.snapshot_index}")
        offset = max(0, start - self.snapshot_index - 1)
        out = self._entries[offset:]
        if limit:
            out = out[:limit]
        return out

    # ------------------------------------------------------------------
    def match_and_append(
        self, prev_index: int, prev_term: int, entries: list[LogEntry]
    ) -> bool:
        """Follower path: the AppendEntries consistency check + append.

        Returns False when the log does not contain an entry at
        ``prev_index`` with ``prev_term``.  Conflicting suffixes are
        truncated; duplicate prefixes are skipped (idempotent).
        """
        if prev_index > self.last_index:
            return False
        if prev_index >= self.first_index and self.term_at(prev_index) != prev_term:
            return False
        if prev_index == self.snapshot_index and prev_term != self.snapshot_term:
            return False
        for entry in entries:
            if entry.index <= self.snapshot_index:
                continue  # already snapshotted
            if self.has_index(entry.index):
                if self.term_at(entry.index) == entry.term:
                    continue  # duplicate
                self._truncate_from(entry.index)
            self._entries.append(entry)
        return True

    def _truncate_from(self, index: int) -> None:
        offset = index - self.snapshot_index - 1
        del self._entries[offset:]

    # ------------------------------------------------------------------
    def compact_to(self, index: int) -> None:
        """Discard entries up to and including ``index`` (snapshotted)."""
        if index <= self.snapshot_index:
            return
        term = self.term_at(index)
        keep = [e for e in self._entries if e.index > index]
        self._entries = keep
        self.snapshot_index = index
        self.snapshot_term = term

    def reset_to_snapshot(self, index: int, term: int) -> None:
        """InstallSnapshot path: replace the whole log."""
        self._entries = []
        self.snapshot_index = index
        self.snapshot_term = term

    def is_up_to_date(self, other_last_index: int, other_last_term: int) -> bool:
        """Raft's vote rule: is the *other* log at least as up-to-date?"""
        if other_last_term != self.last_term:
            return other_last_term > self.last_term
        return other_last_index >= self.last_index
