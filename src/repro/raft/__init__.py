"""Mochi-RAFT: composable consensus for Mochi components (paper section 7)."""

from .client import RaftClient, RaftGroupHandle, RaftUnavailableError
from .log import CompactedError, LogEntry, RaftLog
from .node import CONFIG_OP, RaftConfig, RaftNode, Role
from .smr import CounterStateMachine, KVStateMachine, StateMachine

__all__ = [
    "RaftNode",
    "RaftConfig",
    "Role",
    "CONFIG_OP",
    "RaftClient",
    "RaftGroupHandle",
    "RaftUnavailableError",
    "RaftLog",
    "LogEntry",
    "CompactedError",
    "StateMachine",
    "KVStateMachine",
    "CounterStateMachine",
]
