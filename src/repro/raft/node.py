"""Mochi-RAFT: a Raft consensus provider on the Margo runtime.

Implements leader election, log replication, commitment, snapshot-based
log compaction with InstallSnapshot for lagging followers, and
single-server membership changes -- the full protocol of Ongaro &
Ousterhout [20], which the paper adopts for "composable consensus"
(section 7, Observation 11).

Each :class:`RaftNode` is a provider; one process may host several
(different provider ids = different consensus groups).  The replicated
application is any :class:`~repro.raft.smr.StateMachine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..core.component import Provider
from ..margo.errors import RpcError
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute, Park, UltEvent, UltSleep
from ..sim.kernel import TIMED_OUT
from .log import LogEntry, RaftLog
from .smr import StateMachine

__all__ = ["RaftNode", "RaftConfig", "Role", "CONFIG_OP"]

#: Command key marking a membership-change entry.
CONFIG_OP = "__config__"


@dataclass(frozen=True)
class RaftConfig:
    """Protocol timing and sizing."""

    heartbeat_interval: float = 0.1
    election_timeout_min: float = 0.3
    election_timeout_max: float = 0.6
    rpc_timeout: float = 0.12
    #: Client submit wait bound (leader side).
    submit_timeout: float = 5.0
    max_entries_per_rpc: int = 64
    #: Compact the log once it exceeds this many entries.
    snapshot_threshold: int = 512

    def __post_init__(self) -> None:
        if not 0 < self.heartbeat_interval < self.election_timeout_min:
            raise ValueError("need heartbeat_interval < election_timeout_min")
        if self.election_timeout_min >= self.election_timeout_max:
            raise ValueError("need election_timeout_min < election_timeout_max")


class Role:
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


class RaftNode(Provider):
    """One member of a Raft consensus group."""

    component_type = "raft"

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        state_machine: StateMachine,
        peers: list[str],
        rng: Any,
        config: Optional[RaftConfig] = None,
        pool: Any = None,
    ) -> None:
        super().__init__(margo, name, provider_id, pool=pool, config={})
        if margo.address not in peers:
            raise ValueError("peers must include this node's own address")
        self.sm = state_machine
        self.peers: list[str] = list(peers)
        self.rng = rng
        self.rc = config or RaftConfig()

        self.current_term = 0
        self.voted_for: Optional[str] = None
        self.log = RaftLog()
        self.commit_index = 0
        self.last_applied = 0
        self.role = Role.FOLLOWER
        self.leader_hint: Optional[str] = None

        self.next_index: dict[str, int] = {}
        self.match_index: dict[str, int] = {}
        self._ae_inflight: set[str] = set()
        self._pending: dict[int, tuple[UltEvent, int]] = {}
        self._snapshot_data: bytes = b""
        # Client sessions for exactly-once semantics (Raft paper sec. 8):
        # client id -> (last applied sequence number, its result).  A
        # retried command (same client+seq) returns the cached result
        # instead of being applied twice.
        self._sessions: dict[str, tuple[int, Any]] = {}

        self._running = True
        self._election_deadline = 0.0
        self._next_heartbeat = 0.0
        self._reset_election_deadline()

        #: Subscribers called with (role, term) on every role *change*
        #: (not on same-role reaffirmations, so heartbeats stay silent);
        #: the health plane's flight recorder correlates elections with
        #: incidents here.
        self.on_role_change: list[Callable[[str, int], None]] = []

        # Protocol counters (tests/benchmarks read the properties below);
        # registered into the process metrics registry, labelled by
        # group so several consensus groups per process stay distinct.
        def _counter(suffix: str, help: str):
            return margo.metrics.counter(
                f"raft_{suffix}", help, label_names=("group",)
            ).labels(group=name)

        self._elections_started = _counter(
            "elections_started", "elections this node initiated"
        )
        self._terms_seen = _counter("terms_seen", "distinct terms observed")
        self._snapshots_taken = _counter(
            "snapshots_taken", "log compactions performed"
        )
        self._entries_applied = _counter(
            "entries_applied", "committed entries applied to the state machine"
        )

        self.register_rpc("request_vote", self._on_request_vote)
        self.register_rpc("append_entries", self._on_append_entries)
        self.register_rpc("install_snapshot", self._on_install_snapshot)
        self.register_rpc("submit", self._on_submit)
        self.register_rpc("read", self._on_read)
        self.register_rpc("status", self._on_status)

        margo.spawn_ult(self._ticker(), name=f"raft-ticker:{name}")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return self.margo.address

    @property
    def is_leader(self) -> bool:
        return self.role == Role.LEADER

    @property
    def elections_started(self) -> int:
        return int(self._elections_started.value)

    @property
    def terms_seen(self) -> int:
        return int(self._terms_seen.value)

    @property
    def snapshots_taken(self) -> int:
        return int(self._snapshots_taken.value)

    @property
    def entries_applied(self) -> int:
        return int(self._entries_applied.value)

    def _majority(self) -> int:
        return len(self.peers) // 2 + 1

    def _other_peers(self) -> list[str]:
        return [p for p in self.peers if p != self.address]

    def _reset_election_deadline(self) -> None:
        rc = self.rc
        span = rc.election_timeout_max - rc.election_timeout_min
        self._election_deadline = (
            self.margo.kernel.now + rc.election_timeout_min + self.rng.random() * span
        )

    def _set_role(self, role: Role) -> None:
        if role is self.role:
            return
        self.role = role
        for callback in list(self.on_role_change):
            callback(role.value, self.current_term)

    def _become_follower(self, term: int) -> None:
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
            self._terms_seen.inc()
        self._set_role(Role.FOLLOWER)
        self._reset_election_deadline()

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    # the driving loop
    # ------------------------------------------------------------------
    def _ticker(self) -> Generator:
        tick = self.rc.heartbeat_interval / 2
        while self._running and not self.margo.finalized:
            yield UltSleep(tick)
            if not self._running or self.margo.finalized:
                return
            now = self.margo.kernel.now
            if self.role == Role.LEADER:
                if now >= self._next_heartbeat:
                    self._next_heartbeat = now + self.rc.heartbeat_interval
                    self._broadcast_append()
            elif now >= self._election_deadline:
                self.margo.spawn_ult(
                    self._run_election(), name=f"raft-election:{self.name}"
                )
                self._reset_election_deadline()

    # ------------------------------------------------------------------
    # elections
    # ------------------------------------------------------------------
    def _run_election(self) -> Generator:
        self.current_term += 1
        self.voted_for = self.address
        self._set_role(Role.CANDIDATE)
        self._elections_started.inc()
        term = self.current_term
        votes = {"count": 1}  # self-vote
        won = UltEvent(self.margo.kernel, name=f"election:{self.name}:{term}")

        others = self._other_peers()
        if not others:
            self._become_leader()
            return

        def ask(peer: str) -> Generator:
            try:
                reply = yield from self.margo.forward(
                    peer,
                    "raft_request_vote",
                    {
                        "term": term,
                        "candidate": self.address,
                        "last_log_index": self.log.last_index,
                        "last_log_term": self.log.last_term,
                    },
                    provider_id=self.provider_id,
                    timeout=self.rc.rpc_timeout,
                )
            except RpcError:
                return None
            if reply["term"] > self.current_term:
                self._become_follower(reply["term"])
                won.set(False)
                return None
            if reply["granted"] and self.role == Role.CANDIDATE and self.current_term == term:
                votes["count"] += 1
                if votes["count"] >= self._majority():
                    won.set(True)
            return None

        for peer in others:
            self.margo.spawn_ult(ask(peer), name=f"vote:{self.name}:{peer}")
        outcome = yield Park(won, self.rc.rpc_timeout * 2)
        if outcome is True and self.role == Role.CANDIDATE and self.current_term == term:
            self._become_leader()
        return None

    def _become_leader(self) -> None:
        self._set_role(Role.LEADER)
        self.leader_hint = self.address
        for peer in self._other_peers():
            self.next_index[peer] = self.log.last_index + 1
            self.match_index[peer] = 0
        # Classic Raft: commit a no-op from the new term to learn the
        # commit point and fence earlier terms.
        self.log.append_new(self.current_term, {"op": "noop"})
        self._maybe_advance_commit()
        self._next_heartbeat = self.margo.kernel.now + self.rc.heartbeat_interval
        self._broadcast_append()

    # ------------------------------------------------------------------
    # replication (leader side)
    # ------------------------------------------------------------------
    def _broadcast_append(self) -> None:
        for peer in self._other_peers():
            if peer not in self._ae_inflight:
                self.margo.spawn_ult(
                    self._replicate_to(peer), name=f"ae:{self.name}:{peer}"
                )

    def _replicate_to(self, peer: str) -> Generator:
        if peer in self._ae_inflight or self.role != Role.LEADER:
            return None
        self._ae_inflight.add(peer)
        try:
            next_index = self.next_index.get(peer, self.log.last_index + 1)
            if next_index <= self.log.snapshot_index:
                yield from self._send_snapshot(peer)
                return None
            prev_index = next_index - 1
            entries = self.log.entries_from(next_index, self.rc.max_entries_per_rpc)
            wire = [
                {"term": e.term, "index": e.index, "command": e.command} for e in entries
            ]
            try:
                reply = yield from self.margo.forward(
                    peer,
                    "raft_append_entries",
                    {
                        "term": self.current_term,
                        "leader": self.address,
                        "prev_log_index": prev_index,
                        "prev_log_term": self.log.term_at(prev_index),
                        "entries": wire,
                        "leader_commit": self.commit_index,
                    },
                    provider_id=self.provider_id,
                    timeout=self.rc.rpc_timeout,
                )
            except RpcError:
                return None
            if reply["term"] > self.current_term:
                self._become_follower(reply["term"])
                return None
            if self.role != Role.LEADER:
                return None
            if reply["success"]:
                match = prev_index + len(entries)
                self.match_index[peer] = max(self.match_index.get(peer, 0), match)
                self.next_index[peer] = self.match_index[peer] + 1
                self._maybe_advance_commit()
                if self.next_index[peer] <= self.log.last_index:
                    # More to send: continue immediately (pipelined).
                    self.margo.spawn_ult(
                        self._continue_replication(peer), name=f"ae+:{self.name}:{peer}"
                    )
            else:
                hint = reply.get("conflict_index")
                self.next_index[peer] = max(
                    1, hint if hint is not None else next_index - 1
                )
                self.margo.spawn_ult(
                    self._continue_replication(peer), name=f"ae-:{self.name}:{peer}"
                )
        finally:
            self._ae_inflight.discard(peer)
        return None

    def _continue_replication(self, peer: str) -> Generator:
        yield Compute(1e-9)
        yield from self._replicate_to(peer)

    def _send_snapshot(self, peer: str) -> Generator:
        data = self._snapshot_data
        try:
            reply = yield from self.margo.forward(
                peer,
                "raft_install_snapshot",
                {
                    "term": self.current_term,
                    "leader": self.address,
                    "snapshot_index": self.log.snapshot_index,
                    "snapshot_term": self.log.snapshot_term,
                    "data": data,
                },
                provider_id=self.provider_id,
                timeout=self.rc.rpc_timeout * 4,
            )
        except RpcError:
            return None
        if reply["term"] > self.current_term:
            self._become_follower(reply["term"])
            return None
        self.match_index[peer] = self.log.snapshot_index
        self.next_index[peer] = self.log.snapshot_index + 1
        return None

    def _maybe_advance_commit(self) -> None:
        if self.role != Role.LEADER:
            return
        for candidate in range(self.log.last_index, self.commit_index, -1):
            if candidate <= self.log.snapshot_index:
                break
            if self.log.term_at(candidate) != self.current_term:
                continue
            replicated = 1 + sum(
                1 for p in self._other_peers() if self.match_index.get(p, 0) >= candidate
            )
            if replicated >= self._majority():
                self.commit_index = candidate
                self._apply_committed()
                break

    # ------------------------------------------------------------------
    # applying
    # ------------------------------------------------------------------
    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            self._entries_applied.inc()
            entry = self.log.entry_at(self.last_applied)
            command = entry.command
            if isinstance(command, dict) and CONFIG_OP in command:
                self._apply_config(command[CONFIG_OP])
                result = None
            elif isinstance(command, dict) and "__client__" in command:
                client_id = command["__client__"]
                sequence = command["__seq__"]
                session = self._sessions.get(client_id)
                if session is not None and session[0] >= sequence:
                    # Duplicate (client retried after a lost ack): do not
                    # re-apply; return the original result.
                    result = session[1] if session[0] == sequence else None
                else:
                    result = self.sm.apply(command["__command__"])
                    self._sessions[client_id] = (sequence, result)
            else:
                result = self.sm.apply(command)
            pending = self._pending.pop(entry.index, None)
            if pending is not None:
                event, term = pending
                event.set(
                    {"ok": term == entry.term, "result": result}
                )
        self._maybe_snapshot()

    def _apply_config(self, members: list[str]) -> None:
        removed = [p for p in self.next_index if p not in members]
        self.peers = list(members)
        if self.address not in members:
            # We were removed: stop participating.
            self._set_role(Role.FOLLOWER)
            self.stop()
            return
        if self.role == Role.LEADER:
            # Send removed peers one final catch-up so they observe the
            # config entry (now committed) and shut themselves down,
            # instead of lingering and calling disruptive elections.
            for peer in removed:
                self.margo.spawn_ult(
                    self._part_with(peer), name=f"raft-part:{self.name}:{peer}"
                )
        else:
            for gone in removed:
                self.next_index.pop(gone, None)
                self.match_index.pop(gone, None)

    def _part_with(self, peer: str) -> Generator:
        yield from self._replicate_to(peer)
        self.next_index.pop(peer, None)
        self.match_index.pop(peer, None)

    def _maybe_snapshot(self) -> None:
        if len(self.log) > self.rc.snapshot_threshold and self.last_applied > self.log.snapshot_index:
            # The snapshot bytes must correspond exactly to the compaction
            # index; retain them for InstallSnapshot (the state machine
            # keeps advancing afterwards).  Client sessions ride along so
            # exactly-once semantics survive snapshot installation.
            self._snapshot_data = self._encode_snapshot()
            self.log.compact_to(self.last_applied)
            self._snapshots_taken.inc()

    def _encode_snapshot(self) -> bytes:
        import base64
        import json

        def pack(value: Any) -> Any:
            if isinstance(value, bytes):
                return {"__b64__": base64.b64encode(value).decode()}
            return value

        doc = {
            "sm": base64.b64encode(self.sm.snapshot()).decode(),
            "sessions": {
                client: [seq, pack(result)]
                for client, (seq, result) in self._sessions.items()
            },
        }
        return json.dumps(doc, sort_keys=True).encode()

    def _decode_snapshot(self, data: bytes) -> None:
        import base64
        import json

        def unpack(value: Any) -> Any:
            if isinstance(value, dict) and "__b64__" in value:
                return base64.b64decode(value["__b64__"])
            return value

        doc = json.loads(data)
        self.sm.restore(base64.b64decode(doc["sm"]))
        self._sessions = {
            client: (seq, unpack(result))
            for client, (seq, result) in doc["sessions"].items()
        }

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _on_request_vote(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        yield Compute(300e-9)
        if args["term"] > self.current_term:
            self._become_follower(args["term"])
        granted = False
        if args["term"] == self.current_term and self.role != Role.LEADER:
            if self.voted_for in (None, args["candidate"]) and self.log.is_up_to_date(
                args["last_log_index"], args["last_log_term"]
            ):
                granted = True
                self.voted_for = args["candidate"]
                self._reset_election_deadline()
        return {"term": self.current_term, "granted": granted}

    def _on_append_entries(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        yield Compute(300e-9 + 100e-9 * len(args["entries"]))
        if args["term"] < self.current_term:
            return {"term": self.current_term, "success": False}
        self._become_follower(args["term"])
        self.leader_hint = args["leader"]
        entries = [
            LogEntry(term=e["term"], index=e["index"], command=e["command"])
            for e in args["entries"]
        ]
        ok = self.log.match_and_append(
            args["prev_log_index"], args["prev_log_term"], entries
        )
        if not ok:
            conflict = min(args["prev_log_index"], self.log.last_index + 1)
            return {
                "term": self.current_term,
                "success": False,
                "conflict_index": max(self.log.first_index, conflict),
            }
        if args["leader_commit"] > self.commit_index:
            self.commit_index = min(args["leader_commit"], self.log.last_index)
            self._apply_committed()
        return {"term": self.current_term, "success": True}

    def _on_install_snapshot(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        yield Compute(300e-9 + len(args["data"]) / 10e9)
        if args["term"] < self.current_term:
            return {"term": self.current_term}
        self._become_follower(args["term"])
        self.leader_hint = args["leader"]
        if (
            args["snapshot_index"] > self.log.snapshot_index
            and args["snapshot_index"] > self.last_applied
        ):
            self._decode_snapshot(args["data"])
            self.log.reset_to_snapshot(args["snapshot_index"], args["snapshot_term"])
            self.commit_index = max(self.commit_index, args["snapshot_index"])
            self.last_applied = args["snapshot_index"]
        return {"term": self.current_term}

    def _on_submit(self, ctx: RequestContext) -> Generator:
        """Client entry point: replicate a command, wait for commit."""
        if self.role != Role.LEADER:
            yield Compute(200e-9)
            return {"ok": False, "leader": self.leader_hint}
        command = ctx.args["command"]
        if isinstance(command, dict) and "__client__" in command:
            session = self._sessions.get(command["__client__"])
            if session is not None and session[0] >= command["__seq__"]:
                # Retried command already applied: answer from the session
                # without appending a duplicate log entry.
                result = session[1] if session[0] == command["__seq__"] else None
                return {"ok": True, "result": result}
        entry = self.log.append_new(self.current_term, command)
        if isinstance(command, dict) and CONFIG_OP in command:
            # Membership changes take effect as soon as they are appended
            # (single-server change rule).
            self._apply_config_on_append(command[CONFIG_OP])
        event = UltEvent(self.margo.kernel, name=f"commit:{self.name}:{entry.index}")
        self._pending[entry.index] = (event, entry.term)
        self._maybe_advance_commit()  # single-node group commits instantly
        if self.role == Role.LEADER and self._other_peers():
            self._broadcast_append()
        outcome = yield Park(event, self.rc.submit_timeout)
        if outcome is TIMED_OUT:
            self._pending.pop(entry.index, None)
            return {"ok": False, "timeout": True, "leader": self.leader_hint}
        return outcome

    def _apply_config_on_append(self, members: list[str]) -> None:
        self.peers = list(members)
        for peer in self._other_peers():
            self.next_index.setdefault(peer, self.log.last_index)
            self.match_index.setdefault(peer, 0)

    def _on_read(self, ctx: RequestContext) -> Generator:
        """Linearizable read via the ReadIndex optimization (Raft paper
        section 8): record the commit index, confirm leadership with one
        round of heartbeats, wait for the apply point, then answer from
        the local state machine -- no log entry, no disk, one round trip
        to a majority."""
        if self.role != Role.LEADER:
            yield Compute(200e-9)
            return {"ok": False, "leader": self.leader_hint}
        read_index = self.commit_index
        confirmed = yield from self._confirm_leadership()
        if not confirmed or self.role != Role.LEADER:
            return {"ok": False, "leader": self.leader_hint}
        waited = 0.0
        while self.last_applied < read_index:
            yield UltSleep(self.rc.heartbeat_interval / 4)
            waited += self.rc.heartbeat_interval / 4
            if waited > self.rc.submit_timeout:
                return {"ok": False, "timeout": True}
        try:
            result = self.sm.query(ctx.args["command"])
        except Exception as err:  # surfaces as error response
            raise err
        return {"ok": True, "result": result}

    def _confirm_leadership(self) -> Generator:
        """One heartbeat round; True if a majority still accepts us."""
        others = self._other_peers()
        if not others:
            return True
        acks = {"count": 1}  # self
        done = UltEvent(self.margo.kernel, name=f"readidx:{self.name}")

        def probe(peer: str) -> Generator:
            prev_index = max(self.match_index.get(peer, 0), self.log.snapshot_index)
            try:
                reply = yield from self.margo.forward(
                    peer,
                    "raft_append_entries",
                    {
                        "term": self.current_term,
                        "leader": self.address,
                        "prev_log_index": prev_index,
                        "prev_log_term": self.log.term_at(prev_index),
                        "entries": [],
                        "leader_commit": self.commit_index,
                    },
                    provider_id=self.provider_id,
                    timeout=self.rc.rpc_timeout,
                )
            except RpcError:
                return None
            if reply["term"] > self.current_term:
                self._become_follower(reply["term"])
                done.set(False)
                return None
            acks["count"] += 1
            if acks["count"] >= self._majority():
                done.set(True)
            return None

        for peer in others:
            self.margo.spawn_ult(probe(peer), name=f"readidx:{self.name}:{peer}")
        outcome = yield Park(done, self.rc.rpc_timeout * 2)
        return outcome is True

    def _on_status(self, ctx: RequestContext) -> Generator:
        yield Compute(100e-9)
        return {
            "role": self.role,
            "term": self.current_term,
            "commit_index": self.commit_index,
            "last_applied": self.last_applied,
            "log_size": len(self.log),
            "snapshot_index": self.log.snapshot_index,
            "peers": list(self.peers),
            "leader": self.leader_hint,
        }
