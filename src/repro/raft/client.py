"""Raft client: leader discovery, redirects, and retries."""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.component import Client, ResourceHandle
from ..margo.errors import RpcError, RpcFailedError
from ..margo.runtime import MargoInstance
from ..margo.ult import UltSleep

__all__ = ["RaftClient", "RaftGroupHandle", "RaftUnavailableError"]


class RaftUnavailableError(RuntimeError):
    """No leader could be reached within the retry budget."""


class RaftGroupHandle(ResourceHandle):
    """Handle to a whole consensus group (not a single provider).

    ``address`` tracks the current leader guess; ``members`` is the full
    candidate list used for discovery.
    """

    _handle_counter = 0

    def __init__(
        self,
        client: "RaftClient",
        members: list[str],
        provider_id: int,
        retry_interval: float = 0.15,
        max_attempts: int = 60,
    ) -> None:
        super().__init__(client, members[0], provider_id)
        self.members = list(members)
        self.retry_interval = retry_interval
        self.max_attempts = max_attempts
        RaftGroupHandle._handle_counter += 1
        #: Client-session identity for exactly-once command semantics.
        self.client_id = f"{client.margo.address}/h{RaftGroupHandle._handle_counter}"
        self._sequence = 0

    def submit(self, command: Any, rpc_timeout: float = 1.0) -> Generator:
        """Replicate ``command``; returns the state machine's result.

        Follows leader hints, rotates through members while electing,
        and retries across leader failures.  Commands carry a client
        session (id, sequence), so a retry after a lost acknowledgement
        is deduplicated server-side (exactly-once application).
        """
        margo = self.client.margo
        from .node import CONFIG_OP

        if not (isinstance(command, dict) and CONFIG_OP in command):
            self._sequence += 1
            command = {
                "__client__": self.client_id,
                "__seq__": self._sequence,
                "__command__": command,
            }
        target: Optional[str] = self.address
        rotation = 0
        for _attempt in range(self.max_attempts):
            if target is None:
                target = self.members[rotation % len(self.members)]
                rotation += 1
            try:
                reply = yield from margo.forward(
                    target,
                    "raft_submit",
                    {"command": command},
                    provider_id=self.provider_id,
                    timeout=rpc_timeout,
                )
            except RpcFailedError:
                raise  # the remote handler answered with an error: authoritative
            except RpcError:
                target = None
                yield UltSleep(self.retry_interval)
                continue
            if reply.get("ok"):
                self.address = target  # cache the confirmed leader
                return reply.get("result")
            hint = reply.get("leader")
            target = hint if hint and hint != target else None
            yield UltSleep(self.retry_interval)
        raise RaftUnavailableError(
            f"no leader reachable after {self.max_attempts} attempts"
        )

    def read(self, query: Any, rpc_timeout: float = 1.0) -> Generator:
        """Linearizable read via the leader's ReadIndex fast path: no log
        entry is appended; one heartbeat round confirms leadership."""
        margo = self.client.margo
        target: Optional[str] = self.address
        rotation = 0
        for _attempt in range(self.max_attempts):
            if target is None:
                target = self.members[rotation % len(self.members)]
                rotation += 1
            try:
                reply = yield from margo.forward(
                    target,
                    "raft_read",
                    {"command": query},
                    provider_id=self.provider_id,
                    timeout=rpc_timeout,
                )
            except RpcFailedError:
                raise  # the remote handler answered with an error: authoritative
            except RpcError:
                target = None
                yield UltSleep(self.retry_interval)
                continue
            if reply.get("ok"):
                self.address = target
                return reply.get("result")
            hint = reply.get("leader")
            target = hint if hint and hint != target else None
            yield UltSleep(self.retry_interval)
        raise RaftUnavailableError(
            f"no leader reachable for read after {self.max_attempts} attempts"
        )

    def status_of(self, member: str) -> Generator:
        reply = yield from self.client.margo.forward(
            member, "raft_status", provider_id=self.provider_id, timeout=1.0
        )
        return reply

    def find_leader(self) -> Generator:
        """Poll members until one reports itself leader."""
        for _ in range(self.max_attempts):
            for member in self.members:
                try:
                    status = yield from self.status_of(member)
                except RpcError:
                    continue
                if status["role"] == "leader":
                    self.address = member
                    return member
            yield UltSleep(self.retry_interval)
        raise RaftUnavailableError("no leader found")

    def change_membership(self, members: list[str]) -> Generator:
        from .node import CONFIG_OP

        result = yield from self.submit({CONFIG_OP: list(members)})
        self.members = list(members)
        return result


class RaftClient(Client):
    """Client library of the Mochi-RAFT component."""

    component_type = "raft"
    handle_cls = RaftGroupHandle

    def make_group_handle(
        self, members: list[str], provider_id: int, **kwargs: Any
    ) -> RaftGroupHandle:
        return RaftGroupHandle(self, members, provider_id, **kwargs)
