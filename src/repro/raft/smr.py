"""State machines replicated by Raft.

Mochi-RAFT's composability story (paper section 7, Observation 11):
"individual Yokan instances are unaware of their database being
RAFT-replicated across nodes, while Mochi-RAFT itself does not need to
know that the commands it logs represent Yokan key-value pairs."

:class:`StateMachine` is the opaque interface Raft drives;
:class:`KVStateMachine` adapts any Yokan :class:`KVBackend` to it --
Yokan gains consensus with zero changes to its own code.
"""

from __future__ import annotations

from typing import Any, Optional

from ..yokan.backend import KVBackend, NoSuchKeyError

__all__ = ["StateMachine", "KVStateMachine", "CounterStateMachine"]


class StateMachine:
    """What Raft requires of an application state machine."""

    def apply(self, command: Any) -> Any:
        """Apply a committed command; must be deterministic."""
        raise NotImplementedError

    def query(self, command: Any) -> Any:
        """Read-only query (must not mutate state).  Used by the
        ReadIndex fast path; defaults to unsupported."""
        raise NotImplementedError(f"{type(self).__name__} does not support queries")

    def snapshot(self) -> bytes:
        """Serialize the full state (for log compaction)."""
        raise NotImplementedError

    def restore(self, data: bytes) -> None:
        """Replace state with a snapshot."""
        raise NotImplementedError


class KVStateMachine(StateMachine):
    """Drives an (unmodified) Yokan backend from Raft commands.

    Commands are dicts: ``{"op": "put"|"get"|"erase"|"exists"|"count",
    "key": bytes, "value": bytes}``.  Reads go through the log too, which
    makes them linearizable.
    """

    def __init__(self, backend: KVBackend) -> None:
        self.backend = backend

    def apply(self, command: dict) -> Any:
        op = command["op"]
        if op == "put":
            self.backend.put(command["key"], command["value"])
            return None
        if op == "get":
            try:
                return self.backend.get(command["key"])
            except NoSuchKeyError:
                return None
        if op == "erase":
            try:
                self.backend.erase(command["key"])
                return True
            except NoSuchKeyError:
                return False
        if op == "exists":
            return self.backend.exists(command["key"])
        if op == "count":
            return self.backend.count()
        if op == "noop":
            return None
        raise ValueError(f"unknown KV command {op!r}")

    def query(self, command: dict) -> Any:
        op = command["op"]
        if op == "get":
            try:
                return self.backend.get(command["key"])
            except NoSuchKeyError:
                return None
        if op == "exists":
            return self.backend.exists(command["key"])
        if op == "count":
            return self.backend.count()
        if op == "list_keys":
            return self.backend.list_keys(
                command.get("prefix", b""),
                command.get("start_after"),
                command.get("max_keys", 0),
            )
        raise ValueError(f"unsupported read-only query {op!r}")

    def snapshot(self) -> bytes:
        return self.backend.dump()

    def restore(self, data: bytes) -> None:
        self.backend.load(data)


class CounterStateMachine(StateMachine):
    """A tiny deterministic SM used by tests: add / read."""

    def __init__(self) -> None:
        self.value = 0
        self.applied: list[Any] = []

    def apply(self, command: Any) -> Any:
        self.applied.append(command)
        if isinstance(command, dict) and command.get("op") == "noop":
            return None
        delta = int(command)
        self.value += delta
        return self.value

    def snapshot(self) -> bytes:
        return str(self.value).encode()

    def restore(self, data: bytes) -> None:
        self.value = int(data.decode())
        self.applied = []
