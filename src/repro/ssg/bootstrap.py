"""Group bootstrapping.

"A group can be bootstrapped from PMIx, MPI, or simply a list of initial
addresses" (paper section 6).  In the simulation the three differ only
in where the initial address list comes from:

* :func:`create_group` -- collective creation from an explicit list of
  Margo instances (the MPI/PMIx analogue: every founding member knows
  the full roster at start);
* :func:`join_group` -- late join via any existing member's address.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..margo.runtime import MargoInstance
from ..sim.random import RandomSource
from .group import DEFAULT_SSG_PROVIDER_ID, SSGGroup
from .swim import SwimConfig

__all__ = ["create_group", "join_group"]


def create_group(
    group_name: str,
    margos: list[MargoInstance],
    randomness: RandomSource,
    swim: Optional[SwimConfig] = None,
    provider_id: int = DEFAULT_SSG_PROVIDER_ID,
    start: bool = True,
) -> list[SSGGroup]:
    """Collectively create a group over ``margos`` (MPI/PMIx-style).

    Every member starts with the full roster; the SWIM loops start
    immediately unless ``start=False``.
    """
    addresses = [m.address for m in margos]
    groups: list[SSGGroup] = []
    for margo in margos:
        group = SSGGroup(margo, group_name, provider_id=provider_id, swim=swim)
        group.seed_members(addresses)
        groups.append(group)
    if start:
        for group in groups:
            group.start(randomness.stream(f"swim:{group_name}:{group.margo.address}"))
    return groups


def join_group(
    group_name: str,
    margo: MargoInstance,
    bootstrap_addresses: list[str],
    randomness: RandomSource,
    swim: Optional[SwimConfig] = None,
    provider_id: int = DEFAULT_SSG_PROVIDER_ID,
) -> Generator:
    """Late join from a list of known member addresses.

    A ULT generator: ``group = yield from join_group(...)``.
    """
    group = SSGGroup(margo, group_name, provider_id=provider_id, swim=swim)
    yield from group.join_via(bootstrap_addresses)
    group.start(randomness.stream(f"swim:{group_name}:{margo.address}"))
    return group
