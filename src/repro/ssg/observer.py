"""Group observers: non-member clients tracking a service's location.

The paper (section 6, Observation 7) describes the simplest client
strategy for tracking an elastic service: "an explicit function that the
application needs to call to query the current view of the group."
:class:`SSGObserver` is that function, with failover across known
members and staleness detection via the view hash.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..margo.errors import RpcError
from ..margo.runtime import MargoInstance
from .group import DEFAULT_SSG_PROVIDER_ID, SSGError
from .view import GroupView

__all__ = ["SSGObserver"]


class SSGObserver:
    """Client-side, pull-based view of a group it is not a member of."""

    def __init__(
        self,
        margo: MargoInstance,
        group_name: str,
        bootstrap_addresses: list[str],
        provider_id: int = DEFAULT_SSG_PROVIDER_ID,
        rpc_timeout: float = 1.0,
    ) -> None:
        if not bootstrap_addresses:
            raise SSGError("observer needs at least one bootstrap address")
        self.margo = margo
        self.group_name = group_name
        self.provider_id = provider_id
        self.rpc_timeout = rpc_timeout
        self._known: list[str] = list(bootstrap_addresses)
        self._view: Optional[GroupView] = None
        self.refreshes = 0

    @property
    def view(self) -> GroupView:
        if self._view is None:
            raise SSGError("observer has no view yet; call refresh() first")
        return self._view

    @property
    def view_hash(self) -> str:
        return self.view.hash

    def refresh(self) -> Generator:
        """Query any reachable member for the current view."""
        last: Optional[BaseException] = None
        for address in list(self._known):
            try:
                reply = yield from self.margo.forward(
                    address,
                    f"ssg_{self.group_name}_get_view",
                    provider_id=self.provider_id,
                    timeout=self.rpc_timeout,
                )
            except RpcError as err:
                last = err
                continue
            self._view = GroupView.of(
                self.group_name, reply["members"], reply["epoch"]
            )
            # Future refreshes can contact any current member.
            self._known = list(self._view.members)
            self.refreshes += 1
            return self._view
        raise SSGError(
            f"no reachable member of group {self.group_name!r} among {self._known}"
        ) from last
