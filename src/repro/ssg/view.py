"""Group views.

SSG "maintains a dynamic view of a group of processes and allows this
view to be retrieved by client applications" (paper section 6,
Observation 7).  A view is an immutable snapshot: the sorted member
addresses plus a short hash -- the hash is what Colza piggybacks on
every RPC to detect stale clients.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

__all__ = ["GroupView", "view_hash_of"]


def view_hash_of(addresses: Iterable[str]) -> str:
    """Order-independent 16-hex-digit digest of a member set."""
    digest = hashlib.sha256("\n".join(sorted(addresses)).encode()).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class GroupView:
    """An immutable membership snapshot."""

    group_name: str
    members: tuple[str, ...]  # sorted addresses
    epoch: int

    @classmethod
    def of(cls, group_name: str, addresses: Iterable[str], epoch: int) -> "GroupView":
        return cls(group_name=group_name, members=tuple(sorted(addresses)), epoch=epoch)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def hash(self) -> str:
        return view_hash_of(self.members)

    def __contains__(self, address: str) -> bool:
        return address in self.members

    def index_of(self, address: str) -> int:
        """Rank of a member in the view (stable across members with the
        same view; used for deterministic role assignment)."""
        return self.members.index(address)
