"""SSG groups: the network half of SWIM plus the view API.

An :class:`SSGGroup` is a provider participating in one named group.  It
runs the SWIM failure-detector loop (direct ping, k indirect ping-reqs,
suspicion, confirmation), disseminates membership updates by gossip
piggybacking, and exposes:

* :meth:`view` / :attr:`view_hash` -- the dynamic group view clients
  track (paper section 6, Observation 7);
* ``on_member_died`` / ``on_view_change`` callbacks -- the fault
  notification that top-down resilience builds on (section 7,
  Observation 12);
* :meth:`leave` -- voluntary departure (elastic scale-in).

SSG provides **eventual** consistency of the view, exactly as the paper
states; benchmark E7 measures convergence.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..core.component import Provider
from ..margo.errors import RpcError
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import UltSleep
from .swim import MemberStatus, SwimConfig, SwimState, Update
from .view import GroupView

__all__ = ["SSGGroup", "SSGError", "DEFAULT_SSG_PROVIDER_ID"]

DEFAULT_SSG_PROVIDER_ID = 250


class SSGError(RuntimeError):
    """SSG-level failure (e.g. could not join any bootstrap address)."""


class SSGGroup(Provider):
    """Membership in one group, driven by SWIM."""

    component_type = "ssg"

    def __init__(
        self,
        margo: MargoInstance,
        group_name: str,
        provider_id: int = DEFAULT_SSG_PROVIDER_ID,
        pool: Any = None,
        config: Optional[dict[str, Any]] = None,
        swim: Optional[SwimConfig] = None,
    ) -> None:
        super().__init__(margo, f"ssg:{group_name}", provider_id, pool=pool, config=config)
        self.group_name = group_name
        self.swim_config = swim or SwimConfig()
        self.state = SwimState(margo.address, self.swim_config)
        self.state.on_change = self._on_state_change
        self._rng = None  # lazily derived from kernel-less sources
        self._running = False
        self._left = False
        #: user callbacks
        self.on_view_change: list[Callable[[GroupView], None]] = []
        self.on_member_died: list[Callable[[str], None]] = []
        #: every SWIM state transition, as (kind, address) with kind in
        #: {"alive", "suspect", "dead"} -- the health plane's registry
        #: and incident correlation subscribe here.
        self.on_membership_event: list[Callable[[str, str], None]] = []
        #: fired with (address, now) whenever a member proves liveness
        #: (its ping reaches us, or it acks ours); feeds the phi-accrual
        #: detector's inter-arrival estimator.
        self.on_heartbeat: list[Callable[[str, float], None]] = []
        # protocol counters (benchmarks read the properties below);
        # registered into the process metrics registry per group.
        def _counter(suffix: str, help: str):
            return margo.metrics.counter(
                f"ssg_{suffix}", help, label_names=("group",)
            ).labels(group=group_name)

        self._pings_sent = _counter("pings_sent", "SWIM direct pings sent")
        self._ping_reqs_sent = _counter(
            "ping_reqs_sent", "SWIM indirect ping-req fan-outs sent"
        )
        self._false_suspicions = _counter(
            "false_suspicions", "suspected members that refuted in time"
        )

        self.register_rpc(f"{group_name}_ping", self._on_ping)
        self.register_rpc(f"{group_name}_ping_req", self._on_ping_req)
        self.register_rpc(f"{group_name}_join", self._on_join)
        self.register_rpc(f"{group_name}_get_view", self._on_get_view)

    @property
    def pings_sent(self) -> int:
        return int(self._pings_sent.value)

    @property
    def ping_reqs_sent(self) -> int:
        return int(self._ping_reqs_sent.value)

    @property
    def false_suspicions(self) -> int:
        return int(self._false_suspicions.value)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, rng: Any) -> None:
        """Start the failure-detector loop.  ``rng`` is a seeded
        ``random.Random`` (determinism: one stream per member)."""
        if self._running:
            raise SSGError("group protocol already running")
        self._rng = rng
        self._running = True
        self.margo.spawn_ult(
            self._protocol_loop(), name=f"swim:{self.group_name}:{self.margo.process.name}"
        )

    def stop(self) -> None:
        self._running = False

    def leave(self) -> Generator:
        """Voluntarily leave: announce departure and stop the protocol."""
        self._left = True
        update = self.state.local_leave()
        # Push the departure to a few members directly so it spreads
        # without waiting for our next (cancelled) protocol round.
        targets = [a for a in self.state.ping_candidates()][:3]
        for address in targets:
            try:
                yield from self._send_ping(address)
            except RpcError:
                pass
        self.stop()
        return update

    # ------------------------------------------------------------------
    # the view API
    # ------------------------------------------------------------------
    @property
    def view(self) -> GroupView:
        return GroupView.of(self.group_name, self.state.view_members(), self.state.epoch)

    @property
    def view_hash(self) -> str:
        return self.view.hash

    @property
    def is_member(self) -> bool:
        return not self._left

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------
    def join_via(self, addresses: list[str]) -> Generator:
        """Join an existing group by contacting any reachable member."""
        last: Optional[BaseException] = None
        for address in addresses:
            if address == self.margo.address:
                continue
            try:
                rows = yield from self.margo.forward(
                    address,
                    f"ssg_{self.group_name}_join",
                    {"address": self.margo.address},
                    provider_id=self.provider_id,
                    timeout=self.swim_config.ping_timeout * 4,
                )
                self.state.load_snapshot(rows)
                return True
            except RpcError as err:
                last = err
        raise SSGError(
            f"could not join group {self.group_name!r} via any of {addresses}"
        ) from last

    def seed_members(self, addresses: list[str]) -> None:
        """Bootstrap: install an initial member list (creation time)."""
        for address in addresses:
            if address != self.margo.address:
                self.state.local_join(address)

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _on_ping(self, ctx: RequestContext) -> Generator:
        now = self.margo.kernel.now
        args = ctx.args or {}
        self._note_heartbeat(ctx.source, now)
        self.state.absorb_piggyback(args.get("updates", []), now)
        # Refutation path (SWIM's incarnation mechanism): the prober
        # tells us what it believes about *us*; if it thinks we are
        # suspect or dead, we outbid that belief with a fresh incarnation
        # and our ack carries it back -- this is also what re-merges a
        # healed partition (each side believed the other dead).
        your_status = args.get("target_status")
        if your_status in ("suspect", "dead") and not self._left:
            claimed = int(args.get("target_incarnation", 0))
            if claimed >= self.state.incarnation:
                self.state.incarnation = claimed + 1
                self.state._members[self.state.self_address].incarnation = (
                    self.state.incarnation
                )
                self.state._enqueue(
                    Update("alive", self.state.self_address, self.state.incarnation)
                )
        return {
            "updates": self.state.collect_piggyback(),
            "incarnation": self.state.incarnation,
        }
        yield  # pragma: no cover - handler is synchronous

    def _on_ping_req(self, ctx: RequestContext) -> Generator:
        """Indirect probe: ping `target` on behalf of the requester."""
        now = self.margo.kernel.now
        args = ctx.args
        self.state.absorb_piggyback(args.get("updates", []), now)
        target = args["target"]
        try:
            reply = yield from self.margo.forward(
                target,
                f"ssg_{self.group_name}_ping",
                {"updates": self.state.collect_piggyback()},
                provider_id=self.provider_id,
                timeout=self.swim_config.ping_timeout,
            )
            self.state.absorb_piggyback(reply.get("updates", []), self.margo.kernel.now)
            ack = True
        except RpcError:
            ack = False
        return {"ack": ack, "updates": self.state.collect_piggyback()}

    def _on_join(self, ctx: RequestContext) -> Generator:
        address = ctx.args["address"]
        self.state.local_join(address)
        return self.state.snapshot()
        yield  # pragma: no cover - handler is synchronous

    def _on_get_view(self, ctx: RequestContext) -> Generator:
        """Observer support: client applications retrieve the current
        view without being members (paper section 6: 'allows this view
        to be retrieved by client applications')."""
        view = self.view
        return {"members": list(view.members), "hash": view.hash, "epoch": view.epoch}
        yield  # pragma: no cover - handler is synchronous

    # ------------------------------------------------------------------
    # the protocol loop
    # ------------------------------------------------------------------
    def _protocol_loop(self) -> Generator:
        config = self.swim_config
        while self._running and not self.margo.finalized:
            yield UltSleep(config.period)
            if not self._running or self.margo.finalized:
                return
            now = self.margo.kernel.now
            # 1. confirm overdue suspects as dead
            for address in self.state.suspects_older_than(now - config.suspicion_timeout):
                self.state.local_confirm_dead(address)
            # 2. probe one random member
            candidates = self.state.ping_candidates()
            if candidates:
                target = self._rng.choice(candidates)
                acked = yield from self._probe(target)
                if not acked:
                    self.state.local_suspect(target, self.margo.kernel.now)
            # 3. occasionally probe a confirmed-dead member: if it acks
            # (restart, healed partition), its incarnation refutation
            # resurrects it (rejoin path).
            dead = self.state.dead_members()
            if dead and self._rng.random() < config.resurrect_probe_prob:
                try:
                    yield from self._send_ping(self._rng.choice(dead))
                except RpcError:
                    pass  # still dead

    def _probe(self, target: str) -> Generator:
        """Direct ping, then k indirect ping-reqs (the SWIM probe)."""
        try:
            yield from self._send_ping(target)
            return True
        except RpcError:
            pass
        config = self.swim_config
        helpers = [
            a for a in self.state.ping_candidates() if a != target
        ]
        self._rng.shuffle(helpers)
        for helper in helpers[: config.ping_req_k]:
            self._ping_reqs_sent.inc()
            try:
                reply = yield from self.margo.forward(
                    helper,
                    f"ssg_{self.group_name}_ping_req",
                    {"target": target, "updates": self.state.collect_piggyback()},
                    provider_id=self.provider_id,
                    timeout=config.ping_timeout * 2.5,
                )
                self.state.absorb_piggyback(reply.get("updates", []), self.margo.kernel.now)
                if reply.get("ack"):
                    return True
            except RpcError:
                continue
        return False

    def _send_ping(self, target: str) -> Generator:
        self._pings_sent.inc()
        status = self.state.status_of(target)
        record = self.state._members.get(target)
        reply = yield from self.margo.forward(
            target,
            f"ssg_{self.group_name}_ping",
            {
                "updates": self.state.collect_piggyback(),
                "target_status": status.value if status is not None else None,
                "target_incarnation": record.incarnation if record else 0,
            },
            provider_id=self.provider_id,
            timeout=self.swim_config.ping_timeout,
        )
        self.state.absorb_piggyback(reply.get("updates", []), self.margo.kernel.now)
        self._note_heartbeat(target, self.margo.kernel.now)
        # If we believed the target suspect/dead, its ack (with a bumped
        # incarnation) resurrects it.
        if status is not None and status.value in ("suspect", "dead"):
            self.state.apply(
                Update("alive", target, int(reply.get("incarnation", 0))),
                self.margo.kernel.now,
            )
        return True

    # ------------------------------------------------------------------
    def _note_heartbeat(self, address: str, now: float) -> None:
        for callback in self.on_heartbeat:
            callback(address, now)

    def _on_state_change(self, kind: str, address: str) -> None:
        for callback in self.on_membership_event:
            callback(kind, address)
        if kind == "dead":
            # Track false positives: the "dead" member is actually alive.
            try:
                process = self.margo.network.lookup(address)
                if process.alive:
                    self._false_suspicions.inc()
            except Exception:
                pass
            for callback in self.on_member_died:
                callback(address)
        view = self.view
        for callback in self.on_view_change:
            callback(view)
