"""SSG: scalable service groups -- dynamic membership + SWIM fault detection."""

from .bootstrap import create_group, join_group
from .group import DEFAULT_SSG_PROVIDER_ID, SSGError, SSGGroup
from .groupfile import observer_from_group_file, read_group_file, write_group_file
from .observer import SSGObserver
from .swim import MemberStatus, SwimConfig, SwimState, Update
from .view import GroupView, view_hash_of

__all__ = [
    "SSGGroup",
    "SSGError",
    "SSGObserver",
    "write_group_file",
    "read_group_file",
    "observer_from_group_file",
    "DEFAULT_SSG_PROVIDER_ID",
    "create_group",
    "join_group",
    "GroupView",
    "view_hash_of",
    "SwimConfig",
    "SwimState",
    "MemberStatus",
    "Update",
]
