"""Group files: persisted bootstrap information.

Real SSG serializes a group's membership to a *group file* that client
applications open to find the service (the file-based variant of the
paper's "list of initial addresses" bootstrap).  Here the file lives in
a store (node-local or PFS); writing it after membership changes keeps
late-coming clients bootable even if the original members are gone.
"""

from __future__ import annotations

import json
from typing import Any, Generator, Optional

from ..margo.runtime import MargoInstance
from .group import DEFAULT_SSG_PROVIDER_ID, SSGError, SSGGroup
from .observer import SSGObserver
from .view import GroupView

__all__ = ["write_group_file", "read_group_file", "observer_from_group_file"]

FORMAT_VERSION = 1


def write_group_file(store: Any, path: str, group: SSGGroup) -> None:
    """Serialize ``group``'s current view to ``store`` (LocalStore or
    ParallelFileSystem -- anything with ``write(path, bytes)``)."""
    view = group.view
    doc = {
        "version": FORMAT_VERSION,
        "group_name": group.group_name,
        "provider_id": group.provider_id,
        "members": list(view.members),
        "epoch": view.epoch,
        "hash": view.hash,
    }
    store.write(path, json.dumps(doc, sort_keys=True).encode())


def read_group_file(store: Any, path: str) -> dict[str, Any]:
    """Parse a group file; raises :class:`SSGError` on malformed input."""
    try:
        doc = json.loads(store.read(path).decode())
    except Exception as err:
        raise SSGError(f"unreadable group file {path!r}: {err}") from err
    if doc.get("version") != FORMAT_VERSION:
        raise SSGError(f"unsupported group file version {doc.get('version')!r}")
    missing = {"group_name", "provider_id", "members"} - set(doc)
    if missing:
        raise SSGError(f"group file {path!r} missing fields {sorted(missing)}")
    if not doc["members"]:
        raise SSGError(f"group file {path!r} lists no members")
    return doc


def observer_from_group_file(
    margo: MargoInstance, store: Any, path: str, rpc_timeout: float = 1.0
) -> SSGObserver:
    """Bootstrap a client-side observer from a group file."""
    doc = read_group_file(store, path)
    return SSGObserver(
        margo,
        doc["group_name"],
        doc["members"],
        provider_id=doc["provider_id"],
        rpc_timeout=rpc_timeout,
    )
