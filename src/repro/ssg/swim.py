"""SWIM protocol state: member table, updates, dissemination buffer.

Implements the state-machine half of SWIM (Das et al. [27]; adapted for
HPC storage by Snyder et al. [28]): incarnation numbers, the
alive/suspect/dead override rules, and gossip piggybacking with a
log-bounded retransmit budget.  The network half (pings, ping-reqs,
timers) lives in :mod:`repro.ssg.group`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

__all__ = ["SwimConfig", "MemberStatus", "Update", "SwimState"]


class MemberStatus(enum.Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass(frozen=True)
class SwimConfig:
    """Protocol timing/fanout parameters."""

    #: Protocol period T: one ping round per period.
    period: float = 0.5
    #: Direct-ping ack timeout (must be << period).
    ping_timeout: float = 0.15
    #: Number of indirect ping-req helpers (k).
    ping_req_k: int = 3
    #: How long a suspect may linger before confirmation as dead.
    suspicion_timeout: float = 2.0
    #: Gossip retransmit multiplier: each update is piggybacked up to
    #: ceil(gossip_mult * log2(n + 1)) times.
    gossip_mult: float = 3.0
    #: Max piggybacked updates per message.
    max_piggyback: int = 8
    #: Probability per protocol round of probing a confirmed-dead member
    #: (rejoin/partition-heal path; 0 disables resurrection probes).
    resurrect_probe_prob: float = 0.15

    def __post_init__(self) -> None:
        if self.ping_timeout >= self.period:
            raise ValueError("ping_timeout must be smaller than the protocol period")
        if self.suspicion_timeout <= 0 or self.period <= 0:
            raise ValueError("timings must be positive")
        if self.ping_req_k < 0:
            raise ValueError("ping_req_k must be >= 0")


@dataclass
class Update:
    """A gossiped membership event."""

    kind: str  # "alive" | "suspect" | "dead"
    address: str
    incarnation: int

    def key(self) -> tuple[str, str, int]:
        return (self.kind, self.address, self.incarnation)

    def to_wire(self) -> dict:
        return {"kind": self.kind, "address": self.address, "incarnation": self.incarnation}

    @classmethod
    def from_wire(cls, doc: dict) -> "Update":
        return cls(kind=doc["kind"], address=doc["address"], incarnation=doc["incarnation"])


@dataclass
class _MemberRecord:
    status: MemberStatus
    incarnation: int
    suspect_since: Optional[float] = None


class SwimState:
    """Membership table + dissemination buffer for one group member."""

    def __init__(self, self_address: str, config: SwimConfig) -> None:
        self.self_address = self_address
        self.config = config
        self.incarnation = 0
        self._members: dict[str, _MemberRecord] = {
            self_address: _MemberRecord(MemberStatus.ALIVE, 0)
        }
        # Dissemination buffer: update-key -> [update, remaining sends].
        self._buffer: dict[tuple, list] = {}
        self.epoch = 0
        #: set by the group layer; called with (kind, address).
        self.on_change: Optional[Callable[[str, str], None]] = None

    # ------------------------------------------------------------------
    # membership queries
    # ------------------------------------------------------------------
    def alive_members(self) -> list[str]:
        return sorted(
            a for a, r in self._members.items() if r.status == MemberStatus.ALIVE
        )

    def view_members(self) -> list[str]:
        """Alive + suspected (suspects remain in the view until confirmed)."""
        return sorted(
            a
            for a, r in self._members.items()
            if r.status in (MemberStatus.ALIVE, MemberStatus.SUSPECT)
        )

    def ping_candidates(self) -> list[str]:
        return [a for a in self.view_members() if a != self.self_address]

    def dead_members(self) -> list[str]:
        return sorted(
            a for a, r in self._members.items() if r.status == MemberStatus.DEAD
        )

    def status_of(self, address: str) -> Optional[MemberStatus]:
        record = self._members.get(address)
        return record.status if record else None

    def suspects_older_than(self, deadline: float) -> list[str]:
        return [
            address
            for address, record in self._members.items()
            if record.status == MemberStatus.SUSPECT
            and record.suspect_since is not None
            and record.suspect_since <= deadline
        ]

    def snapshot(self) -> list[dict]:
        """Full table, for join responses."""
        return [
            {"address": a, "incarnation": r.incarnation, "status": r.status.value}
            for a, r in sorted(self._members.items())
            if r.status != MemberStatus.DEAD
        ]

    def load_snapshot(self, rows: Iterable[dict]) -> None:
        for row in rows:
            if row["address"] == self.self_address:
                continue
            self._members.setdefault(
                row["address"],
                _MemberRecord(MemberStatus(row["status"]), row["incarnation"]),
            )
        self.epoch += 1

    # ------------------------------------------------------------------
    # local events (from the failure detector / API)
    # ------------------------------------------------------------------
    def local_suspect(self, address: str, now: float) -> None:
        record = self._members.get(address)
        if record is None or record.status != MemberStatus.ALIVE:
            return
        self._transition(address, MemberStatus.SUSPECT, record.incarnation, now)
        self._enqueue(Update("suspect", address, record.incarnation))

    def local_confirm_dead(self, address: str) -> None:
        record = self._members.get(address)
        if record is None or record.status == MemberStatus.DEAD:
            return
        self._transition(address, MemberStatus.DEAD, record.incarnation, None)
        self._enqueue(Update("dead", address, record.incarnation))

    def local_join(self, address: str, incarnation: int = 0) -> None:
        self.apply(Update("alive", address, incarnation), now=0.0)

    def local_leave(self) -> Update:
        """Voluntary departure: announce self as dead at current inc."""
        update = Update("dead", self.self_address, self.incarnation)
        self._enqueue(update)
        return update

    # ------------------------------------------------------------------
    # applying gossip (the SWIM override rules)
    # ------------------------------------------------------------------
    def apply(self, update: Update, now: float) -> bool:
        """Apply one gossiped update; returns True if state changed."""
        if update.address == self.self_address:
            return self._apply_about_self(update)
        record = self._members.get(update.address)
        kind, inc = update.kind, update.incarnation
        if kind == "alive":
            if record is None or record.status == MemberStatus.DEAD:
                if record is not None and inc <= record.incarnation:
                    return False  # stale alive about a confirmed-dead member
                self._members[update.address] = _MemberRecord(MemberStatus.ALIVE, inc)
                self._bump_epoch("alive", update.address)
                self._enqueue(update)
                return True
            if inc > record.incarnation:
                # alive overrides suspect only with strictly higher inc
                changed = record.status != MemberStatus.ALIVE
                record.status = MemberStatus.ALIVE
                record.incarnation = inc
                record.suspect_since = None
                if changed:
                    self._bump_epoch("alive", update.address)
                self._enqueue(update)
                return changed
            return False
        if kind == "suspect":
            if record is None:
                self._members[update.address] = _MemberRecord(
                    MemberStatus.SUSPECT, inc, suspect_since=now
                )
                self._bump_epoch("suspect", update.address)
                self._enqueue(update)
                return True
            if record.status == MemberStatus.DEAD:
                return False
            if inc >= record.incarnation and record.status == MemberStatus.ALIVE:
                self._transition(update.address, MemberStatus.SUSPECT, inc, now)
                self._enqueue(update)
                return True
            return False
        if kind == "dead":
            if record is None or record.status != MemberStatus.DEAD:
                self._transition(update.address, MemberStatus.DEAD, inc, None)
                self._enqueue(update)
                return True
            return False
        raise ValueError(f"unknown update kind {kind!r}")

    def _apply_about_self(self, update: Update) -> bool:
        """Refute suspicion/death rumours about ourselves (SWIM's
        incarnation mechanism)."""
        if update.kind in ("suspect", "dead") and update.incarnation >= self.incarnation:
            self.incarnation = update.incarnation + 1
            self._members[self.self_address].incarnation = self.incarnation
            self._enqueue(Update("alive", self.self_address, self.incarnation))
            return True
        return False

    # ------------------------------------------------------------------
    # dissemination buffer
    # ------------------------------------------------------------------
    def _retransmit_budget(self) -> int:
        n = max(1, len(self.view_members()))
        return max(1, math.ceil(self.config.gossip_mult * math.log2(n + 1)))

    def _enqueue(self, update: Update) -> None:
        self._buffer[update.key()] = [update, self._retransmit_budget()]

    def collect_piggyback(self) -> list[dict]:
        """Pick updates to piggyback on an outgoing message, preferring
        the least-disseminated; decrement their budgets."""
        entries = sorted(self._buffer.values(), key=lambda e: -e[1])
        out: list[dict] = []
        for entry in entries[: self.config.max_piggyback]:
            out.append(entry[0].to_wire())
            entry[1] -= 1
        self._buffer = {
            k: e for k, e in self._buffer.items() if e[1] > 0
        }
        return out

    def absorb_piggyback(self, updates: Iterable[dict], now: float) -> None:
        for doc in updates or []:
            self.apply(Update.from_wire(doc), now)

    # ------------------------------------------------------------------
    def _transition(
        self,
        address: str,
        status: MemberStatus,
        incarnation: int,
        now: Optional[float],
    ) -> None:
        record = self._members.get(address)
        if record is None:
            record = _MemberRecord(status, incarnation)
            self._members[address] = record
        record.status = status
        record.incarnation = max(record.incarnation, incarnation)
        record.suspect_since = now if status == MemberStatus.SUSPECT else None
        self._bump_epoch(status.value, address)

    def _bump_epoch(self, kind: str, address: str) -> None:
        self.epoch += 1
        if self.on_change is not None:
            self.on_change(kind, address)
