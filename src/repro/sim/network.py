"""Simulated cluster topology and network.

Models the pieces of an HPC machine that the Mochi stack cares about:

* :class:`Node` -- a host with node-local storage attached later by
  :mod:`repro.storage`.
* :class:`Process` -- an OS process on a node; the unit that runs a Margo
  instance and that failures kill.
* :class:`Network` -- point-to-point message delivery with a per-transport
  cost model (:class:`NetworkConfig`), partitions, and probabilistic loss.

Transport selection mirrors Margo/Mercury behaviour described in the
paper (section 3.2): an RPC between a process and itself is a function
call, between processes on one node it uses shared memory, and across
nodes it uses the high-performance fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .kernel import SimKernel
from .random import RandomSource

__all__ = [
    "Transport",
    "LinkModel",
    "NetworkConfig",
    "Node",
    "Process",
    "Network",
    "AddressError",
]


class AddressError(ValueError):
    """Unknown or malformed process address."""


class Transport:
    """Transport kinds, ordered from cheapest to most expensive."""

    SELF = "self"
    SM = "sm"  # shared memory, same node
    RDMA = "rdma"  # one-sided fabric transfer (bulk path)
    FABRIC = "fabric"  # two-sided fabric messaging (RPC path)
    TCP = "tcp"


@dataclass(frozen=True)
class LinkModel:
    """Latency/bandwidth pair; transfer time is ``latency + size/bandwidth``."""

    latency: float  # seconds per message
    bandwidth: float  # bytes per second

    def time(self, size: int) -> float:
        if size < 0:
            raise ValueError(f"negative message size: {size}")
        return self.latency + (size / self.bandwidth if size else 0.0)


@dataclass(frozen=True)
class NetworkConfig:
    """Cost model for all transports.

    Defaults approximate a Slingshot/InfiniBand-class HPC fabric with
    node-local shared memory, and a slower TCP path for comparison runs.
    """

    self_link: LinkModel = LinkModel(latency=50e-9, bandwidth=50e9)
    sm: LinkModel = LinkModel(latency=400e-9, bandwidth=12e9)
    fabric: LinkModel = LinkModel(latency=2.0e-6, bandwidth=10e9)
    rdma: LinkModel = LinkModel(latency=2.5e-6, bandwidth=12e9)
    tcp: LinkModel = LinkModel(latency=25e-6, bandwidth=1.2e9)
    # Per-RPC software overheads charged at each endpoint.
    send_overhead: float = 300e-9
    recv_overhead: float = 300e-9

    def link(self, transport: str) -> LinkModel:
        try:
            return {
                Transport.SELF: self.self_link,
                Transport.SM: self.sm,
                Transport.FABRIC: self.fabric,
                Transport.RDMA: self.rdma,
                Transport.TCP: self.tcp,
            }[transport]
        except KeyError as err:
            raise AddressError(f"unknown transport {transport!r}") from err


class Node:
    """A simulated host.  Storage devices attach via ``attach(name, obj)``."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.alive = True
        self.attachments: dict[str, Any] = {}

    def attach(self, name: str, obj: Any) -> None:
        self.attachments[name] = obj

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name}>"


class Process:
    """A simulated OS process.

    The Margo instance for the process registers itself as the message
    handler via :attr:`on_message`.  ``on_killed`` callbacks let upper
    layers (Margo, Bedrock, SSG) tear down state when a fault kills the
    process.
    """

    def __init__(self, network: "Network", name: str, node: Node) -> None:
        self.network = network
        self.name = name
        self.node = node
        self.alive = True
        self.address = f"na+ofi://{node.name}/{name}"
        self.on_message: Optional[Callable[[Any], None]] = None
        self.on_killed: list[Callable[[], None]] = []

    def deliver(self, payload: Any) -> None:
        if not self.alive:
            return
        if self.on_message is None:
            raise RuntimeError(f"process {self.name} has no message handler")
        self.on_message(payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "dead"
        return f"<Process {self.name}@{self.node.name} {state}>"


class Network:
    """Message fabric connecting every :class:`Process` in the simulation."""

    def __init__(
        self,
        kernel: SimKernel,
        config: Optional[NetworkConfig] = None,
        randomness: Optional[RandomSource] = None,
    ) -> None:
        self.kernel = kernel
        self.config = config or NetworkConfig()
        self.randomness = randomness or RandomSource(0)
        self._loss_rng = self.randomness.stream("network.loss")
        self.nodes: dict[str, Node] = {}
        self.processes: dict[str, Process] = {}
        self._partitions: set[frozenset[str]] = set()
        self.loss_probability = 0.0
        # Counters used by benchmarks and tests.
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(name)
        self.nodes[name] = node
        return node

    def add_process(self, name: str, node: Node | str) -> Process:
        if isinstance(node, str):
            node = self.nodes[node]
        if name in (p.name for p in self.processes.values()):
            raise ValueError(f"duplicate process name {name!r}")
        proc = Process(self, name, node)
        self.processes[proc.address] = proc
        return proc

    def lookup(self, address: str) -> Process:
        try:
            return self.processes[address]
        except KeyError as err:
            raise AddressError(f"unknown address {address!r}") from err

    def remove_process(self, proc: Process) -> None:
        """Forget a dead process entirely (permanent failure)."""
        self.processes.pop(proc.address, None)

    # ------------------------------------------------------------------
    # transport model
    # ------------------------------------------------------------------
    def transport_between(self, src: Process, dst: Process) -> str:
        if src is dst:
            return Transport.SELF
        if src.node is dst.node:
            return Transport.SM
        return Transport.FABRIC

    def transfer_time(self, src: Process, dst: Process, size: int, bulk: bool = False) -> float:
        """Pure cost-model query (no message is sent)."""
        transport = self.transport_between(src, dst)
        if bulk and transport == Transport.FABRIC:
            transport = Transport.RDMA
        return self.config.link(transport).time(size)

    # ------------------------------------------------------------------
    # partitions / loss
    # ------------------------------------------------------------------
    def partition(self, a: Node | str, b: Node | str) -> None:
        self._partitions.add(self._edge(a, b))

    def heal(self, a: Node | str, b: Node | str) -> None:
        self._partitions.discard(self._edge(a, b))

    def heal_all(self) -> None:
        self._partitions.clear()

    def is_partitioned(self, a: Node, b: Node) -> bool:
        return frozenset((a.name, b.name)) in self._partitions

    def _edge(self, a: Node | str, b: Node | str) -> frozenset[str]:
        name_a = a if isinstance(a, str) else a.name
        name_b = b if isinstance(b, str) else b.name
        return frozenset((name_a, name_b))

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    # mochi-lint: hotpath
    def send(self, src: Process, dst_address: str, payload: Any, size: int) -> bool:
        """Fire-and-forget message send.

        Returns ``True`` if the message was put on the wire (it may still
        be dropped by loss, partition, or receiver death before delivery)
        and ``False`` when the destination is not even known.
        """
        self.messages_sent += 1
        self.bytes_sent += size
        dst = self.processes.get(dst_address)
        if dst is None or not src.alive:
            self.messages_dropped += 1
            return False
        if src.node is not dst.node and self.is_partitioned(src.node, dst.node):
            self.messages_dropped += 1
            return True
        if self.loss_probability > 0 and src is not dst:
            if self._loss_rng.random() < self.loss_probability:
                self.messages_dropped += 1
                return True
        delay = self.transfer_time(src, dst, size) + self.config.send_overhead
        self.kernel.post(delay, dst.deliver, payload)
        return True
