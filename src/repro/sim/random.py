"""Deterministic, named random streams.

Every stochastic decision in the simulator draws from a stream obtained
by name from a single :class:`RandomSource`.  Streams are independent of
each other and of the order in which unrelated streams are consumed, so
adding randomness to one subsystem never perturbs another -- a property
the reproducibility of the benchmark suite depends on.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RandomSource"]


class RandomSource:
    """A root seed that hands out named, independent ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The same (seed, name) pair always yields an identically seeded
        generator, regardless of creation order.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomSource":
        """Derive a child source, e.g. one per simulated process."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RandomSource(int.from_bytes(digest[:8], "big"))
