"""Deterministic discrete-event simulation kernel.

Everything in :mod:`repro` that needs a notion of time or concurrency runs
on this kernel.  The kernel maintains a priority structure of timestamped
events and a set of *tasks* -- cooperative coroutines implemented as
Python generators.  A task advances by yielding :class:`Sleep` or
:class:`WaitEvent` commands; the kernel resumes it when the requested
condition is met.

Determinism is a first-class goal: for equal seeds and equal call
sequences, two runs produce bit-identical schedules.  Ties in the event
queue are broken by scheduling order (a monotonically increasing
sequence), never by object identity or hashing.

This module is the hottest code in the repository -- every RPC, ULT
slice, and timer in every component turns into events here -- so the
implementation favors the wall-clock fast path:

* the default event structure is a **calendar queue / bucketed timer
  wheel** (P1): a dict keyed by exact deadline maps to a flat
  ``[callback, arg, callback, arg, ...]`` slot list, a small min-heap
  orders only the *distinct* deadlines, and deadlines beyond the wheel
  horizon overflow to a far-list that migrates in bulk when the wheel
  drains toward it.  Timestamps cluster at batch boundaries (the P0
  same-timestamp batch drain proved it), so pushing into an existing
  bucket is O(1) -- two list appends -- and the heap is touched once per
  distinct time, not once per event.  Within a bucket, FIFO append
  order *is* ``seq`` order, so the schedule is bit-identical to the
  binary-heap backend (kept as ``SIM_KERNEL=heap``);
* :meth:`SimKernel.post` is the no-handle fast path used by the task
  resume machinery: no :class:`Timer` object, no tuple, no closure --
  the callback and its argument go straight into the flat slot list
  (drained bucket lists are recycled through a free-list, so the steady
  state allocates nothing per event);
* timers carry a callable plus an optional argument slot, so the task
  resume paths schedule *bound methods* instead of allocating a closure
  per event;
* ``run(until_tasks=...)`` detects completion through a shrinking set of
  watched tasks (O(1) per event) instead of scanning every target after
  every event;
* cancelled timers are compacted out once they outnumber half the queue,
  so mass cancellation (e.g. per-RPC timeout timers) cannot hold memory
  hostage.  Compaction preserves each entry's position in its bucket
  (wheel) or its ``(deadline, seq)`` key (heap), so event order is
  bit-identical with or without it.

See DESIGN.md §9 for the wheel layout and the determinism argument.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimKernel",
    "Task",
    "Timer",
    "Sleep",
    "WaitEvent",
    "SimEvent",
    "SimulationError",
    "DeadlockError",
    "KERNEL_BACKENDS",
]


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised when ``run()`` is asked to finish work that can never finish."""


@dataclass(frozen=True)
class Sleep:
    """Command: suspend the yielding task for ``duration`` simulated seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative sleep duration: {self.duration}")


@dataclass(frozen=True)
class WaitEvent:
    """Command: suspend the yielding task until ``event`` is set.

    The task is resumed with the event's payload.  If ``timeout`` is not
    ``None`` and the event is not set within that many simulated seconds,
    the task is resumed with :data:`TIMED_OUT` instead.  Both resumption
    paths -- wake and timeout -- deliver on a *fresh* event-loop turn, so
    the relative order of same-timestamp callbacks never depends on which
    path fired.
    """

    event: "SimEvent"
    timeout: Optional[float] = None


class _TimedOut:
    """Sentinel resumption value for a timed-out :class:`WaitEvent`."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "TIMED_OUT"


TIMED_OUT = _TimedOut()

#: Sentinel for "timer fires ``fn()`` with no argument".
_NO_ARG = object()

#: Slot-array tag: the paired slot holds a cancellable :class:`Timer`
#: (``schedule``/``schedule_at``), not a bare ``post`` callback.
_IS_TIMER = object()

#: Compaction trigger: cancelled entries must exceed this count *and*
#: half the queue before the structure is rebuilt without them.
_COMPACT_MIN_CANCELLED = 64

#: Initial wheel horizon width in simulated seconds.  Deadlines past the
#: horizon overflow to the far-list; the span doubles lazily when
#: migrations keep coming up near-empty (the wheel was too narrow for
#: the workload's deadline spread).
_WHEEL_SPAN = 1e-3

#: A near-empty migration (fewer than this many entries moved while more
#: remain far) doubles the span.
_RESIZE_MIN_MOVED = 8

#: Recycled bucket lists kept for reuse (steady state: zero list churn).
_FREELIST_MAX = 64

KERNEL_BACKENDS = ("wheel", "heap")

_far_deadline = itemgetter(0)

#: The mochi-race hooks module, injected by ``_set_race_hooks`` when the
#: race detector enables.  ``None`` keeps every gate below a single
#: module-global load; the hot paths (``schedule``/``post``) are
#: method-swapped instead of gated, so they pay nothing while disabled.
_RACE: Any = None


class SimEvent:
    """A one-shot, level-triggered event usable from kernel tasks.

    ``set(payload)`` wakes every current and future waiter with
    ``payload``.  Events may be reused after :meth:`clear`, which is how
    mailbox-style "work available" signals are built.
    """

    __slots__ = ("kernel", "name", "_set", "_payload", "_waiters")

    def __init__(self, kernel: "SimKernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._set = False
        self._payload: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def is_set(self) -> bool:
        return self._set

    @property
    def payload(self) -> Any:
        return self._payload

    def set(self, payload: Any = None) -> None:
        """Set the event and wake all waiters (idempotent while set).

        No race-layer publication here: a ``SimEvent``'s waiters are
        plain callbacks on sim-layer tasks, never race contexts --
        ULT-visible happens-before flows through ``UltEvent.set`` and
        the pool-push edge, so publishing from every xstream wakeup
        signal would be pure detector overhead with no consumer.
        """
        if self._set:
            return
        self._set = True
        self._payload = payload
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake(payload)

    def clear(self) -> None:
        """Reset the event so it can be waited on (and set) again."""
        self._set = False
        self._payload = None

    def _add_waiter(self, wake: Callable[[Any], None]) -> None:
        self._waiters.append(wake)

    def _remove_waiter(self, wake: Callable[[Any], None]) -> None:
        try:
            self._waiters.remove(wake)
        except ValueError:
            pass


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    The callback is ``fn()`` when scheduled without an argument and
    ``fn(arg)`` otherwise -- the argument slot is what lets the task
    machinery schedule bound methods instead of per-event closures.
    Internal resume paths that never cancel use :meth:`SimKernel.post`
    and allocate no handle at all.
    """

    __slots__ = ("deadline", "_fn", "_arg", "_cancelled", "_kernel")

    def __init__(
        self,
        deadline: float,
        fn: Callable[..., None],
        arg: Any = _NO_ARG,
        kernel: Optional["SimKernel"] = None,
    ) -> None:
        self.deadline = deadline
        self._fn = fn
        self._arg = arg
        self._cancelled = False
        self._kernel = kernel

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        # ``_kernel`` is cleared when the timer leaves the queue, so
        # cancelling an already-fired timer does not inflate the
        # cancelled-entry count that drives compaction.
        kernel = self._kernel
        if kernel is not None:
            kernel._note_cancelled()


TaskGen = Generator[Any, Any, Any]


class _EventWaiter:
    """Per-``WaitEvent`` state: replaces the closure pair the wait path
    used to allocate with one slotted object holding two bound methods."""

    __slots__ = ("task", "event", "timer", "resumed")

    def __init__(self, task: "Task", event: "SimEvent") -> None:
        self.task = task
        self.event = event
        self.timer: Optional[Timer] = None
        self.resumed = False

    def wake(self, payload: Any) -> None:
        if self.resumed:
            return
        self.resumed = True
        if self.timer is not None:
            self.timer.cancel()
        task = self.task
        task.kernel.post(0.0, task._resume, payload)

    def on_timeout(self) -> None:
        if self.resumed:
            return
        self.resumed = True
        self.event._remove_waiter(self.wake)
        # Resume on a fresh event-loop turn, symmetric with wake(): the
        # task must never advance from inside the timer that timed it out.
        task = self.task
        task.kernel.post(0.0, task._resume, TIMED_OUT)


class Task:
    """A kernel coroutine.

    Wraps a generator that yields :class:`Sleep` / :class:`WaitEvent`
    commands.  On normal return the task's :attr:`done_event` is set with
    the generator's return value; on an unhandled exception the error is
    recorded in :attr:`error` and re-raised by the kernel unless the task
    was marked ``daemon``.
    """

    __slots__ = (
        "kernel",
        "gen",
        "name",
        "daemon",
        "done_event",
        "error",
        "result",
        "_finished",
        "_resume",
    )

    def __init__(self, kernel: "SimKernel", gen: TaskGen, name: str, daemon: bool) -> None:
        self.kernel = kernel
        self.gen = gen
        self.name = name
        self.daemon = daemon
        self.done_event = SimEvent(kernel, name=f"done:{name}")
        self.error: Optional[BaseException] = None
        self.result: Any = None
        self._finished = False
        # Bound once: the resume paths below would otherwise allocate a
        # fresh bound-method object per event just to pass ``self._step``.
        self._resume = self._step

    @property
    def finished(self) -> bool:
        return self._finished

    # mochi-lint: hotpath
    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        """Advance the generator one command and act on what it yields."""
        kernel = self.kernel
        try:
            if exc is not None:
                cmd = self.gen.throw(exc)
            else:
                cmd = self.gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - task failure path
            self.error = err
            self._finish(result=None)
            # Daemon failures are normally tolerated (service loops dying
            # at shutdown), but assertion failures -- including the
            # runtime sanitizer's SanitizerError -- must always surface.
            if not self.daemon or isinstance(err, AssertionError):
                kernel._task_failures.append(self)
            return
        if type(cmd) is Sleep:
            kernel.post(cmd.duration, self._resume)
        elif type(cmd) is WaitEvent:
            self._wait(cmd)
        else:
            self._dispatch_slow(cmd)

    def _dispatch_slow(self, cmd: Any) -> None:
        # Subclasses of Sleep/WaitEvent still work; anything else errors.
        if isinstance(cmd, Sleep):
            self.kernel.post(cmd.duration, self._resume)
        elif isinstance(cmd, WaitEvent):
            self._wait(cmd)
        else:
            self._step(
                exc=SimulationError(
                    f"task {self.name!r} yielded unsupported command {cmd!r}; "
                    "kernel tasks may only yield Sleep or WaitEvent"
                )
            )

    def _wait(self, cmd: WaitEvent) -> None:
        event = cmd.event
        if event.is_set:
            if _RACE is not None:
                _RACE.note_event_join(event)
            # Resume on a fresh event-loop turn to keep scheduling fair
            # and re-entrancy-free.
            self.kernel.post(0.0, self._resume, event.payload)
            return
        waiter = _EventWaiter(self, event)
        event._add_waiter(waiter.wake)
        if cmd.timeout is not None:
            waiter.timer = self.kernel.schedule(cmd.timeout, waiter.on_timeout)

    def _finish(self, result: Any) -> None:
        self._finished = True
        self.result = result
        kernel = self.kernel
        kernel._live_tasks.discard(self)
        watch = kernel._watch
        if watch is not None:
            watch.discard(self)
        self.done_event.set(result)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self._finished else "running"
        return f"<Task {self.name!r} {state}>"


class SimKernel:
    """The discrete-event scheduler.

    Typical use::

        kernel = SimKernel()
        task = kernel.spawn(my_generator(), name="driver")
        kernel.run()
        assert task.finished

    ``backend`` selects the event structure: ``"wheel"`` (default, the
    P1 calendar queue) or ``"heap"`` (the P0 binary heap, kept as a
    cross-check -- both produce bit-identical schedules).  The default
    can also be set process-wide with the ``SIM_KERNEL`` environment
    variable.
    """

    def __init__(self, backend: Optional[str] = None) -> None:
        if backend is None:
            backend = os.environ.get("SIM_KERNEL", "wheel").strip() or "wheel"
        if backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {backend!r} (expected one of {KERNEL_BACKENDS})"
            )
        self.backend = backend
        self._wheel = backend == "wheel"
        self._now = 0.0
        self._seq = 0
        self._live_tasks: set[Task] = set()
        self._task_failures: list[Task] = []
        self._running = False
        #: Cancelled timers still sitting in the queue (compaction trigger).
        self._cancelled_count = 0
        #: Unfinished tasks the current ``run(until_tasks=...)`` watches;
        #: tasks remove themselves on finish, making completion detection
        #: O(1) per event instead of a scan over all targets.
        self._watch: Optional[set[Task]] = None
        if self._wheel:
            #: deadline -> flat ``[obj, tag, obj, tag, ...]`` slot list.
            #: ``tag`` is ``_IS_TIMER`` (obj is a Timer), ``_NO_ARG``
            #: (call ``obj()``) or the argument (call ``obj(tag)``).
            self._buckets: dict[float, list] = {}
            #: Min-heap of the *distinct* deadlines present in _buckets.
            self._dl_heap: list[float] = []
            #: Overflow entries past the horizon: (deadline, obj, tag).
            self._far: list[tuple] = []
            self._span = _WHEEL_SPAN
            self._horizon = _WHEEL_SPAN
            #: Proactive-migration trigger (horizon minus half a span).
            self._mig_at = _WHEEL_SPAN * 0.5
            #: Live + cancelled entries across buckets and far-list.
            self._n_queued = 0
            self._free: list[list] = []
        else:
            #: (deadline, seq, obj, tag) entries; seq breaks all ties, so
            #: comparison never reaches the payload slots.
            self._queue: list[tuple] = []

    # ------------------------------------------------------------------
    # time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # mochi-lint: hotpath
    def post(self, delay: float, fn: Callable[..., None], arg: Any = _NO_ARG) -> None:
        """Run ``fn()`` -- or ``fn(arg)`` -- after ``delay`` simulated
        seconds, with no cancellation handle.

        This is the fast path the task/ULT resume machinery uses: it
        allocates no :class:`Timer`, no tuple (wheel backend), and no
        closure -- the callback and argument go straight into the flat
        slot list of the deadline's bucket.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        deadline = self._now + delay
        self._seq += 1
        if self._wheel:
            if deadline < self._horizon:
                bucket = self._buckets.get(deadline)
                if bucket is None:
                    free = self._free
                    bucket = free.pop() if free else []
                    self._buckets[deadline] = bucket
                    heapq.heappush(self._dl_heap, deadline)
                bucket.append(fn)
                bucket.append(arg)
            else:
                self._far.append((deadline, fn, arg))
            self._n_queued += 1
        else:
            heapq.heappush(self._queue, (deadline, self._seq, fn, arg))

    # mochi-lint: hotpath
    def schedule(self, delay: float, fn: Callable[..., None], arg: Any = _NO_ARG) -> Timer:
        """Run ``fn()`` -- or ``fn(arg)`` if ``arg`` is given -- after
        ``delay`` simulated seconds; return a cancellable handle."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        timer = Timer(self._now + delay, fn, arg, self)
        self._seq += 1
        if self._wheel:
            deadline = timer.deadline
            if deadline < self._horizon:
                bucket = self._buckets.get(deadline)
                if bucket is None:
                    free = self._free
                    bucket = free.pop() if free else []
                    self._buckets[deadline] = bucket
                    heapq.heappush(self._dl_heap, deadline)
                bucket.append(timer)
                bucket.append(_IS_TIMER)
            else:
                self._far.append((deadline, timer, _IS_TIMER))
            self._n_queued += 1
        else:
            heapq.heappush(self._queue, (timer.deadline, self._seq, timer, _IS_TIMER))
        return timer

    def schedule_at(self, deadline: float, fn: Callable[..., None], arg: Any = _NO_ARG) -> Timer:
        """Run ``fn()`` -- or ``fn(arg)`` if ``arg`` is given -- at the
        absolute simulated time ``deadline``; return a cancellable handle.

        Unlike :meth:`schedule`, the firing time does not depend on when
        the caller ran, which is what periodic samplers aligned to fixed
        window boundaries (``k * window``) need for deterministic,
        drift-free rollups.
        """
        if deadline < self._now:
            raise ValueError(
                f"deadline {deadline} is in the past (now={self._now})"
            )
        timer = Timer(deadline, fn, arg, self)
        self._seq += 1
        if self._wheel:
            if deadline < self._horizon:
                bucket = self._buckets.get(deadline)
                if bucket is None:
                    free = self._free
                    bucket = free.pop() if free else []
                    self._buckets[deadline] = bucket
                    heapq.heappush(self._dl_heap, deadline)
                bucket.append(timer)
                bucket.append(_IS_TIMER)
            else:
                self._far.append((deadline, timer, _IS_TIMER))
            self._n_queued += 1
        else:
            heapq.heappush(self._queue, (timer.deadline, self._seq, timer, _IS_TIMER))
        return timer

    def event(self, name: str = "") -> SimEvent:
        """Create a :class:`SimEvent` bound to this kernel."""
        return SimEvent(self, name=name)

    def queued(self) -> int:
        """Entries currently pending (live + not-yet-compacted cancelled).

        Backend-agnostic: tests and monitoring must not reach into the
        heap list or the wheel buckets directly.
        """
        if self._wheel:
            n = self._n_queued
            return n if n > 0 else 0
        return len(self._queue)

    # ------------------------------------------------------------------
    # cancelled-timer bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled_count += 1
        count = self._cancelled_count
        if count >= _COMPACT_MIN_CANCELLED and count * 2 > self.queued():
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild in place.

        Entries keep their relative order -- bucket FIFO position on the
        wheel, ``(deadline, seq)`` keys on the heap -- so the schedule of
        live timers is bit-identical with or without compaction.

        A batch currently being drained by ``run()`` is detached from the
        bucket dict, so compaction never touches it; its remaining
        cancelled entries are simply discounted as the drain reaches them
        (the count decrements clamp at zero for exactly this overlap).
        """
        if self._wheel:
            buckets = self._buckets
            remaining = 0
            for deadline in list(buckets):
                bucket = buckets[deadline]
                out = []
                i = 0
                n = len(bucket)
                while i < n:
                    obj = bucket[i]
                    tag = bucket[i + 1]
                    if tag is _IS_TIMER and obj._cancelled:
                        i += 2
                        continue
                    out.append(obj)
                    out.append(tag)
                    i += 2
                if out:
                    buckets[deadline] = out
                    remaining += len(out) // 2
                else:
                    # Stale deadlines linger in the heap; the run loop
                    # skips them when the bucket lookup misses.
                    del buckets[deadline]
                self._recycle(bucket)
            far = self._far
            if far:
                far[:] = [
                    e for e in far if not (e[2] is _IS_TIMER and e[1]._cancelled)
                ]
                remaining += len(far)
            self._n_queued = remaining
        else:
            queue = self._queue
            queue[:] = [
                e for e in queue if not (e[3] is _IS_TIMER and e[2]._cancelled)
            ]
            heapq.heapify(queue)
        self._cancelled_count = 0

    def _recycle(self, bucket: list) -> None:
        free = self._free
        if len(free) < _FREELIST_MAX:
            bucket.clear()
            free.append(bucket)

    def _advance_horizon(self) -> None:
        """Migrate far-list entries into the wheel and move the horizon.

        Called when the wheel drains toward (or past) the horizon.  The
        far-list is stable-sorted by deadline, so same-deadline entries
        keep their scheduling (seq) order; bucket/far entries can never
        share a deadline (bucket deadlines are strictly below every
        horizon the far entry was pushed under), so migration preserves
        the global schedule exactly.
        """
        far = self._far
        span = self._span
        if not far:
            self._horizon = self._now + span
            self._mig_at = self._horizon - span * 0.5
            return
        far.sort(key=_far_deadline)
        if self._dl_heap:
            new_horizon = self._now + span
        else:
            new_horizon = far[0][0] + span
        buckets = self._buckets
        dl_heap = self._dl_heap
        free = self._free
        moved = 0
        for entry in far:
            if entry[0] >= new_horizon:
                break
            deadline = entry[0]
            bucket = buckets.get(deadline)
            if bucket is None:
                bucket = free.pop() if free else []
                buckets[deadline] = bucket
                heapq.heappush(dl_heap, deadline)
            bucket.append(entry[1])
            bucket.append(entry[2])
            moved += 1
        del far[:moved]
        self._horizon = new_horizon
        self._mig_at = new_horizon - span * 0.5
        # Lazy resize: migrations that barely move anything mean the
        # wheel is too narrow for this workload's deadline spread.
        if far and moved < _RESIZE_MIN_MOVED:
            self._span = span * 2

    # ------------------------------------------------------------------
    # tasks
    # ------------------------------------------------------------------
    def spawn(self, gen: TaskGen, name: str = "task", daemon: bool = False) -> Task:
        """Start a new task from generator ``gen``.

        Non-daemon tasks that die with an exception make ``run()`` raise.
        Daemon tasks (infinite service loops) are allowed to be still
        running when the simulation ends.
        """
        if not isinstance(gen, Generator):
            raise TypeError(f"spawn() needs a generator, got {type(gen).__name__}")
        task = Task(self, gen, name=name, daemon=daemon)
        self._live_tasks.add(task)
        # First step happens on the event loop, not synchronously, so that
        # spawn order does not leak into execution order mid-timestep.
        self.post(0.0, task._resume)
        return task

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        until_tasks: Optional[Iterable[Task]] = None,
        max_events: int = 50_000_000,
    ) -> None:
        """Process events until the queue drains, ``until`` is reached, or
        every task in ``until_tasks`` has finished.

        Raises pending non-daemon task failures (the first one, with any
        others attached as ``__notes__``), and :class:`DeadlockError`
        when ``until_tasks`` can no longer make progress.
        """
        targets = list(until_tasks) if until_tasks is not None else None
        if self._running:
            raise SimulationError("kernel is already running (re-entrant run())")
        self._running = True
        watch: Optional[set[Task]] = None
        if targets is not None:
            watch = {t for t in targets if not t._finished}
            self._watch = watch
        failures = self._task_failures
        try:
            if failures:
                self._raise_task_failures()
            if watch is not None and not watch:
                return
            if self._wheel:
                stopped = self._run_wheel(until, watch, max_events, failures)
            else:
                stopped = self._run_heap(until, watch, max_events, failures)
            if stopped:
                return
            if failures:
                self._raise_task_failures()
            if watch:
                pending = [t.name for t in targets if not t._finished]
                raise DeadlockError(
                    f"event queue drained but tasks still pending: {pending}"
                )
            # The queue drained before the horizon: time still advances
            # to it (idle simulated time passes like any other).
            if until is not None and until > self._now:
                self._now = until
                if self._wheel and until >= self._mig_at:
                    self._advance_horizon()
        finally:
            self._running = False
            self._watch = None
            if _RACE is not None:
                _RACE.note_run_end()

    def _run_wheel(
        self,
        until: Optional[float],
        watch: Optional[set[Task]],
        max_events: int,
        failures: list[Task],
    ) -> bool:
        """Wheel-backend event loop; True means an early stop (``until``
        reached or every watched task finished)."""
        buckets = self._buckets
        dl_heap = self._dl_heap
        far = self._far
        heappop = heapq.heappop
        no_arg = _NO_ARG
        is_timer = _IS_TIMER
        processed = 0
        while True:
            if not dl_heap:
                if far:
                    self._advance_horizon()
                    continue
                return False
            deadline = dl_heap[0]
            bucket = buckets.get(deadline)
            if bucket is None:
                # Stale deadline: its bucket emptied during compaction.
                heappop(dl_heap)
                continue
            # Find the first live entry without advancing the clock: a
            # deadline with no live timer never becomes ``now``.
            i = 0
            n = len(bucket)
            while i < n:
                tag = bucket[i + 1]
                if tag is is_timer and bucket[i]._cancelled:
                    i += 2
                    continue
                break
            if i == n:
                heappop(dl_heap)
                del buckets[deadline]
                pairs = n // 2
                self._n_queued -= pairs
                count = self._cancelled_count - pairs
                self._cancelled_count = count if count > 0 else 0
                self._recycle(bucket)
                continue
            if until is not None and deadline > until:
                self._now = until
                if until >= self._mig_at:
                    self._advance_horizon()
                return True
            if deadline < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = deadline
            if deadline >= self._mig_at:
                self._advance_horizon()
            # Detach the bucket and drain it: new same-timestamp events
            # always carry a higher seq, land in a *fresh* bucket for
            # this deadline, and are drained by the next outer-loop turn
            # -- exactly the heap's in-batch pickup order.
            heappop(dl_heap)
            del buckets[deadline]
            self._n_queued -= n // 2
            i = 0
            try:
                while i < n:
                    obj = bucket[i]
                    tag = bucket[i + 1]
                    i += 2
                    if tag is is_timer:
                        if obj._cancelled:
                            count = self._cancelled_count
                            if count:
                                self._cancelled_count = count - 1
                            continue
                        # The timer has left the queue: a late cancel()
                        # must not count toward the compaction trigger.
                        obj._kernel = None
                        arg = obj._arg
                        if arg is no_arg:
                            obj._fn()
                        else:
                            obj._fn(arg)
                    elif tag is no_arg:
                        obj()
                    else:
                        obj(tag)
                    processed += 1
                    if processed > max_events:
                        # Checked inside the batch loop: a zero-delay
                        # self-rescheduling callback keeps the same
                        # deadline forever and would otherwise hang here.
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely a runaway loop"
                        )
                    if failures:
                        self._raise_task_failures()
                    if watch is not None and not watch:
                        self._recycle_partial(bucket, i, n)
                        return True
            except BaseException:
                # A callback (or a surfaced task failure) threw mid-batch:
                # the undrained tail must survive for the next run(), just
                # as it would have stayed in the binary heap.
                self._recycle_partial(bucket, i, n)
                raise
            self._recycle(bucket)

    def _recycle_partial(self, bucket: list, i: int, n: int) -> None:
        """An early stop mid-batch: the undrained tail must survive.

        Re-queue the remaining entries at the current time so the next
        ``run()`` resumes exactly where this one stopped (same order).
        """
        if i >= n:
            self._recycle(bucket)
            return
        deadline = self._now
        existing = self._buckets.get(deadline)
        tail = bucket[i:n]
        if existing is None:
            self._buckets[deadline] = tail
            heapq.heappush(self._dl_heap, deadline)
        else:
            # A fresh same-deadline bucket appeared mid-batch: its events
            # were scheduled *after* the tail, so the tail goes first.
            self._buckets[deadline] = tail + existing
            self._recycle(existing)
        self._n_queued += (n - i) // 2

    def _run_heap(
        self,
        until: Optional[float],
        watch: Optional[set[Task]],
        max_events: int,
        failures: list[Task],
    ) -> bool:
        """Heap-backend event loop (``SIM_KERNEL=heap`` cross-check)."""
        queue = self._queue
        heappop = heapq.heappop
        no_arg = _NO_ARG
        is_timer = _IS_TIMER
        processed = 0
        while queue:
            # Drop cancelled timers at the top without advancing the
            # clock: a deadline with no live timer never becomes now.
            while queue:
                top = queue[0]
                if top[3] is is_timer and top[2]._cancelled:
                    heappop(queue)
                    self._cancelled_count -= 1
                else:
                    break
            if not queue:
                break
            deadline = queue[0][0]
            if until is not None and deadline > until:
                self._now = until
                return True
            if deadline < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = deadline
            # Drain every event at this timestamp in one batch; new
            # same-timestamp events land behind the current heap top
            # (higher seq) and are picked up by the same batch.
            while queue and queue[0][0] == deadline:
                entry = heappop(queue)
                obj = entry[2]
                tag = entry[3]
                if tag is is_timer:
                    if obj._cancelled:
                        self._cancelled_count -= 1
                        continue
                    # The timer has left the heap: a late cancel() must
                    # not count toward the compaction trigger.
                    obj._kernel = None
                    arg = obj._arg
                    if arg is no_arg:
                        obj._fn()
                    else:
                        obj._fn(arg)
                elif tag is no_arg:
                    obj()
                else:
                    obj(tag)
                processed += 1
                if processed > max_events:
                    # Checked inside the batch loop: a zero-delay
                    # self-rescheduling callback keeps the same
                    # deadline forever and would otherwise hang here.
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a runaway loop"
                    )
                if failures:
                    self._raise_task_failures()
                if watch is not None and not watch:
                    return True
        return False

    def run_all(self, **kwargs: Any) -> None:
        """Alias of :meth:`run` with no stop condition (drain the queue)."""
        self.run(**kwargs)

    def _raise_task_failures(self) -> None:
        """Raise the oldest pending task failure.

        Any *other* failures pending at the same moment are not silently
        dropped: each is attached to the raised exception as a
        ``__notes__`` line and the failed tasks ride along in a
        ``pending_task_failures`` attribute for programmatic access.
        """
        failures = self._task_failures
        if not failures:
            return
        first = failures.pop(0)
        error = first.error
        assert error is not None
        if failures:
            rest, failures[:] = list(failures), []
            for task in rest:
                error.add_note(
                    f"[SimKernel] additional pending task failure in "
                    f"{task.name!r}: {type(task.error).__name__}: {task.error}"
                )
            error.pending_task_failures = rest  # type: ignore[attr-defined]
        raise error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimKernel t={self._now:.9f} queued={self.queued()} backend={self.backend}>"


#: The pristine fast-path ``schedule``/``post``, restored when the race
#: layer disables.  Swapping the *methods* keeps the disabled path
#: identical to an uninstrumented kernel -- not even a gate check on the
#: hottest calls.
_plain_schedule = SimKernel.schedule
_plain_post = SimKernel.post


def _set_race_hooks(mod: Any, swap: bool = True) -> None:
    """Install (or, with ``None``, remove) the mochi-race hooks.

    Called by :func:`repro.analysis.race.hooks.enable` / ``disable`` --
    the kernel never imports the race layer itself.  ``swap`` selects
    the detector's timer-edge mode: exact mode (``race_sample_every=1``)
    swaps instrumented ``schedule``/``post`` in so every timer carries
    its scheduler's clock, while epoch mode (``swap=False``) leaves the
    pristine methods in place -- the detector prices the event loop at
    zero and recovers timer-edge soundness at the margo layer via the
    approximation clock (see ``race/hb.py``).  ``_RACE`` is set either
    way so the run-end barrier still fires.
    """
    global _RACE
    _RACE = mod
    if mod is None or not swap:
        SimKernel.schedule = _plain_schedule
        SimKernel.post = _plain_post
        return
    SimKernel.schedule = mod.make_race_schedule(_plain_schedule)
    SimKernel.post = mod.make_race_post(_plain_post)
