"""Deterministic discrete-event simulation kernel.

Everything in :mod:`repro` that needs a notion of time or concurrency runs
on this kernel.  The kernel maintains a priority queue of timestamped
events and a set of *tasks* -- cooperative coroutines implemented as
Python generators.  A task advances by yielding :class:`Sleep` or
:class:`WaitEvent` commands; the kernel resumes it when the requested
condition is met.

Determinism is a first-class goal: for equal seeds and equal call
sequences, two runs produce bit-identical schedules.  Ties in the event
queue are broken by a monotonically increasing sequence number, never by
object identity or hashing.

This module is the hottest code in the repository -- every RPC, ULT
slice, and timer in every component turns into events here -- so the
implementation favors the wall-clock fast path:

* timers carry a callable plus an optional argument slot, so the task
  resume paths schedule *bound methods* instead of allocating a closure
  per event;
* ``run(until_tasks=...)`` detects completion through a shrinking set of
  watched tasks (O(1) per event) instead of scanning every target after
  every event;
* the run loop drains all events sharing a timestamp in one batch,
  touching the heap invariants once per distinct time, not once per
  condition check;
* cancelled timers are compacted out of the heap once they outnumber
  half the queue, so mass cancellation (e.g. per-RPC timeout timers)
  cannot hold memory hostage.  Compaction preserves each entry's
  ``(deadline, seq)`` key, so event order is bit-identical with or
  without it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimKernel",
    "Task",
    "Timer",
    "Sleep",
    "WaitEvent",
    "SimEvent",
    "SimulationError",
    "DeadlockError",
]


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised when ``run()`` is asked to finish work that can never finish."""


@dataclass(frozen=True)
class Sleep:
    """Command: suspend the yielding task for ``duration`` simulated seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative sleep duration: {self.duration}")


@dataclass(frozen=True)
class WaitEvent:
    """Command: suspend the yielding task until ``event`` is set.

    The task is resumed with the event's payload.  If ``timeout`` is not
    ``None`` and the event is not set within that many simulated seconds,
    the task is resumed with :data:`TIMED_OUT` instead.  Both resumption
    paths -- wake and timeout -- deliver on a *fresh* event-loop turn, so
    the relative order of same-timestamp callbacks never depends on which
    path fired.
    """

    event: "SimEvent"
    timeout: Optional[float] = None


class _TimedOut:
    """Sentinel resumption value for a timed-out :class:`WaitEvent`."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "TIMED_OUT"


TIMED_OUT = _TimedOut()

#: Sentinel for "timer fires ``fn()`` with no argument".
_NO_ARG = object()

#: Compaction trigger: cancelled entries must exceed this count *and*
#: half the queue before the heap is rebuilt without them.
_COMPACT_MIN_CANCELLED = 64

#: The mochi-race hooks module, injected by ``_set_race_hooks`` when the
#: race detector enables.  ``None`` keeps every gate below a single
#: module-global load; the hot path (``schedule``) is method-swapped
#: instead of gated, so it pays nothing at all while disabled.
_RACE: Any = None


class SimEvent:
    """A one-shot, level-triggered event usable from kernel tasks.

    ``set(payload)`` wakes every current and future waiter with
    ``payload``.  Events may be reused after :meth:`clear`, which is how
    mailbox-style "work available" signals are built.
    """

    __slots__ = ("kernel", "name", "_set", "_payload", "_waiters")

    def __init__(self, kernel: "SimKernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._set = False
        self._payload: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def is_set(self) -> bool:
        return self._set

    @property
    def payload(self) -> Any:
        return self._payload

    def set(self, payload: Any = None) -> None:
        """Set the event and wake all waiters (idempotent while set)."""
        if self._set:
            return
        self._set = True
        self._payload = payload
        if _RACE is not None:
            _RACE.note_event_set(self)
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake(payload)

    def clear(self) -> None:
        """Reset the event so it can be waited on (and set) again."""
        self._set = False
        self._payload = None

    def _add_waiter(self, wake: Callable[[Any], None]) -> None:
        self._waiters.append(wake)

    def _remove_waiter(self, wake: Callable[[Any], None]) -> None:
        try:
            self._waiters.remove(wake)
        except ValueError:
            pass


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    The callback is ``fn()`` when scheduled without an argument and
    ``fn(arg)`` otherwise -- the argument slot is what lets the task
    machinery schedule bound methods instead of per-event closures.
    """

    __slots__ = ("deadline", "_fn", "_arg", "_cancelled", "_kernel")

    def __init__(
        self,
        deadline: float,
        fn: Callable[..., None],
        arg: Any = _NO_ARG,
        kernel: Optional["SimKernel"] = None,
    ) -> None:
        self.deadline = deadline
        self._fn = fn
        self._arg = arg
        self._cancelled = False
        self._kernel = kernel

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        # ``_kernel`` is cleared when the timer leaves the heap, so
        # cancelling an already-fired timer does not inflate the
        # cancelled-entry count that drives heap compaction.
        kernel = self._kernel
        if kernel is not None:
            kernel._note_cancelled()


TaskGen = Generator[Any, Any, Any]


class _EventWaiter:
    """Per-``WaitEvent`` state: replaces the closure pair the wait path
    used to allocate with one slotted object holding two bound methods."""

    __slots__ = ("task", "event", "timer", "resumed")

    def __init__(self, task: "Task", event: "SimEvent") -> None:
        self.task = task
        self.event = event
        self.timer: Optional[Timer] = None
        self.resumed = False

    def wake(self, payload: Any) -> None:
        if self.resumed:
            return
        self.resumed = True
        if self.timer is not None:
            self.timer.cancel()
        task = self.task
        task.kernel.schedule(0.0, task._step, payload)

    def on_timeout(self) -> None:
        if self.resumed:
            return
        self.resumed = True
        self.event._remove_waiter(self.wake)
        # Resume on a fresh event-loop turn, symmetric with wake(): the
        # task must never advance from inside the timer that timed it out.
        task = self.task
        task.kernel.schedule(0.0, task._step, TIMED_OUT)


class Task:
    """A kernel coroutine.

    Wraps a generator that yields :class:`Sleep` / :class:`WaitEvent`
    commands.  On normal return the task's :attr:`done_event` is set with
    the generator's return value; on an unhandled exception the error is
    recorded in :attr:`error` and re-raised by the kernel unless the task
    was marked ``daemon``.
    """

    __slots__ = ("kernel", "gen", "name", "daemon", "done_event", "error", "result", "_finished")

    def __init__(self, kernel: "SimKernel", gen: TaskGen, name: str, daemon: bool) -> None:
        self.kernel = kernel
        self.gen = gen
        self.name = name
        self.daemon = daemon
        self.done_event = SimEvent(kernel, name=f"done:{name}")
        self.error: Optional[BaseException] = None
        self.result: Any = None
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        """Advance the generator one command and act on what it yields."""
        kernel = self.kernel
        try:
            if exc is not None:
                cmd = self.gen.throw(exc)
            else:
                cmd = self.gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - task failure path
            self.error = err
            self._finish(result=None)
            # Daemon failures are normally tolerated (service loops dying
            # at shutdown), but assertion failures -- including the
            # runtime sanitizer's SanitizerError -- must always surface.
            if not self.daemon or isinstance(err, AssertionError):
                kernel._task_failures.append(self)
            return
        if type(cmd) is Sleep:
            kernel.schedule(cmd.duration, self._step)
        elif type(cmd) is WaitEvent:
            self._wait(cmd)
        else:
            self._dispatch_slow(cmd)

    def _dispatch_slow(self, cmd: Any) -> None:
        # Subclasses of Sleep/WaitEvent still work; anything else errors.
        if isinstance(cmd, Sleep):
            self.kernel.schedule(cmd.duration, self._step)
        elif isinstance(cmd, WaitEvent):
            self._wait(cmd)
        else:
            self._step(
                exc=SimulationError(
                    f"task {self.name!r} yielded unsupported command {cmd!r}; "
                    "kernel tasks may only yield Sleep or WaitEvent"
                )
            )

    def _wait(self, cmd: WaitEvent) -> None:
        event = cmd.event
        if event.is_set:
            if _RACE is not None:
                _RACE.note_event_join(event)
            # Resume on a fresh event-loop turn to keep scheduling fair
            # and re-entrancy-free.
            self.kernel.schedule(0.0, self._step, event.payload)
            return
        waiter = _EventWaiter(self, event)
        event._add_waiter(waiter.wake)
        if cmd.timeout is not None:
            waiter.timer = self.kernel.schedule(cmd.timeout, waiter.on_timeout)

    def _finish(self, result: Any) -> None:
        self._finished = True
        self.result = result
        kernel = self.kernel
        kernel._live_tasks.discard(self)
        watch = kernel._watch
        if watch is not None:
            watch.discard(self)
        self.done_event.set(result)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self._finished else "running"
        return f"<Task {self.name!r} {state}>"


class SimKernel:
    """The discrete-event scheduler.

    Typical use::

        kernel = SimKernel()
        task = kernel.spawn(my_generator(), name="driver")
        kernel.run()
        assert task.finished
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[tuple[float, int, Timer]] = []
        self._live_tasks: set[Task] = set()
        self._task_failures: list[Task] = []
        self._running = False
        #: Cancelled timers still sitting in the heap (compaction trigger).
        self._cancelled_count = 0
        #: Unfinished tasks the current ``run(until_tasks=...)`` watches;
        #: tasks remove themselves on finish, making completion detection
        #: O(1) per event instead of a scan over all targets.
        self._watch: Optional[set[Task]] = None

    # ------------------------------------------------------------------
    # time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., None], arg: Any = _NO_ARG) -> Timer:
        """Run ``fn()`` -- or ``fn(arg)`` if ``arg`` is given -- after
        ``delay`` simulated seconds; return a cancellable handle."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        timer = Timer(self._now + delay, fn, arg, self)
        self._seq += 1
        heapq.heappush(self._queue, (timer.deadline, self._seq, timer))
        return timer

    def schedule_at(self, deadline: float, fn: Callable[..., None], arg: Any = _NO_ARG) -> Timer:
        """Run ``fn()`` -- or ``fn(arg)`` if ``arg`` is given -- at the
        absolute simulated time ``deadline``; return a cancellable handle.

        Unlike :meth:`schedule`, the firing time does not depend on when
        the caller ran, which is what periodic samplers aligned to fixed
        window boundaries (``k * window``) need for deterministic,
        drift-free rollups.
        """
        if deadline < self._now:
            raise ValueError(
                f"deadline {deadline} is in the past (now={self._now})"
            )
        timer = Timer(deadline, fn, arg, self)
        self._seq += 1
        heapq.heappush(self._queue, (timer.deadline, self._seq, timer))
        return timer

    def event(self, name: str = "") -> SimEvent:
        """Create a :class:`SimEvent` bound to this kernel."""
        return SimEvent(self, name=name)

    # ------------------------------------------------------------------
    # cancelled-timer bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled_count += 1
        count = self._cancelled_count
        if count >= _COMPACT_MIN_CANCELLED and count * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify in place.

        Entries keep their ``(deadline, seq)`` keys, so the relative
        order of live timers -- and therefore the event schedule -- is
        bit-identical with or without compaction.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2]._cancelled]
        heapq.heapify(queue)
        self._cancelled_count = 0

    # ------------------------------------------------------------------
    # tasks
    # ------------------------------------------------------------------
    def spawn(self, gen: TaskGen, name: str = "task", daemon: bool = False) -> Task:
        """Start a new task from generator ``gen``.

        Non-daemon tasks that die with an exception make ``run()`` raise.
        Daemon tasks (infinite service loops) are allowed to be still
        running when the simulation ends.
        """
        if not isinstance(gen, Generator):
            raise TypeError(f"spawn() needs a generator, got {type(gen).__name__}")
        task = Task(self, gen, name=name, daemon=daemon)
        self._live_tasks.add(task)
        # First step happens on the event loop, not synchronously, so that
        # spawn order does not leak into execution order mid-timestep.
        self.schedule(0.0, task._step)
        return task

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        until_tasks: Optional[Iterable[Task]] = None,
        max_events: int = 50_000_000,
    ) -> None:
        """Process events until the queue drains, ``until`` is reached, or
        every task in ``until_tasks`` has finished.

        Raises pending non-daemon task failures (the first one, with any
        others attached as ``__notes__``), and :class:`DeadlockError`
        when ``until_tasks`` can no longer make progress.
        """
        targets = list(until_tasks) if until_tasks is not None else None
        if self._running:
            raise SimulationError("kernel is already running (re-entrant run())")
        self._running = True
        watch: Optional[set[Task]] = None
        if targets is not None:
            watch = {t for t in targets if not t._finished}
            self._watch = watch
        processed = 0
        queue = self._queue
        heappop = heapq.heappop
        failures = self._task_failures
        try:
            if failures:
                self._raise_task_failures()
            if watch is not None and not watch:
                return
            while queue:
                # Drop cancelled timers at the top without advancing the
                # clock: a deadline with no live timer never becomes now.
                while queue and queue[0][2]._cancelled:
                    heappop(queue)
                    self._cancelled_count -= 1
                if not queue:
                    break
                deadline = queue[0][0]
                if until is not None and deadline > until:
                    self._now = until
                    return
                if deadline < self._now:
                    raise SimulationError("event queue went backwards in time")
                self._now = deadline
                # Drain every event at this timestamp in one batch; new
                # same-timestamp events land behind the current heap top
                # (higher seq) and are picked up by the same batch.
                while queue and queue[0][0] == deadline:
                    timer = heappop(queue)[2]
                    if timer._cancelled:
                        self._cancelled_count -= 1
                        continue
                    # The timer has left the heap: a late cancel() must not
                    # count toward the compaction trigger.
                    timer._kernel = None
                    if timer._arg is _NO_ARG:
                        timer._fn()
                    else:
                        timer._fn(timer._arg)
                    processed += 1
                    if processed > max_events:
                        # Checked inside the batch loop: a zero-delay
                        # self-rescheduling callback keeps the same
                        # deadline forever and would otherwise hang here.
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely a runaway loop"
                        )
                    if failures:
                        self._raise_task_failures()
                    if watch is not None and not watch:
                        return
            if failures:
                self._raise_task_failures()
            if watch:
                pending = [t.name for t in targets if not t._finished]
                raise DeadlockError(
                    f"event queue drained but tasks still pending: {pending}"
                )
            # The queue drained before the horizon: time still advances
            # to it (idle simulated time passes like any other).
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self._watch = None
            if _RACE is not None:
                _RACE.note_run_end()

    def run_all(self, **kwargs: Any) -> None:
        """Alias of :meth:`run` with no stop condition (drain the queue)."""
        self.run(**kwargs)

    def _raise_task_failures(self) -> None:
        """Raise the oldest pending task failure.

        Any *other* failures pending at the same moment are not silently
        dropped: each is attached to the raised exception as a
        ``__notes__`` line and the failed tasks ride along in a
        ``pending_task_failures`` attribute for programmatic access.
        """
        failures = self._task_failures
        if not failures:
            return
        first = failures.pop(0)
        error = first.error
        assert error is not None
        if failures:
            rest, failures[:] = list(failures), []
            for task in rest:
                error.add_note(
                    f"[SimKernel] additional pending task failure in "
                    f"{task.name!r}: {type(task.error).__name__}: {task.error}"
                )
            error.pending_task_failures = rest  # type: ignore[attr-defined]
        raise error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimKernel t={self._now:.9f} queued={len(self._queue)}>"


#: The pristine fast-path ``schedule``, restored when the race layer
#: disables.  Swapping the *method* keeps the disabled path identical to
#: an uninstrumented kernel -- not even a gate check on the hottest call.
_plain_schedule = SimKernel.schedule


def _set_race_hooks(mod: Any) -> None:
    """Install (or, with ``None``, remove) the mochi-race hooks.

    Called by :func:`repro.analysis.race.hooks.enable` /
    ``disable`` -- the kernel never imports the race layer itself.
    """
    global _RACE
    _RACE = mod
    if mod is None:
        SimKernel.schedule = _plain_schedule
        return

    def _race_schedule(
        self: SimKernel, delay: float, fn: Callable[..., None], arg: Any = _NO_ARG
    ) -> Timer:
        return _plain_schedule(self, delay, mod.wrap_timer(fn, arg, _NO_ARG), _NO_ARG)

    _race_schedule.__doc__ = _plain_schedule.__doc__
    SimKernel.schedule = _race_schedule
