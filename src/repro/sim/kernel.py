"""Deterministic discrete-event simulation kernel.

Everything in :mod:`repro` that needs a notion of time or concurrency runs
on this kernel.  The kernel maintains a priority queue of timestamped
events and a set of *tasks* -- cooperative coroutines implemented as
Python generators.  A task advances by yielding :class:`Sleep` or
:class:`WaitEvent` commands; the kernel resumes it when the requested
condition is met.

Determinism is a first-class goal: for equal seeds and equal call
sequences, two runs produce bit-identical schedules.  Ties in the event
queue are broken by a monotonically increasing sequence number, never by
object identity or hashing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimKernel",
    "Task",
    "Timer",
    "Sleep",
    "WaitEvent",
    "SimEvent",
    "SimulationError",
    "DeadlockError",
]


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised when ``run()`` is asked to finish work that can never finish."""


@dataclass(frozen=True)
class Sleep:
    """Command: suspend the yielding task for ``duration`` simulated seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative sleep duration: {self.duration}")


@dataclass(frozen=True)
class WaitEvent:
    """Command: suspend the yielding task until ``event`` is set.

    The task is resumed with the event's payload.  If ``timeout`` is not
    ``None`` and the event is not set within that many simulated seconds,
    the task is resumed with :data:`TIMED_OUT` instead.
    """

    event: "SimEvent"
    timeout: Optional[float] = None


class _TimedOut:
    """Sentinel resumption value for a timed-out :class:`WaitEvent`."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "TIMED_OUT"


TIMED_OUT = _TimedOut()


class SimEvent:
    """A one-shot, level-triggered event usable from kernel tasks.

    ``set(payload)`` wakes every current and future waiter with
    ``payload``.  Events may be reused after :meth:`clear`, which is how
    mailbox-style "work available" signals are built.
    """

    __slots__ = ("kernel", "name", "_set", "_payload", "_waiters")

    def __init__(self, kernel: "SimKernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._set = False
        self._payload: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def is_set(self) -> bool:
        return self._set

    @property
    def payload(self) -> Any:
        return self._payload

    def set(self, payload: Any = None) -> None:
        """Set the event and wake all waiters (idempotent while set)."""
        if self._set:
            return
        self._set = True
        self._payload = payload
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake(payload)

    def clear(self) -> None:
        """Reset the event so it can be waited on (and set) again."""
        self._set = False
        self._payload = None

    def _add_waiter(self, wake: Callable[[Any], None]) -> Callable[[], None]:
        """Register ``wake``; return a callable that unregisters it."""
        self._waiters.append(wake)

        def cancel() -> None:
            try:
                self._waiters.remove(wake)
            except ValueError:
                pass

        return cancel


class Timer:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("deadline", "_fn", "_cancelled")

    def __init__(self, deadline: float, fn: Callable[[], None]) -> None:
        self.deadline = deadline
        self._fn = fn
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True

    def _fire(self) -> None:
        if not self._cancelled:
            self._fn()


TaskGen = Generator[Any, Any, Any]


class Task:
    """A kernel coroutine.

    Wraps a generator that yields :class:`Sleep` / :class:`WaitEvent`
    commands.  On normal return the task's :attr:`done_event` is set with
    the generator's return value; on an unhandled exception the error is
    recorded in :attr:`error` and re-raised by the kernel unless the task
    was marked ``daemon``.
    """

    __slots__ = ("kernel", "gen", "name", "daemon", "done_event", "error", "result", "_finished")

    def __init__(self, kernel: "SimKernel", gen: TaskGen, name: str, daemon: bool) -> None:
        self.kernel = kernel
        self.gen = gen
        self.name = name
        self.daemon = daemon
        self.done_event = SimEvent(kernel, name=f"done:{name}")
        self.error: Optional[BaseException] = None
        self.result: Any = None
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        """Advance the generator one command and act on what it yields."""
        kernel = self.kernel
        try:
            if exc is not None:
                cmd = self.gen.throw(exc)
            else:
                cmd = self.gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - task failure path
            self.error = err
            self._finish(result=None)
            if not self.daemon:
                kernel._task_failures.append(self)
            return
        self._dispatch(cmd)

    def _dispatch(self, cmd: Any) -> None:
        kernel = self.kernel
        if isinstance(cmd, Sleep):
            kernel.schedule(cmd.duration, lambda: self._step(None))
        elif isinstance(cmd, WaitEvent):
            self._wait(cmd)
        else:
            self._step(
                exc=SimulationError(
                    f"task {self.name!r} yielded unsupported command {cmd!r}; "
                    "kernel tasks may only yield Sleep or WaitEvent"
                )
            )

    def _wait(self, cmd: WaitEvent) -> None:
        event = cmd.event
        if event.is_set:
            # Resume on a fresh event-loop turn to keep scheduling fair
            # and re-entrancy-free.
            self.kernel.schedule(0.0, lambda: self._step(event.payload))
            return
        state = {"resumed": False}

        def wake(payload: Any) -> None:
            if state["resumed"]:
                return
            state["resumed"] = True
            if timer is not None:
                timer.cancel()
            self.kernel.schedule(0.0, lambda: self._step(payload))

        cancel_waiter = event._add_waiter(wake)
        timer: Optional[Timer] = None
        if cmd.timeout is not None:

            def on_timeout() -> None:
                if state["resumed"]:
                    return
                state["resumed"] = True
                cancel_waiter()
                self._step(TIMED_OUT)

            timer = self.kernel.schedule(cmd.timeout, on_timeout)

    def _finish(self, result: Any) -> None:
        self._finished = True
        self.result = result
        self.kernel._live_tasks.discard(self)
        self.done_event.set(result)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self._finished else "running"
        return f"<Task {self.name!r} {state}>"


class SimKernel:
    """The discrete-event scheduler.

    Typical use::

        kernel = SimKernel()
        task = kernel.spawn(my_generator(), name="driver")
        kernel.run()
        assert task.finished
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[tuple[float, int, Timer]] = []
        self._live_tasks: set[Task] = set()
        self._task_failures: list[Task] = []
        self._running = False

    # ------------------------------------------------------------------
    # time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn()`` after ``delay`` simulated seconds; return a handle."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        timer = Timer(self._now + delay, fn)
        self._seq += 1
        heapq.heappush(self._queue, (timer.deadline, self._seq, timer))
        return timer

    def event(self, name: str = "") -> SimEvent:
        """Create a :class:`SimEvent` bound to this kernel."""
        return SimEvent(self, name=name)

    # ------------------------------------------------------------------
    # tasks
    # ------------------------------------------------------------------
    def spawn(self, gen: TaskGen, name: str = "task", daemon: bool = False) -> Task:
        """Start a new task from generator ``gen``.

        Non-daemon tasks that die with an exception make ``run()`` raise.
        Daemon tasks (infinite service loops) are allowed to be still
        running when the simulation ends.
        """
        if not isinstance(gen, Generator):
            raise TypeError(f"spawn() needs a generator, got {type(gen).__name__}")
        task = Task(self, gen, name=name, daemon=daemon)
        self._live_tasks.add(task)
        # First step happens on the event loop, not synchronously, so that
        # spawn order does not leak into execution order mid-timestep.
        self.schedule(0.0, lambda: task._step(None))
        return task

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        until_tasks: Optional[Iterable[Task]] = None,
        max_events: int = 50_000_000,
    ) -> None:
        """Process events until the queue drains, ``until`` is reached, or
        every task in ``until_tasks`` has finished.

        Raises the first non-daemon task failure, and :class:`DeadlockError`
        when ``until_tasks`` can no longer make progress.
        """
        targets = list(until_tasks) if until_tasks is not None else None
        if self._running:
            raise SimulationError("kernel is already running (re-entrant run())")
        self._running = True
        processed = 0
        try:
            while self._queue:
                self._raise_task_failures()
                if targets is not None and all(t.finished for t in targets):
                    return
                deadline, _, timer = self._queue[0]
                if until is not None and deadline > until:
                    self._now = until
                    return
                heapq.heappop(self._queue)
                if timer.cancelled:
                    continue
                if deadline < self._now:
                    raise SimulationError("event queue went backwards in time")
                self._now = deadline
                timer._fire()
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a runaway loop"
                    )
            self._raise_task_failures()
            if targets is not None and not all(t.finished for t in targets):
                pending = [t.name for t in targets if not t.finished]
                raise DeadlockError(
                    f"event queue drained but tasks still pending: {pending}"
                )
            # The queue drained before the horizon: time still advances
            # to it (idle simulated time passes like any other).
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_all(self, **kwargs: Any) -> None:
        """Alias of :meth:`run` with no stop condition (drain the queue)."""
        self.run(**kwargs)

    def _raise_task_failures(self) -> None:
        if self._task_failures:
            task = self._task_failures.pop(0)
            assert task.error is not None
            raise task.error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimKernel t={self._now:.9f} queued={len(self._queue)}>"
