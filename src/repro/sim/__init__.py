"""Deterministic discrete-event substrate for the Mochi reproduction.

Public surface:

* :class:`~repro.sim.kernel.SimKernel` and friends -- the scheduler;
* :class:`~repro.sim.network.Network` / ``Node`` / ``Process`` -- topology;
* :class:`~repro.sim.faults.FaultInjector` -- crash/partition injection;
* :class:`~repro.sim.random.RandomSource` -- named deterministic RNG streams.
"""

from .kernel import (
    DeadlockError,
    SimEvent,
    SimKernel,
    SimulationError,
    Sleep,
    Task,
    Timer,
    WaitEvent,
    TIMED_OUT,
)
from .network import (
    AddressError,
    LinkModel,
    Network,
    NetworkConfig,
    Node,
    Process,
    Transport,
)
from .faults import FaultInjector, FaultRecord
from .random import RandomSource

__all__ = [
    "SimKernel",
    "SimEvent",
    "Sleep",
    "WaitEvent",
    "TIMED_OUT",
    "Task",
    "Timer",
    "SimulationError",
    "DeadlockError",
    "Network",
    "NetworkConfig",
    "LinkModel",
    "Node",
    "Process",
    "Transport",
    "AddressError",
    "FaultInjector",
    "FaultRecord",
    "RandomSource",
]
