"""Failure injection.

Implements the two fault classes the paper distinguishes (section 2.3,
"Resilience"):

* **transient failure** -- a service process crashes but its data is
  still available in node-local storage (``kill_process``);
* **permanent failure** -- a node dies and everything local to it is
  lost (``kill_node``).

Plus network partitions and probabilistic message loss (used by the SWIM
experiments).  All injections are regular simulated events, so a failure
schedule is part of the deterministic run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .kernel import SimKernel
from .network import Network, Node, Process

__all__ = ["FaultInjector", "FaultRecord"]


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, for post-run inspection."""

    time: float
    kind: str  # "process", "node", "partition", "heal", "loss"
    target: str


class FaultInjector:
    """Injects crashes, node deaths, partitions, and loss into a network."""

    def __init__(self, kernel: SimKernel, network: Network) -> None:
        self.kernel = kernel
        self.network = network
        self.history: list[FaultRecord] = []
        #: Subscribers called with every :class:`FaultRecord` as it is
        #: injected (the health plane's flight recorder and incident log
        #: hang off this; empty by default, so injection stays cheap).
        self.on_fault: list[Callable[[FaultRecord], None]] = []

    def _record(self, kind: str, target: str) -> FaultRecord:
        record = FaultRecord(self.kernel.now, kind, target)
        self.history.append(record)
        for callback in list(self.on_fault):
            callback(record)
        return record

    # ------------------------------------------------------------------
    # immediate injections
    # ------------------------------------------------------------------
    def kill_process(self, proc: Process) -> None:
        """Transient failure: the process dies; node-local data survives."""
        if not proc.alive:
            return
        proc.alive = False
        self._record("process", proc.name)
        for callback in list(proc.on_killed):
            callback()

    def kill_node(self, node: Node) -> None:
        """Permanent failure: node dies, local data is wiped, processes die."""
        if not node.alive:
            return
        node.alive = False
        self._record("node", node.name)
        for store in node.attachments.values():
            wipe = getattr(store, "wipe", None)
            if callable(wipe):
                wipe()
        for proc in [p for p in self.network.processes.values() if p.node is node]:
            self.kill_process(proc)

    def partition(self, a: Node | str, b: Node | str) -> None:
        self.network.partition(a, b)
        self._record("partition", f"{a}|{b}")

    def heal(self, a: Node | str, b: Node | str) -> None:
        self.network.heal(a, b)
        self._record("heal", f"{a}|{b}")

    def set_message_loss(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability out of range: {probability}")
        self.network.loss_probability = probability
        self._record("loss", f"{probability}")

    # ------------------------------------------------------------------
    # scheduled injections
    # ------------------------------------------------------------------
    def kill_process_at(self, delay: float, proc: Process) -> None:
        self.kernel.post(delay, self.kill_process, proc)

    def kill_node_at(self, delay: float, node: Node) -> None:
        self.kernel.post(delay, self.kill_node, node)

    def partition_at(self, delay: float, a: Node | str, b: Node | str) -> None:
        self.kernel.schedule(delay, lambda: self.partition(a, b))

    def heal_at(self, delay: float, a: Node | str, b: Node | str) -> None:
        self.kernel.schedule(delay, lambda: self.heal(a, b))
