"""Filesets: the unit REMI migrates.

"Migrating a resource from a node to another often comes down to
transferring files between two nodes" (paper section 6).  A
:class:`FileSet` names a group of files in one node-local store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..storage.local import LocalStore

__all__ = ["FileSet", "RemiError"]


class RemiError(RuntimeError):
    """Base class for REMI errors."""


@dataclass
class FileSet:
    """A named set of paths inside a local store."""

    store: LocalStore
    paths: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        missing = [p for p in self.paths if not self.store.exists(p)]
        if missing:
            raise RemiError(f"fileset references missing files: {missing}")

    @classmethod
    def from_prefix(cls, store: LocalStore, prefix: str) -> "FileSet":
        return cls(store, store.list(prefix))

    @property
    def total_bytes(self) -> int:
        return sum(self.store.size_of(p) for p in self.paths)

    @property
    def num_files(self) -> int:
        return len(self.paths)

    def read_all(self) -> list[tuple[str, bytes]]:
        return [(p, self.store.read(p)) for p in self.paths]
