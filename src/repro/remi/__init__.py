"""REMI: Mochi's resource-migration component (paper section 6)."""

from .client import (
    AUTO_RDMA_THRESHOLD,
    MigrationHandle,
    MigrationReport,
    RemiClient,
)
from .fileset import FileSet, RemiError
from .provider import RemiProvider

__all__ = [
    "RemiProvider",
    "RemiClient",
    "MigrationHandle",
    "MigrationReport",
    "FileSet",
    "RemiError",
    "AUTO_RDMA_THRESHOLD",
]
