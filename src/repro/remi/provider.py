"""REMI provider: receives migrated files into the local store.

Two receive paths mirror the two transfer methods of the paper
(section 6, Observation 4):

* ``recv_file`` -- the file arrives via a one-sided bulk (RDMA) pull of
  the memory-mapped source file ("more efficient for large files");
* ``recv_chunk`` -- a packed chunk of (possibly many small) file pieces
  arrives inline in the RPC payload ("more efficient when sending
  multiple small files, since they can be packed together into larger
  chunks and the transfer of chunks can be pipelined").
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..analysis.race import hooks as _race
from ..core.component import Provider
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute, UltSleep
from ..mercury import BULK_OP_PULL
from ..storage.local import LocalStore
from .fileset import RemiError

__all__ = ["RemiProvider"]

OP_BASE_COST = 300e-9
BYTES_PER_SECOND = 10e9


class RemiProvider(Provider):
    """Receives filesets into this process's node-local store.

    Config::

        {"store_attachment": "disk", "sync": true}

    ``sync``: when true (default) every received piece pays the storage
    write cost immediately; when false, data lands in memory/page cache
    and the cost is deferred (useful to isolate transfer-path costs).
    """

    component_type = "remi"

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        pool: Any = None,
        config: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(margo, name, provider_id, pool=pool, config=config)
        attachment = self.config.get("store_attachment", "disk")
        store = margo.process.node.attachments.get(attachment)
        if not isinstance(store, LocalStore):
            raise RemiError(
                f"REMI provider needs LocalStore attachment {attachment!r} "
                f"on node {margo.process.node.name}"
            )
        self.store: LocalStore = store
        self.sync = bool(self.config.get("sync", True))
        if _race.ENABLED:
            _race.track(self.store, f"remi:{name}.store")
        # Partially received files (chunked path): path -> {offset: bytes}.
        self._partial: dict[str, dict[int, bytes]] = {}
        self._files_received = margo.metrics.counter(
            "remi_files_received", "migrated files landed", label_names=("provider",)
        ).labels(provider=name)
        self._bytes_received = margo.metrics.counter(
            "remi_bytes_received", "migrated bytes landed", label_names=("provider",)
        ).labels(provider=name)

        self.register_rpc("recv_file", self._on_recv_file)
        self.register_rpc("recv_chunk", self._on_recv_chunk)
        self.register_rpc("finalize", self._on_finalize)

    # ------------------------------------------------------------------
    def _on_recv_file(self, ctx: RequestContext) -> Generator:
        """RDMA path: pull the whole file from the source's mapped memory.

        Both endpoints memory-map, so source reads and destination
        writes stream concurrently with the fabric transfer; the slice
        costs the *maximum* of the three, not their sum.
        """
        args = ctx.args
        path = args["path"]
        bulk = args["bulk"]
        src_read_cost = float(args.get("src_read_cost", 0.0))
        wire = yield from self.margo.bulk_transfer(ctx.source, bulk.size, op=BULK_OP_PULL)
        overlapped = max(src_read_cost, self.store.write_cost(bulk.size) if self.sync else 0.0)
        if overlapped > wire:
            yield UltSleep(overlapped - wire)
        if _race.ENABLED:
            _race.note_write(self.store, path, f"remi:{self.name}.recv_file")
        self.store.write(path, bulk.data)
        self._files_received.inc()
        self._bytes_received.inc(bulk.size)
        return bulk.size

    def _on_recv_chunk(self, ctx: RequestContext) -> Generator:
        """Chunked-RPC path: unpack pieces; assemble multi-chunk files."""
        pieces = ctx.args["pieces"]  # [(path, offset, total_size, data), ...]
        total = sum(len(data) for _, _, _, data in pieces)
        yield Compute(OP_BASE_COST * max(1, len(pieces)) + total / BYTES_PER_SECOND)
        if self.sync:
            yield UltSleep(self.store.write_cost(total))
        for path, offset, total_size, data in pieces:
            if offset == 0 and len(data) == total_size:
                if _race.ENABLED:
                    _race.note_write(self.store, path, f"remi:{self.name}.recv_chunk")
                self.store.write(path, data)
                self._files_received.inc()
            else:
                # Pipelined chunks land pieces of the same file from
                # concurrent handler ULTs *by design*; assembly sorts by
                # offset, so the granularity that must be ordered is the
                # (path, offset) cell, not the whole file.
                if _race.ENABLED:
                    _race.note_write(
                        self.store, (path, offset), f"remi:{self.name}.recv_chunk"
                    )
                parts = self._partial.setdefault(path, {})
                parts[offset] = data
                have = sum(len(d) for d in parts.values())
                if have == total_size:
                    assembled = b"".join(parts[o] for o in sorted(parts))
                    if _race.ENABLED:
                        _race.note_write(
                            self.store, path, f"remi:{self.name}.assemble"
                        )
                    self.store.write(path, assembled)
                    del self._partial[path]
                    self._files_received.inc()
            self._bytes_received.inc(len(data))
        return total

    def _on_finalize(self, ctx: RequestContext) -> Generator:
        """End of a migration: verify no partial files remain."""
        yield Compute(OP_BASE_COST)
        if self._partial:
            raise RemiError(
                f"migration finalized with incomplete files: {sorted(self._partial)}"
            )
        return {"files": self.files_received, "bytes": self.bytes_received}

    # ------------------------------------------------------------------
    @property
    def files_received(self) -> int:
        return int(self._files_received.value)

    @property
    def bytes_received(self) -> int:
        return int(self._bytes_received.value)

    def get_config(self) -> dict[str, Any]:
        doc = dict(self.config)
        doc["sync"] = self.sync
        doc["statistics"] = {
            "files_received": self.files_received,
            "bytes_received": self.bytes_received,
        }
        return doc
