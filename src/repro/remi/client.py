"""REMI client: drives fileset migrations from the source side.

Implements both transfer methods of the paper (section 6):

* ``method="rdma"`` -- memory-map each file and let the destination pull
  it one-sidedly (per-file setup cost, full fabric bandwidth);
* ``method="chunks"`` -- pack files into fixed-size chunks sent as
  pipelined RPCs (per-chunk overhead amortized over many small files);
* ``method="auto"`` -- choose by mean file size.

Benchmark E5 sweeps file count x file size over both methods and locates
the crossover the paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..core.component import Client, ResourceHandle
from ..core.parallel import parallel
from ..margo.ult import UltSleep
from ..mercury import BulkHandle
from ..storage.local import LocalStore
from .fileset import FileSet, RemiError

__all__ = ["RemiClient", "MigrationHandle", "MigrationReport", "AUTO_RDMA_THRESHOLD"]

#: ``auto`` picks RDMA when the mean file size is at least this.
AUTO_RDMA_THRESHOLD = 256 * 1024

DEFAULT_CHUNK_SIZE = 1 << 20  # 1 MiB
DEFAULT_WINDOW = 4  # chunks in flight


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one fileset migration."""

    method: str
    num_files: int
    total_bytes: int
    num_chunks: int
    duration: float


class MigrationHandle(ResourceHandle):
    """Handle to a remote REMI provider; migration driver."""

    def migrate_fileset(
        self,
        fileset: FileSet,
        method: str = "auto",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        window: int = DEFAULT_WINDOW,
    ) -> Generator:
        """Transfer every file in ``fileset`` to the remote provider."""
        if method not in ("auto", "rdma", "chunks"):
            raise RemiError(f"unknown migration method {method!r}")
        if chunk_size <= 0:
            raise RemiError(f"chunk size must be positive, got {chunk_size}")
        if window <= 0:
            raise RemiError(f"window must be positive, got {window}")
        margo = self.client.margo
        started = margo.kernel.now
        files = fileset.read_all()
        total_bytes = sum(len(data) for _, data in files)
        if method == "auto":
            mean = total_bytes / len(files) if files else 0
            method = "rdma" if mean >= AUTO_RDMA_THRESHOLD else "chunks"

        num_chunks = 0
        if method == "rdma":
            # Memory-map each file and let the destination pull it; the
            # storage read streams concurrently with the transfer, so its
            # cost travels with the request and is overlapped at the
            # receiver (see RemiProvider._on_recv_file).
            for path, data in files:
                bulk = BulkHandle(margo.address, len(data), data)
                yield from self._forward(
                    "recv_file",
                    {
                        "path": path,
                        "bulk": bulk,
                        "src_read_cost": fileset.store.read_cost(len(data)),
                    },
                )
        else:
            yield UltSleep(fileset.store.read_cost(total_bytes))
            chunks = self._pack(files, chunk_size)
            num_chunks = len(chunks)
            # Pipeline: up to `window` chunk RPCs in flight.
            from ..core.parallel import ParallelError

            for wave_start in range(0, len(chunks), window):
                wave = chunks[wave_start : wave_start + window]
                try:
                    yield from parallel(
                        margo,
                        [
                            self._forward("recv_chunk", {"pieces": chunk})
                            for chunk in wave
                        ],
                    )
                except ParallelError as err:
                    # Surface the underlying transport/remote error.
                    raise err.errors[0][1]
        summary = yield from self._forward("finalize")
        duration = margo.kernel.now - started
        return MigrationReport(
            method=method,
            num_files=len(files),
            total_bytes=total_bytes,
            num_chunks=num_chunks,
            duration=duration,
        )

    def migrate_files(
        self, paths: list[str], store: Optional[LocalStore] = None, **kwargs: Any
    ) -> Generator:
        """Convenience: build the fileset from this process's local store."""
        if store is None:
            store = self.client.margo.process.node.attachments.get("disk")
            if not isinstance(store, LocalStore):
                raise RemiError("no 'disk' LocalStore attached to the source node")
        report = yield from self.migrate_fileset(FileSet(store, list(paths)), **kwargs)
        return report

    @staticmethod
    def _pack(
        files: list[tuple[str, bytes]], chunk_size: int
    ) -> list[list[tuple[str, int, int, bytes]]]:
        """Pack file pieces into chunks of at most ``chunk_size`` bytes.

        Large files are split across chunks; small files are batched
        together -- exactly the packing the paper describes.
        """
        chunks: list[list[tuple[str, int, int, bytes]]] = []
        current: list[tuple[str, int, int, bytes]] = []
        room = chunk_size
        for path, data in files:
            total_size = len(data)
            offset = 0
            if total_size == 0:
                piece = (path, 0, 0, b"")
                if room <= 0:
                    chunks.append(current)
                    current, room = [], chunk_size
                current.append(piece)
                continue
            while offset < total_size:
                take = min(room, total_size - offset)
                current.append((path, offset, total_size, data[offset : offset + take]))
                offset += take
                room -= take
                if room == 0:
                    chunks.append(current)
                    current, room = [], chunk_size
        if current:
            chunks.append(current)
        return chunks


class RemiClient(Client):
    """Client library of the REMI component."""

    component_type = "remi"
    handle_cls = MigrationHandle

    def make_handle(self, address: str, provider_id: int) -> MigrationHandle:
        return MigrationHandle(self, address, provider_id)

    def migrate_files(
        self,
        dest_address: str,
        paths: list[str],
        dest_provider_id: int = 0,
        store: Optional[LocalStore] = None,
        **kwargs: Any,
    ) -> Generator:
        """One-shot: migrate ``paths`` from this node's store to the REMI
        provider at (dest_address, dest_provider_id).

        This is the interface component ``migrate`` hooks use (paper
        section 6, Observation 5).
        """
        handle = self.make_handle(dest_address, dest_provider_id)
        report = yield from handle.migrate_files(paths, store=store, **kwargs)
        return report
