"""Colza-like elastic in situ analysis (paper section 6, Observation 7).

Colza providers "declare a dependency on SSG to keep track of the
group's view and maintain a hash of this view.  Any RPC sent by client
applications has this hash as an argument.  A mismatch between the hash
sent by the client and the hash maintained by a Colza provider informs
the latter that the client's view of the group is outdated."

The provider stages data chunks per iteration and executes a reduction
pipeline over them; every data-plane RPC carries the caller's view hash
and is rejected (with the fresh view attached) when stale.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.component import Provider
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute
from ..ssg.group import SSGGroup

__all__ = ["ColzaProvider", "ColzaError", "STATUS_OK", "STATUS_STALE_VIEW"]

STATUS_OK = "ok"
STATUS_STALE_VIEW = "stale-view"

#: CPU cost of processing one staged byte in the pipeline.
PIPELINE_BYTE_COST = 1.0 / 5e9


class ColzaError(RuntimeError):
    """Colza-level failure."""


class ColzaProvider(Provider):
    """One member of the elastic staging/analysis service."""

    component_type = "colza"

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        group: SSGGroup,
        pool: Any = None,
        config: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(margo, name, provider_id, pool=pool, config=config)
        self.group = group
        #: iteration -> list of staged chunks (bytes).
        self.staged: dict[int, list[bytes]] = {}
        self.stale_rejections = 0
        # 2PC-consistent views (paper: "Colza uses a two-phase commit
        # approach, with the application itself acting as a controller").
        # When set, the committed view overrides the eventually
        # consistent SSG-derived one.
        self.committed_view: Optional[list[str]] = None
        self._pending_view: Optional[tuple[str, list[str]]] = None  # (txid, members)
        self.register_rpc("stage", self._on_stage)
        self.register_rpc("execute", self._on_execute)
        self.register_rpc("get_view", self._on_get_view)
        self.register_rpc("prepare_view", self._on_prepare_view)
        self.register_rpc("commit_view", self._on_commit_view)
        self.register_rpc("abort_view", self._on_abort_view)

    # ------------------------------------------------------------------
    def _current_members(self) -> list[str]:
        if self.committed_view is not None:
            return sorted(self.committed_view)
        return list(self.group.view.members)

    def _check_view(self, client_hash: str) -> Optional[dict[str, Any]]:
        from ..ssg.view import view_hash_of

        members = self._current_members()
        current_hash = view_hash_of(members)
        if client_hash != current_hash:
            self.stale_rejections += 1
            return {
                "status": STATUS_STALE_VIEW,
                "members": members,
                "view_hash": current_hash,
            }
        return None

    def _on_stage(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        yield Compute(300e-9)
        stale = self._check_view(args["view_hash"])
        if stale is not None:
            return stale
        chunk = args["chunk"]
        yield Compute(len(chunk) / 10e9)
        self.staged.setdefault(args["iteration"], []).append(chunk)
        return {"status": STATUS_OK}

    def _on_execute(self, ctx: RequestContext) -> Generator:
        """Run the analysis pipeline over this member's staged chunks."""
        args = ctx.args
        yield Compute(300e-9)
        stale = self._check_view(args["view_hash"])
        if stale is not None:
            return stale
        chunks = self.staged.pop(args["iteration"], [])
        total = sum(len(c) for c in chunks)
        yield Compute(total * PIPELINE_BYTE_COST)
        # A simple deterministic "render": per-member checksum + volume.
        checksum = 0
        for chunk in chunks:
            checksum = (checksum + sum(chunk[:256])) % (1 << 32)
        return {
            "status": STATUS_OK,
            "chunks": len(chunks),
            "bytes": total,
            "checksum": checksum,
        }

    def _on_get_view(self, ctx: RequestContext) -> Generator:
        from ..ssg.view import view_hash_of

        yield Compute(100e-9)
        members = self._current_members()
        return {"members": members, "view_hash": view_hash_of(members)}

    # ------------------------------------------------------------------
    # 2PC-consistent view updates (application as the controller)
    # ------------------------------------------------------------------
    def _on_prepare_view(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        yield Compute(200e-9)
        txid, members = args["txid"], sorted(args["members"])
        if self._pending_view is not None and self._pending_view[0] != txid:
            return {"vote": False, "reason": f"view tx {self._pending_view[0]} pending"}
        if self.margo.address not in members:
            return {"vote": False, "reason": "I am not part of the proposed view"}
        self._pending_view = (txid, members)
        return {"vote": True}

    def _on_commit_view(self, ctx: RequestContext) -> Generator:
        yield Compute(200e-9)
        txid = ctx.args["txid"]
        if self._pending_view is None or self._pending_view[0] != txid:
            raise ColzaError(f"commit of unknown view transaction {txid}")
        self.committed_view = self._pending_view[1]
        self._pending_view = None
        return None

    def _on_abort_view(self, ctx: RequestContext) -> Generator:
        yield Compute(200e-9)
        if self._pending_view is not None and self._pending_view[0] == ctx.args["txid"]:
            self._pending_view = None
        return None
