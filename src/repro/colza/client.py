"""Colza client: view-hash-stamped staging with automatic refresh.

Implements the client side of the protocol: every RPC carries the
client's view hash; a ``stale-view`` reply makes the client adopt the
fresh view and retry.  This is how "several strategies can be put in
place to react to a change in the service's group" (paper section 6) --
here, the Colza strategy.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.component import Client, ResourceHandle
from ..core.parallel import parallel
from ..margo.errors import RpcError
from ..margo.runtime import MargoInstance
from ..ssg.view import view_hash_of
from .provider import STATUS_OK, STATUS_STALE_VIEW, ColzaError

__all__ = ["ColzaClient", "PipelineHandle"]


class PipelineHandle:
    """Handle to the whole elastic pipeline (all members)."""

    def __init__(
        self, client: "ColzaClient", members: list[str], provider_id: int
    ) -> None:
        if not members:
            raise ColzaError("pipeline needs at least one member")
        self.client = client
        self.provider_id = provider_id
        self.members = sorted(members)
        self.view_hash = view_hash_of(self.members)
        self.view_refreshes = 0

    # ------------------------------------------------------------------
    def _call(self, member: str, operation: str, args: dict[str, Any]) -> Generator:
        args = dict(args, view_hash=self.view_hash)
        reply = yield from self.client.margo.forward(
            member,
            f"colza_{operation}",
            args,
            provider_id=self.provider_id,
            timeout=2.0,
        )
        return reply

    def _refresh_from(self, reply: dict[str, Any]) -> None:
        self.members = sorted(reply["members"])
        self.view_hash = reply["view_hash"]
        self.view_refreshes += 1

    def refresh(self) -> Generator:
        """Explicitly re-fetch the view from any live member."""
        last: Optional[BaseException] = None
        for member in self.members:
            try:
                reply = yield from self._call(member, "get_view", {})
            except RpcError as err:
                last = err
                continue
            self._refresh_from(reply)
            return self.view_hash
        raise ColzaError("no live pipeline member to refresh from") from last

    # ------------------------------------------------------------------
    def stage(self, iteration: int, chunks: list[bytes], max_retries: int = 4) -> Generator:
        """Distribute ``chunks`` round-robin over the current view.

        On a stale-view rejection the client adopts the new view and
        retries the affected chunks.
        """
        pending = list(chunks)
        for _attempt in range(max_retries + 1):
            failures: list[bytes] = []
            stale_reply: Optional[dict[str, Any]] = None
            for index, chunk in enumerate(pending):
                member = self.members[index % len(self.members)]
                try:
                    reply = yield from self._call(
                        member, "stage", {"iteration": iteration, "chunk": chunk}
                    )
                except RpcError:
                    failures.append(chunk)  # dead member: retry after refresh
                    continue
                if reply["status"] == STATUS_STALE_VIEW:
                    stale_reply = reply
                    failures.append(chunk)
                elif reply["status"] != STATUS_OK:
                    raise ColzaError(f"stage failed: {reply}")
            if not failures:
                return None
            if stale_reply is not None:
                self._refresh_from(stale_reply)
            else:
                yield from self.refresh()
            pending = failures
        raise ColzaError(f"staging failed after {max_retries} view refreshes")

    def execute(self, iteration: int, max_retries: int = 4) -> Generator:
        """Run the pipeline collectively on every member; returns the
        merged result."""
        for _attempt in range(max_retries + 1):
            try:
                replies = yield from parallel(
                    self.client.margo,
                    [
                        self._call(member, "execute", {"iteration": iteration})
                        for member in self.members
                    ],
                )
            except Exception:
                yield from self.refresh()
                continue
            if any(r["status"] == STATUS_STALE_VIEW for r in replies):
                stale = next(r for r in replies if r["status"] == STATUS_STALE_VIEW)
                self._refresh_from(stale)
                continue
            return {
                "chunks": sum(r["chunks"] for r in replies),
                "bytes": sum(r["bytes"] for r in replies),
                "checksum": sum(r["checksum"] for r in replies) % (1 << 32),
                "members": len(replies),
            }
        raise ColzaError(f"execute failed after {max_retries} view refreshes")


    # ------------------------------------------------------------------
    # 2PC-consistent view change (the application as controller)
    # ------------------------------------------------------------------
    _tx_counter = 0

    def update_view(self, new_members: list[str]) -> Generator:
        """Atomically switch the pipeline to ``new_members``.

        Two-phase commit driven by the application: every *new* member
        must prepare; on unanimous yes the view commits everywhere and
        this handle adopts it; otherwise the change aborts and the old
        view stays valid.  Unlike the SSG-derived view, the committed
        view is strongly consistent: no member ever serves two different
        views for the same hash.
        """
        if not new_members:
            raise ColzaError("new view must have at least one member")
        PipelineHandle._tx_counter += 1
        txid = f"view:{self.client.margo.address}:{PipelineHandle._tx_counter}"
        participants = sorted(set(new_members))

        def phase(operation: str) -> Generator:
            replies = yield from parallel(
                self.client.margo,
                [
                    self.client.margo.forward(
                        member,
                        f"colza_{operation}",
                        {"txid": txid, "members": participants},
                        provider_id=self.provider_id,
                        timeout=2.0,
                    )
                    for member in participants
                ],
            )
            return replies

        votes = yield from phase("prepare_view")
        if all(v.get("vote") for v in votes):
            yield from phase("commit_view")
            self.members = participants
            self.view_hash = view_hash_of(self.members)
            return True
        yield from phase("abort_view")
        reasons = [v.get("reason") for v in votes if not v.get("vote")]
        raise ColzaError(f"view change aborted: {'; '.join(map(str, reasons))}")


class ColzaClient(Client):
    """Client library of the Colza component."""

    component_type = "colza"
    handle_cls = ResourceHandle  # unused; Colza uses pipeline handles

    def make_pipeline_handle(
        self, members: list[str], provider_id: int = 1
    ) -> PipelineHandle:
        return PipelineHandle(self, members, provider_id)
