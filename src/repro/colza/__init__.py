"""Colza: elastic in situ analysis with SSG view-hash staleness detection."""

from .client import ColzaClient, PipelineHandle
from .provider import ColzaError, ColzaProvider, STATUS_OK, STATUS_STALE_VIEW

__all__ = [
    "ColzaProvider",
    "ColzaClient",
    "PipelineHandle",
    "ColzaError",
    "STATUS_OK",
    "STATUS_STALE_VIEW",
]
