"""Wire-size estimation and serialization cost model.

Mercury serializes RPC input/output structures into network buffers.  In
the simulation, payloads stay as Python objects; what matters is (a) how
many bytes they would occupy on the wire -- which drives network transfer
time -- and (b) how long encoding/decoding takes -- which drives the CPU
cost attributed to the serialization phases that the paper's monitoring
distinguishes (section 4: "from the serialization of input and output
data to the scheduling of ULTs").
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "estimate_size",
    "serialize_cost",
    "deserialize_cost",
    "SER_BASE_COST",
    "SER_BYTES_PER_SECOND",
]

# Fixed per-call encoder setup cost plus a throughput term.  8 GB/s is a
# reasonable memcpy-bound figure for a tuned C encoder.
SER_BASE_COST = 150e-9
SER_BYTES_PER_SECOND = 8e9

_CONTAINER_OVERHEAD = 8
_PRIMITIVE_SIZES = {int: 8, float: 8, bool: 1, type(None): 1}


def estimate_size(obj: Any) -> int:
    """Approximate the encoded size of ``obj`` in bytes.

    Deterministic and cheap; handles the JSON-ish values RPC payloads are
    made of, plus raw ``bytes`` buffers (data-plane payloads).
    """
    # Objects can declare their own wire footprint; bulk handles use this
    # so that RDMA-bound payloads are not double-charged as RPC payload.
    declared = getattr(obj, "__wire_size__", None)
    if declared is not None:
        return declared
    t = type(obj)
    prim = _PRIMITIVE_SIZES.get(t)
    if prim is not None:
        return prim
    if t is bytes or t is bytearray or t is memoryview:
        return len(obj)
    if t is str:
        return len(obj.encode("utf-8", errors="replace")) + 4
    if t is list or t is tuple:
        return _CONTAINER_OVERHEAD + sum(estimate_size(item) for item in obj)
    if t is dict:
        return _CONTAINER_OVERHEAD + sum(
            estimate_size(k) + estimate_size(v) for k, v in obj.items()
        )
    if t is set or t is frozenset:
        return _CONTAINER_OVERHEAD + sum(estimate_size(item) for item in obj)
    if isinstance(obj, (int, float)):  # numpy scalars, enums, bools subclassing int
        return 8
    # Dataclass-like objects with __dict__: encode their fields.
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return _CONTAINER_OVERHEAD + estimate_size(attrs)
    slots = getattr(obj, "__slots__", None)
    if slots is not None:
        return _CONTAINER_OVERHEAD + sum(
            estimate_size(getattr(obj, s)) for s in slots if hasattr(obj, s)
        )
    raise TypeError(f"cannot estimate wire size of {type(obj).__name__}")


def serialize_cost(size: int) -> float:
    """CPU seconds to encode ``size`` bytes."""
    return SER_BASE_COST + size / SER_BYTES_PER_SECOND


def deserialize_cost(size: int) -> float:
    """CPU seconds to decode ``size`` bytes (same model as encoding)."""
    return SER_BASE_COST + size / SER_BYTES_PER_SECOND
