"""Bulk (RDMA) transfer descriptors.

Mercury bulk handles describe registered memory regions; the actual
transfer is one-sided and does not pass through the receiving process's
RPC dispatch path -- which is why it is the efficient option for large
payloads (paper section 6, REMI's memory-mapped file transfer).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BulkHandle", "BULK_OP_PULL", "BULK_OP_PUSH", "BULK_SETUP_COST"]

BULK_OP_PULL = "pull"
BULK_OP_PUSH = "push"

#: One-time cost of registering memory and exchanging the handle
#: (registration, key exchange); charged per bulk operation.
BULK_SETUP_COST = 1.5e-6


@dataclass
class BulkHandle:
    """A remotely accessible memory region of ``size`` bytes.

    ``data`` carries the region's contents through the simulation; it is
    excluded from the RPC wire size (``__wire_size__``) because the bytes
    move via the one-sided bulk path, not inside the RPC message.
    """

    owner_address: str
    size: int
    data: bytes = b""

    #: What the handle itself occupies inside an RPC message.
    __wire_size__ = 32

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative bulk size: {self.size}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BulkHandle {self.owner_address} size={self.size}>"
