"""Mercury core concepts: RPC identifiers and wire messages.

Mercury identifies an RPC by a 32-bit hash of its registered name; the
paper's Listing 1 shows such an id (2924675071 for "echo"-adjacent
registration).  We use CRC-32 of the name, which is stable across
processes -- a property the dispatch path relies on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Optional

__all__ = [
    "rpc_id_of",
    "NULL_PROVIDER",
    "NULL_RPC",
    "RPCRequest",
    "RPCResponse",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_NO_RPC",
]

#: Provider id used when an RPC is not directed at a specific provider,
#: and as the "no parent" marker in monitoring keys (paper Listing 1).
NULL_PROVIDER = 65535

#: RPC id used as the "no parent RPC" marker.
NULL_RPC = 65535

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_NO_RPC = "no_rpc"


@lru_cache(maxsize=4096)
def rpc_id_of(name: str) -> int:
    """Stable 32-bit id for an RPC name (CRC-32, like Mercury's hash).

    Memoized: the id is recomputed on every ``forward()`` and the set of
    RPC names in a deployment is small and fixed.
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


@dataclass
class RPCRequest:
    """A request message on the wire."""

    seq: int
    rpc_id: int
    rpc_name: str
    provider_id: int
    args: Any
    payload_size: int
    src_address: str
    dst_address: str = ""
    parent_rpc_id: int = NULL_RPC
    parent_provider_id: int = NULL_PROVIDER
    #: Trace context (repro.observability): the causal tree this call
    #: belongs to, this call's span id, and the span that issued it.
    #: Stamped by the Margo forward path; generalizes the Listing-1
    #: parent_rpc_id chain to per-call identity.
    trace_id: str = ""
    span_id: str = ""
    parent_span_id: str = ""

    #: Fixed header size added to the payload on the wire.
    HEADER_SIZE = 64

    @property
    def wire_size(self) -> int:
        return self.HEADER_SIZE + self.payload_size


@dataclass
class RPCResponse:
    """A response message on the wire."""

    seq: int
    status: str
    value: Any
    payload_size: int
    src_address: str
    error_message: Optional[str] = None

    HEADER_SIZE = 48

    @property
    def wire_size(self) -> int:
        return self.HEADER_SIZE + self.payload_size
