"""Mercury-like RPC substrate: ids, wire messages, sizes, bulk handles."""

from .bulk import BULK_OP_PULL, BULK_OP_PUSH, BULK_SETUP_COST, BulkHandle
from .hg import (
    NULL_PROVIDER,
    NULL_RPC,
    RPCRequest,
    RPCResponse,
    STATUS_ERROR,
    STATUS_NO_RPC,
    STATUS_OK,
    rpc_id_of,
)
from .serialization import deserialize_cost, estimate_size, serialize_cost

__all__ = [
    "rpc_id_of",
    "NULL_PROVIDER",
    "NULL_RPC",
    "RPCRequest",
    "RPCResponse",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_NO_RPC",
    "BulkHandle",
    "BULK_OP_PULL",
    "BULK_OP_PUSH",
    "BULK_SETUP_COST",
    "estimate_size",
    "serialize_cost",
    "deserialize_cost",
]
