"""The customizable monitoring interface (paper section 4).

Margo "lets users inject callbacks to be invoked at various points in
the lifetime of an RPC, for example when the RPC is sent, when it is
received, and when it starts and stops executing."  :class:`Monitor`
defines those points as no-op methods; :class:`CallbackMonitor` turns a
dict of user callbacks into a monitor; the default
:class:`~repro.monitoring.stats_monitor.StatisticsMonitor` captures the
Listing-1 statistics.

Every hook receives ``time`` (simulated seconds), ``margo`` (the
instance firing the hook), and hook-specific keyword arguments; the RPC
fast path charges a small configurable cost per fired hook so that
monitoring overhead is part of the simulated cost model (see benchmark
E2).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

__all__ = ["Monitor", "CallbackMonitor", "HOOK_NAMES"]

HOOK_NAMES = (
    "on_forward_start",
    "on_forward_sent",
    "on_response_received",
    "on_request_received",
    "on_ult_enqueued",
    "on_ult_start",
    "on_ult_complete",
    "on_respond",
    "on_bulk_transfer",
    "on_finalize",
)


class Monitor:
    """Base monitor: every lifecycle hook is a no-op.

    Subclass and override the hooks of interest.  Hooks must not raise;
    a monitoring failure must never take the data path down.
    """

    def on_forward_start(self, time: float, margo: Any, request: Any) -> None:
        """Client side: an RPC is about to be serialized and sent."""

    def on_forward_sent(self, time: float, margo: Any, request: Any) -> None:
        """Client side: the request hit the wire."""

    def on_response_received(
        self, time: float, margo: Any, request: Any, response: Any, elapsed: float
    ) -> None:
        """Client side: the response arrived; ``elapsed`` is end-to-end."""

    def on_request_received(self, time: float, margo: Any, request: Any) -> None:
        """Server side: the progress loop pulled the request off the wire."""

    def on_ult_enqueued(self, time: float, margo: Any, request: Any, pool: Any) -> None:
        """Server side: a handler ULT was pushed to ``pool``."""

    def on_ult_start(
        self, time: float, margo: Any, request: Any, queued_for: float
    ) -> None:
        """Server side: the handler ULT started; ``queued_for`` is pool wait."""

    def on_ult_complete(
        self, time: float, margo: Any, request: Any, duration: float, queued_for: float
    ) -> None:
        """Server side: the handler body finished executing."""

    def on_respond(self, time: float, margo: Any, request: Any, response: Any) -> None:
        """Server side: the response hit the wire."""

    def on_bulk_transfer(
        self, time: float, margo: Any, remote: str, size: int, op: str, duration: float
    ) -> None:
        """Either side: a one-sided bulk (RDMA) transfer completed."""

    def on_finalize(self, time: float, margo: Any) -> None:
        """The Margo instance is shutting down (dump/flush point)."""


class CallbackMonitor(Monitor):
    """Adapts a ``{hook_name: callable}`` mapping into a monitor.

    This is the paper's "inject callbacks" API: users provide plain
    functions for just the lifecycle points they care about.
    """

    def __init__(self, callbacks: Mapping[str, Callable[..., None]]) -> None:
        unknown = set(callbacks) - set(HOOK_NAMES)
        if unknown:
            raise ValueError(
                f"unknown monitoring hooks {sorted(unknown)}; valid hooks: {HOOK_NAMES}"
            )
        for name, fn in callbacks.items():
            setattr(self, name, self._wrap(fn))

    @staticmethod
    def _wrap(fn: Callable[..., None]) -> Callable[..., None]:
        def hook(**kwargs: Any) -> None:
            fn(**kwargs)

        return hook
