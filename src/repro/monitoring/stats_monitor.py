"""The default monitoring implementation: Listing-1 statistics.

Captures, per RPC *context key*
``"<parent_rpc_id>:<parent_provider_id>:<rpc_id>:<provider_id>"``
(exactly the key format of paper Listing 1), streaming statistics for
every phase of the RPC lifecycle, split by origin/target role and by
peer address ("received from na+sm://..." / "sent to ...").

The collected document is available at run time via :meth:`to_json`
(the paper: "makes them available at run time via an API") and is
dumped as JSON on finalize when a ``dump_callback`` is provided (the
paper: "outputs them as JSON when shutting down the service").
"""

from __future__ import annotations

import json
from typing import Any, Callable, Optional

from ..mercury import NULL_PROVIDER, NULL_RPC
from .monitor import Monitor
from .statistics import RunningStats

__all__ = ["StatisticsMonitor", "rpc_key"]


def rpc_key(request: Any) -> str:
    """Listing-1 context key for a request."""
    return (
        f"{request.parent_rpc_id}:{request.parent_provider_id}:"
        f"{request.rpc_id}:{request.provider_id}"
    )


class _RpcRecord:
    """Statistics for one RPC context key."""

    __slots__ = ("rpc_id", "provider_id", "parent_rpc_id", "parent_provider_id", "name",
                 "origin", "target")

    def __init__(self, request: Any) -> None:
        self.rpc_id = request.rpc_id
        self.provider_id = request.provider_id
        self.parent_rpc_id = request.parent_rpc_id
        self.parent_provider_id = request.parent_provider_id
        self.name = request.rpc_name
        # origin: per "sent to <addr>" -> phase -> RunningStats
        self.origin: dict[str, dict[str, RunningStats]] = {}
        # target: per "received from <addr>" -> phase -> RunningStats
        self.target: dict[str, dict[str, RunningStats]] = {}

    def _phase(self, side: dict, peer_label: str, phase: str) -> RunningStats:
        peer = side.setdefault(peer_label, {})
        stats = peer.get(phase)
        if stats is None:
            stats = RunningStats()
            peer[phase] = stats
        return stats

    def to_json(self) -> dict[str, Any]:
        def render(side: dict[str, dict[str, RunningStats]]) -> dict:
            out: dict[str, Any] = {}
            for peer, phases in side.items():
                peer_doc: dict[str, Any] = {}
                for phase, stats in phases.items():
                    if phase.startswith("ult_"):
                        # Listing 1 nests ULT phases under "ult".
                        peer_doc.setdefault("ult", {})[phase[4:]] = stats.to_json()
                    else:
                        peer_doc[phase] = stats.to_json()
                out[peer] = peer_doc
            return out

        return {
            "rpc_id": self.rpc_id,
            "provider_id": self.provider_id,
            "parent_rpc_id": self.parent_rpc_id,
            "parent_provider_id": self.parent_provider_id,
            "name": self.name,
            "origin": render(self.origin),
            "target": render(self.target),
        }


class StatisticsMonitor(Monitor):
    """Aggregates per-RPC statistics in the paper's Listing-1 schema.

    Parameters
    ----------
    dump_callback:
        Optional ``callable(json_text)`` invoked on finalize with the
        full JSON document (models Margo writing the stats file at
        shutdown).
    """

    def __init__(self, dump_callback: Optional[Callable[[str], None]] = None) -> None:
        self._rpcs: dict[str, _RpcRecord] = {}
        self._bulk = RunningStats()
        self._bulk_bytes = RunningStats()
        self._pending_forward: dict[int, float] = {}
        self.dump_callback = dump_callback
        self.finalized_at: Optional[float] = None

    # ------------------------------------------------------------------
    def _record(self, request: Any) -> _RpcRecord:
        key = rpc_key(request)
        record = self._rpcs.get(key)
        if record is None:
            record = _RpcRecord(request)
            self._rpcs[key] = record
        return record

    # ---- origin (client) side ----------------------------------------
    def on_forward_start(self, time: float, margo: Any, request: Any) -> None:
        self._pending_forward[id(request)] = time

    def on_forward_sent(self, time: float, margo: Any, request: Any) -> None:
        started = self._pending_forward.get(id(request))
        if started is None:
            return
        record = self._record(request)
        # wire-bound serialization+send phase
        record._phase(record.origin, f"sent to {request_dst(request, margo)}", "serialize") \
            .update(time - started)

    def on_response_received(
        self, time: float, margo: Any, request: Any, response: Any, elapsed: float
    ) -> None:
        self._pending_forward.pop(id(request), None)
        record = self._record(request)
        record._phase(
            record.origin, f"sent to {request_dst(request, margo)}", "forward"
        ).update(elapsed)

    # ---- target (server) side ----------------------------------------
    def on_request_received(self, time: float, margo: Any, request: Any) -> None:
        record = self._record(request)
        record._phase(
            record.target, f"received from {request.src_address}", "received"
        ).update(0.0)

    def on_ult_start(self, time: float, margo: Any, request: Any, queued_for: float) -> None:
        record = self._record(request)
        record._phase(
            record.target, f"received from {request.src_address}", "ult_queued"
        ).update(queued_for)

    def on_ult_complete(
        self, time: float, margo: Any, request: Any, duration: float, queued_for: float
    ) -> None:
        record = self._record(request)
        record._phase(
            record.target, f"received from {request.src_address}", "ult_duration"
        ).update(duration)

    # ---- bulk ----------------------------------------------------------
    def on_bulk_transfer(
        self, time: float, margo: Any, remote: str, size: int, op: str, duration: float
    ) -> None:
        self._bulk.update(duration)
        self._bulk_bytes.update(float(size))

    # ---- finalize -------------------------------------------------------
    def on_finalize(self, time: float, margo: Any) -> None:
        self.finalized_at = time
        if self.dump_callback is not None:
            self.dump_callback(self.dumps())

    # ------------------------------------------------------------------
    # query API (available at run time, paper section 4)
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"rpcs": {k: r.to_json() for k, r in self._rpcs.items()}}
        if self._bulk.num:
            doc["bulk"] = {
                "duration": self._bulk.to_json(),
                "size": self._bulk_bytes.to_json(),
            }
        return doc

    def dumps(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def find_by_name(self, name: str) -> list[dict[str, Any]]:
        """All records whose RPC name matches (there may be several
        context keys: one per parent context / provider id)."""
        return [r.to_json() for r in self._rpcs.values() if r.name == name]

    def rpc_names(self) -> set[str]:
        return {r.name for r in self._rpcs.values()}

    @property
    def num_contexts(self) -> int:
        return len(self._rpcs)


def request_dst(request: Any, margo: Any) -> str:
    """Label of the peer the request was sent to."""
    dst = getattr(request, "dst_address", None)
    return dst if dst is not None else f"provider {request.provider_id}"
