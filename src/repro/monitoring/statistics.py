"""Streaming statistics (Welford) rendered in the paper's JSON shape.

Listing 1 shows duration statistics as ``{"num": 3, "avg": ..., "max":
...}``; :class:`RunningStats` accumulates those plus min/var/sum in one
pass with O(1) state.
"""

from __future__ import annotations

from typing import Any

__all__ = ["RunningStats"]


class RunningStats:
    """Single-pass mean/variance/min/max accumulator."""

    __slots__ = ("num", "_mean", "_m2", "min", "max", "sum")

    def __init__(self) -> None:
        self.num = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.sum = 0.0

    def update(self, value: float) -> None:
        self.num += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        delta = value - self._mean
        self._mean += delta / self.num
        self._m2 += delta * (value - self._mean)

    @property
    def avg(self) -> float:
        return self._mean if self.num else 0.0

    @property
    def var(self) -> float:
        """Population variance."""
        return self._m2 / self.num if self.num else 0.0

    def merge(self, other: "RunningStats") -> None:
        """Combine another accumulator into this one (parallel Welford)."""
        if other.num == 0:
            return
        if self.num == 0:
            self.num = other.num
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.sum = other.sum
            return
        total = self.num + other.num
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.num * other.num / total
        self._mean = (self._mean * self.num + other._mean * other.num) / total
        self.num = total
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_json(self) -> dict[str, Any]:
        """Listing-1-style rendering."""
        if self.num == 0:
            return {"num": 0}
        return {
            "num": self.num,
            "avg": self.avg,
            "min": self.min,
            "max": self.max,
            "var": self.var,
            "sum": self.sum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RunningStats n={self.num} avg={self.avg:.3g}>"
