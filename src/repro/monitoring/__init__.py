"""Unified performance introspection for Mochi components (paper section 4).

Attach a :class:`StatisticsMonitor` to a Margo instance and every
component on that instance participates in monitoring "at no engineering
cost"; inject :class:`CallbackMonitor` callbacks for custom probes; run
a :class:`PeriodicSampler` for pool-size / in-flight-RPC time series.
"""

from .monitor import CallbackMonitor, HOOK_NAMES, Monitor
from .sampler import PeriodicSampler
from .statistics import RunningStats
from .stats_monitor import StatisticsMonitor, rpc_key

__all__ = [
    "Monitor",
    "CallbackMonitor",
    "HOOK_NAMES",
    "StatisticsMonitor",
    "rpc_key",
    "PeriodicSampler",
    "RunningStats",
]
