"""Periodic state sampler.

The paper (section 4): the monitoring infrastructure "periodically
tracks the number of in-flight RPCs and the sizes of user-level thread
pools so as to provide users with a complete view of what is happening
inside a Mochi process at any time."

:class:`PeriodicSampler` observes a Margo instance on a fixed simulated
period.  It samples from a kernel timer -- modelling Margo's dedicated
monitoring thread -- so that a saturated execution stream cannot starve
the observer (which would bias the samples toward idle moments).
"""

from __future__ import annotations

from typing import Any, Optional

from ..margo.runtime import MargoInstance
from .statistics import RunningStats

__all__ = ["PeriodicSampler"]


class PeriodicSampler:
    """Samples ``margo.snapshot()`` every ``period`` simulated seconds."""

    def __init__(
        self,
        margo: MargoInstance,
        period: float = 1.0,
        max_samples: Optional[int] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"sampler period must be positive, got {period}")
        self.margo = margo
        self.period = period
        self.max_samples = max_samples
        self.samples: list[dict[str, Any]] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            raise RuntimeError("sampler already running")
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running or self.margo.finalized:
            self._running = False
            return
        self.samples.append(self.margo.snapshot())
        if self.max_samples is not None and len(self.samples) >= self.max_samples:
            self._running = False
            return
        self.margo.kernel.schedule(self.period, self._tick)

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    @property
    def latest(self) -> Optional[dict[str, Any]]:
        return self.samples[-1] if self.samples else None

    def pool_size_stats(self, pool_name: str) -> RunningStats:
        """Aggregate the sampled queue length of one pool."""
        stats = RunningStats()
        for sample in self.samples:
            size = sample["pools"].get(pool_name)
            if size is not None:
                stats.update(float(size))
        return stats

    def inflight_stats(self, direction: str = "incoming") -> RunningStats:
        if direction not in ("incoming", "outgoing"):
            raise ValueError("direction must be 'incoming' or 'outgoing'")
        key = f"inflight_{direction}"
        stats = RunningStats()
        for sample in self.samples:
            stats.update(float(sample[key]))
        return stats
