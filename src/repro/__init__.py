"""repro -- a Python reproduction of the dynamic-Mochi methodology.

Implements the system described in "Extending the Mochi Methodology to
Enable Dynamic HPC Data Services" (Dorier et al., 2024): a composable
HPC data-service framework with performance introspection, online
reconfiguration, elasticity, and resilience, running on a deterministic
discrete-event substrate.

Quick start::

    from repro import Cluster

    cluster = Cluster(seed=1)
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1")
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        return (yield from client.forward(server.address, "echo", "hi"))

    assert cluster.run_ult(client, driver()) == "hi"

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-claim-to-benchmark mapping.
"""

from .cluster import Cluster, UltFailedError

__version__ = "1.0.0"

__all__ = ["Cluster", "UltFailedError", "__version__"]
