"""The Margo runtime: shared threading + networking for all components.

One :class:`MargoInstance` lives in each simulated process.  It owns the
Argobots-style pools and execution streams (built from a Listing-2 JSON
configuration), runs the network progress loop as a ULT in the
``progress_pool`` (paper Fig. 2), dispatches incoming RPCs to handler
ULTs in per-registration pools, and exposes:

* a client path (:meth:`forward`) that serializes, sends, and blocks the
  calling ULT until the response arrives (or a timeout fires);
* a bulk path (:meth:`bulk_transfer`) modelling one-sided RDMA;
* **online reconfiguration** (paper section 5): ``add_pool``,
  ``remove_pool``, ``add_xstream``, ``remove_xstream``, with the validity
  checks the paper describes ("not allowing adding multiple pools with
  the same name or removing a pool that is in use by an ES");
* monitoring hooks fired at every step of the RPC lifecycle (section 4).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

from ..analysis import sanitize as _sanitize
from ..analysis.race import hooks as _race
from ..mercury import (
    BULK_OP_PULL,
    BULK_OP_PUSH,
    BULK_SETUP_COST,
    NULL_PROVIDER,
    NULL_RPC,
    RPCRequest,
    RPCResponse,
    STATUS_ERROR,
    STATUS_NO_RPC,
    STATUS_OK,
    deserialize_cost,
    estimate_size,
    rpc_id_of,
    serialize_cost,
)
from ..observability.metrics import MetricsRegistry
from ..observability.profile import SAMPLE_STAMP, ContinuousProfiler
from ..observability.span import HANDLER_SUFFIX, child_span_id
from ..observability.tracer import Tracer
from ..sim.kernel import TIMED_OUT, SimKernel
from ..sim.network import Network, Process
from .config import MargoConfig, PoolSpec, XStreamSpec
from .errors import (
    ConfigError,
    DuplicateNameError,
    FinalizedError,
    MargoError,
    NoSuchPoolError,
    NoSuchRpcError,
    NoSuchXStreamError,
    PoolInUseError,
    RpcError,
    RpcFailedError,
    RpcTimeoutError,
)
from .pool import Pool
from .ult import ULT, Compute, Park, UltEvent, UltSleep, current_ult
from .xstream import XStream

__all__ = ["MargoInstance", "RequestContext", "Registration"]

_UNSET = object()


@dataclass
class RequestContext:
    """What a handler sees: the request plus accessors for the runtime."""

    margo: "MargoInstance"
    request: RPCRequest
    #: per-request sampling decision made at dispatch (monitor emissions
    #: inside :meth:`respond` honor it, same as the implicit reply path).
    observed: bool = False
    #: set once a reply for this request has hit the wire.
    _responded: bool = False

    @property
    def args(self) -> Any:
        return self.request.args

    @property
    def source(self) -> str:
        return self.request.src_address

    @property
    def provider_id(self) -> int:
        return self.request.provider_id

    @property
    def rpc_name(self) -> str:
        return self.request.rpc_name

    def respond(self, value: Any = None) -> Generator:
        """Explicit early reply (``margo_respond`` equivalent).

        Drive with ``yield from context.respond(result)``.  The caller's
        ``forward`` unblocks as soon as this reply lands, while the
        handler ULT keeps running (post-reply cleanup, deferred work).
        The protocol is *respond exactly once*: the implicit reply the
        runtime sends on handler return is skipped once this has fired,
        a second ``respond()`` is dropped on the floor, and the
        sanitizer reports both misuses under MCH070.
        """
        margo = self.margo
        payload_size = estimate_size(value)
        yield Compute(serialize_cost(payload_size))
        already = self._responded
        self._responded = True
        if _sanitize.ENABLED:
            _sanitize.note_explicit_respond(margo, self.request, already)
        if already:
            return
        response = RPCResponse(
            seq=self.request.seq,
            status=STATUS_OK,
            value=value,
            payload_size=payload_size,
            src_address=margo.process.address,
            error_message=None,
        )
        margo.network.send(
            margo.process, self.request.src_address, response, response.wire_size
        )
        if _sanitize.ENABLED:
            _sanitize.note_handler_responded(margo, self.request.seq)
        if self.observed:
            margo._emit("on_respond", request=self.request, response=response)


@dataclass
class Registration:
    """One registered (rpc name, provider id) handler."""

    name: str
    rpc_id: int
    provider_id: int
    handler: Callable[[RequestContext], Any]
    pool: Pool


class _MonitorList(list):
    """Monitor list that notifies its owning :class:`MargoInstance` on
    every mutation -- including direct ``append`` and in-place index
    assignment -- so the per-hook cache and the sampling-skip flag never
    go stale, and the emit fast path needs only an integer compare."""

    def __init__(self, owner: "MargoInstance", iterable: Iterable[Any] = ()) -> None:
        super().__init__(iterable)
        self._owner = owner

    def _touch(self) -> None:
        self._owner._monitors_changed()

    def append(self, item: Any) -> None:
        super().append(item)
        self._touch()

    def extend(self, items: Iterable[Any]) -> None:
        super().extend(items)
        self._touch()

    def insert(self, index: int, item: Any) -> None:
        super().insert(index, item)
        self._touch()

    def remove(self, item: Any) -> None:
        super().remove(item)
        self._touch()

    def pop(self, index: int = -1) -> Any:
        item = super().pop(index)
        self._touch()
        return item

    def clear(self) -> None:
        super().clear()
        self._touch()

    def __setitem__(self, index: Any, item: Any) -> None:
        super().__setitem__(index, item)
        self._touch()

    def __delitem__(self, index: Any) -> None:
        super().__delitem__(index)
        self._touch()

    def __iadd__(self, items: Iterable[Any]) -> "_MonitorList":
        super().extend(items)
        self._touch()
        return self


class MargoInstance:
    """The per-process runtime shared by all Mochi components."""

    def __init__(
        self,
        process: Process,
        network: Network,
        config: str | dict[str, Any] | MargoConfig | None = None,
        monitors: Iterable[Any] = (),
        default_rpc_timeout: Optional[float] = None,
    ) -> None:
        self.process = process
        self.network = network
        self.kernel: SimKernel = network.kernel
        if isinstance(config, MargoConfig):
            self.config = config
        else:
            self.config = MargoConfig.from_json(config)
        self.default_rpc_timeout = default_rpc_timeout
        self._finalized = False
        # Per-hook monitor-method cache (the RPC fast path): with no
        # monitors attached, emit sites skip kwargs construction and
        # monitor iteration entirely; with monitors, each hook resolves
        # its bound methods once instead of getattr-ing per event.  Any
        # mutation of ``self.monitors`` (the _MonitorList notifies back)
        # bumps the version, so the hot path invalidation check is a
        # single integer compare instead of an identity-tuple rebuild.
        self._hook_cache: dict[str, tuple[Callable[..., None], ...]] = {}
        self._hook_cache_key: Optional[int] = None
        self._monitors_version = 0
        # True when every attached monitor declares
        # ``respects_profile_sampling``: request-scoped hooks may then be
        # skipped wholesale for sampled-out requests (the RPC paths
        # fold this into their per-request ``observed`` decision).
        self._skip_unsampled = False
        self.monitors: list[Any] = _MonitorList(self, monitors)
        self._monitors_changed()

        self.pools: dict[str, Pool] = {}
        self.xstreams: dict[str, XStream] = {}
        self._pool_claims: dict[str, set[str]] = {}

        self._registry: dict[tuple[int, int], Registration] = {}
        # Race-hook label cache: dispatch/resolve run per RPC, and
        # formatting their report labels fresh each time is measurable.
        self._race_labels: dict[Any, str] = {}
        self._seq = 0
        self._pending: dict[int, tuple[UltEvent, RPCRequest, float]] = {}
        self._incoming: deque[Any] = deque()
        self._progress_event: Optional[UltEvent] = None

        # Live runtime metrics (sampled by the monitoring sampler,
        # section 4: "periodically tracks the number of in-flight RPCs
        # and the sizes of user-level thread pools").  Components on
        # this instance register their own metrics into this registry;
        # the public counter attributes below are views over it.
        obs = self.config.observability
        self.metrics = MetricsRegistry(enabled=obs.metrics)
        self._rpcs_sent = self.metrics.counter(
            "margo_rpcs_sent", "RPCs issued by the client path"
        )
        self._rpcs_handled = self.metrics.counter(
            "margo_rpcs_handled", "RPCs whose handler ULT completed"
        )
        self._monitor_errors = self.metrics.counter(
            "margo_monitor_errors",
            "monitor hooks that raised (swallowed: monitoring must "
            "never take the data path down)",
        )
        self._inflight_out = self.metrics.gauge(
            "margo_inflight_outgoing", "RPCs sent and awaiting a response"
        )
        self._inflight_in = self.metrics.gauge(
            "margo_inflight_incoming", "handler ULTs currently executing"
        )
        self.tracer: Optional[Tracer] = None
        if obs.tracing:
            self.tracer = Tracer(
                max_spans=obs.max_spans, sample_rate=obs.trace_sample_rate
            )
            self.add_monitor(self.tracer)

        self._build()
        # Continuous profiler (after _build: it hooks the live pools).
        # As a monitor it fires on the same hooks as the tracer and is
        # charged the same modeled monitoring cost per event; off, it
        # does not exist and the fast paths above stay monitor-free.
        self.profiler: Optional[ContinuousProfiler] = None
        self.slo_engine: Optional[Any] = None
        if obs.profiling:
            self.profiler = ContinuousProfiler(
                self,
                window=obs.profile_window,
                history=obs.profile_history,
                waterfalls=obs.profile_waterfalls,
                sample_every=obs.profile_sample_every,
            )
            self.add_monitor(self.profiler)
            self.profiler.start()
            if obs.slos:
                # Declarative objectives (ISSUE 6): evaluated off the
                # RPC path, once per closed profiler window.
                from ..observability.health.slo import SLOEngine

                self.slo_engine = SLOEngine(self, list(obs.slos))
                self.profiler.on_window_close.append(
                    self.slo_engine.observe_window
                )
        # mochi-xray (ISSUE 10): per-request causal-path recording.  A
        # monitor like the profiler it rides on (the spec guarantees
        # profiling is enabled); off, nothing here exists and the hot
        # paths keep their existing single-check gates.
        self.xray: Optional[Any] = None
        if obs.xray and self.profiler is not None:
            from ..observability.xray import XrayRecorder

            self.xray = XrayRecorder(self, max_paths=obs.xray_paths)
            self.add_monitor(self.xray)
        process.on_message = self._on_message
        process.on_killed.append(self.shutdown)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for spec in self.config.pools:
            self.pools[spec.name] = Pool(spec.name, spec.kind, spec.access)
        for spec in self.config.xstreams:
            xstream = XStream(
                self.kernel,
                spec.name,
                [self.pools[p] for p in spec.pools],
                scheduler=spec.scheduler,
            )
            self.xstreams[spec.name] = xstream
            xstream.start()
        self._progress_event = UltEvent(self.kernel, name=f"progress:{self.process.name}")
        self.spawn_ult(
            self._progress_loop(),
            pool=self.config.progress_pool,
            name=f"progress:{self.process.name}",
        )
        self.claim_pool(self.config.progress_pool, "__margo_progress__")

    @property
    def address(self) -> str:
        return self.process.address

    @property
    def finalized(self) -> bool:
        return self._finalized

    # Backwards-compatible counter views (now backed by the registry).
    @property
    def inflight_outgoing(self) -> int:
        return int(self._inflight_out.value)

    @property
    def inflight_incoming(self) -> int:
        return int(self._inflight_in.value)

    @property
    def rpcs_sent(self) -> int:
        return int(self._rpcs_sent.value)

    @property
    def rpcs_handled(self) -> int:
        return int(self._rpcs_handled.value)

    @property
    def monitor_errors(self) -> int:
        return int(self._monitor_errors.value)

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def add_monitor(self, monitor: Any) -> None:
        """Attach a monitoring object (see :mod:`repro.monitoring`)."""
        self.monitors.append(monitor)

    def remove_monitor(self, monitor: Any) -> None:
        self.monitors.remove(monitor)

    def _monitors_changed(self) -> None:
        """Called by the _MonitorList on every mutation (append, remove,
        in-place replacement, ...): invalidates the hook cache and
        recomputes whether sampled-out requests may skip dispatch."""
        self._monitors_version += 1
        self._skip_unsampled = all(
            getattr(m, "respects_profile_sampling", False) for m in self.monitors
        )

    def _hook_fns(self, hook: str) -> tuple[Callable[..., None], ...]:
        """The bound hook methods of all attached monitors (cached).

        Every mutation of ``self.monitors`` -- via add/remove_monitor or
        direct list mutation, including same-length in-place replacement
        -- bumps ``_monitors_version`` through the _MonitorList, so a
        plain integer compare detects staleness.  An identity-tuple key
        here would rebuild a tuple per RPC event -- measurably hot with
        a profiler attached.
        """
        monitors = self.monitors
        key = self._monitors_version
        if key != self._hook_cache_key:
            self._hook_cache.clear()
            self._hook_cache_key = key
        fns = self._hook_cache.get(hook)
        if fns is None:
            fns = tuple(
                fn
                for fn in (getattr(m, hook, None) for m in monitors)
                if fn is not None
            )
            self._hook_cache[hook] = fns
        return fns

    def _emit(self, hook: str, **kwargs: Any) -> int:
        """Fire ``hook`` on every monitor; return the number fired (the
        RPC path charges ``monitoring_cost_per_event`` per firing).

        The ``Monitor`` contract says hooks must not raise; if one does
        anyway, the failure is contained here -- counted in
        ``margo_monitor_errors`` -- rather than crashing the RPC fast
        path: a monitoring failure must never take the data path down.
        """
        fns = self._hook_fns(hook)
        if not fns:
            return 0
        now = self.kernel.now
        for fn in fns:
            try:
                fn(time=now, margo=self, **kwargs)
            except Exception:
                self._monitor_errors.inc()
        return len(fns)

    # Request-scoped lifecycle hooks are emitted inline by forward /
    # _dispatch_request / _handler_body: each path decides ``observed``
    # once per request (False when every attached monitor respects the
    # profile-sampling stamp and the request was sampled out) and then
    # branches, so a sampled-out request pays one attribute read total
    # instead of a helper call per hook.  Hook charges are pre-charged
    # into an adjacent Compute (``fired * monitoring_cost_per_event``)
    # rather than paid as separate kernel events.

    # ------------------------------------------------------------------
    # ULT utilities
    # ------------------------------------------------------------------
    def spawn_ult(self, gen: Generator, pool: str | Pool | None = None, name: str = "") -> ULT:
        """Create a ULT in ``pool`` (default: the rpc pool) and make it ready."""
        if self._finalized:
            raise FinalizedError(f"margo instance on {self.process.name} is finalized")
        target = self._resolve_pool(pool) if pool is not None else self.pools[self.config.rpc_pool]
        ult = ULT(gen, name=name)
        ult.done_event = UltEvent(self.kernel, name=f"done:{ult.name}")
        target.push(ult)
        return ult

    def make_event(self, name: str = "") -> UltEvent:
        return UltEvent(self.kernel, name=name)

    def _resolve_pool(self, pool: str | Pool) -> Pool:
        if isinstance(pool, Pool):
            return pool
        if _race.ENABLED:
            label = self._race_labels.get(pool)
            if label is None:
                label = self._race_labels[pool] = (
                    f"margo:{self.process.name}.resolve_pool:{pool}"
                )
            _race.note_read(self.pools, pool, label)
        try:
            return self.pools[pool]
        except KeyError as err:
            raise NoSuchPoolError(f"no pool named {pool!r} on {self.process.name}") from err

    # ------------------------------------------------------------------
    # RPC registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        handler: Callable[[RequestContext], Any],
        provider_id: int = NULL_PROVIDER,
        pool: str | Pool | None = None,
    ) -> int:
        """Register ``handler`` for RPC ``name`` at ``provider_id``.

        Returns the RPC id.  Handlers receive a :class:`RequestContext`
        and may be plain functions or generators (which may issue nested
        RPCs via ``yield from``).
        """
        if self._finalized:
            raise FinalizedError("cannot register on a finalized instance")
        rpc_id = rpc_id_of(name)
        key = (rpc_id, provider_id)
        if key in self._registry:
            raise DuplicateNameError(
                f"RPC {name!r} already registered for provider {provider_id}"
            )
        target = self._resolve_pool(pool) if pool is not None else self.pools[self.config.rpc_pool]
        self._registry[key] = Registration(name, rpc_id, provider_id, handler, target)
        if _race.ENABLED:
            _race.track(self._registry, f"{self.process.name}.rpc_registry")
            _race.note_write(
                self._registry, key,
                f"margo:{self.process.name}.register:{name}/{provider_id}",
            )
        return rpc_id

    def deregister(self, name: str, provider_id: int = NULL_PROVIDER) -> None:
        key = (rpc_id_of(name), provider_id)
        if key not in self._registry:
            raise NoSuchRpcError(f"RPC {name!r} not registered for provider {provider_id}")
        del self._registry[key]
        if _race.ENABLED:
            _race.track(self._registry, f"{self.process.name}.rpc_registry")
            _race.note_write(
                self._registry, key,
                f"margo:{self.process.name}.deregister:{name}/{provider_id}",
            )

    def registered_rpcs(self) -> list[tuple[str, int]]:
        """(name, provider_id) pairs currently registered."""
        return sorted((r.name, r.provider_id) for r in self._registry.values())

    # ------------------------------------------------------------------
    # client path
    # ------------------------------------------------------------------
    def forward(
        self,
        address: str,
        rpc_name: str,
        args: Any = None,
        provider_id: int = NULL_PROVIDER,
        timeout: Any = _UNSET,
    ) -> Generator:
        """Send an RPC and block the calling ULT until the response.

        ``yield from margo.forward(...)`` returns the handler's return
        value, or raises :class:`RpcTimeoutError` /
        :class:`RpcFailedError` / :class:`NoSuchRpcError`.
        """
        if self._finalized:
            raise FinalizedError("forward on finalized margo instance")
        if timeout is _UNSET:
            timeout = self.default_rpc_timeout
        caller = current_ult()
        parent = caller.rpc_context if caller is not None else None
        payload_size = estimate_size(args)
        self._seq += 1
        seq = self._seq
        # Trace-context propagation (repro.observability): every call
        # gets a deterministic span id; a call issued from inside a
        # handler joins its parent's trace as a child of the handler
        # span, so nested RPCs form one causal tree end to end.
        span_id = f"{self.process.name}:{seq}"
        if parent is not None and getattr(parent, "trace_id", ""):
            trace_id = parent.trace_id
            parent_span_id = child_span_id(parent.span_id, HANDLER_SUFFIX)
        else:
            trace_id = span_id
            parent_span_id = ""
        request = RPCRequest(
            seq=seq,
            rpc_id=rpc_id_of(rpc_name),
            rpc_name=rpc_name,
            provider_id=provider_id,
            args=args,
            payload_size=payload_size,
            src_address=self.process.address,
            dst_address=address,
            parent_rpc_id=parent.rpc_id if parent is not None else NULL_RPC,
            parent_provider_id=parent.provider_id if parent is not None else NULL_PROVIDER,
            trace_id=trace_id,
            span_id=span_id,
            parent_span_id=parent_span_id,
        )
        started = self.kernel.now
        # Observability fast path: one ``observed`` decision per request
        # -- False with no monitors attached, and False when every
        # attached monitor honors the profile-sampling stamp and this
        # request was sampled out.  The emit sites below are then plain
        # branches; per-hook helper calls were measurably hot on the
        # sampled-out path (this is what makes every-Nth observer
        # sampling actually cheap).
        observed = bool(self.monitors)
        prof = self.profiler
        if observed and prof is not None:
            # Stamp the sampling decision before the first hook so a
            # sampled-out request skips even on_forward_start.  The
            # decision is ContinuousProfiler._sample_weight inlined (a
            # helper call per forward was measurably hot); a fresh
            # request is always unstamped here, the getattr is a
            # forwarded-twice guard (retries reuse the request object).
            weight = getattr(request, SAMPLE_STAMP, None)
            if weight is None:
                every = prof.sample_every
                if every == 1:
                    weight = 1
                else:
                    prof._sample_seq += 1
                    weight = every if prof._sample_seq % every == 1 else 0
                setattr(request, SAMPLE_STAMP, weight)
            if weight == 0 and self._skip_unsampled:
                observed = False
        if observed:
            fired = self._emit("on_forward_start", request=request)
            # The on_forward_sent firing below is pre-charged here: one
            # Compute covers both hooks (identical modeled cost) instead
            # of a second kernel event on every monitored send.
            fired += len(self._hook_fns("on_forward_sent"))
            yield Compute(
                serialize_cost(payload_size)
                + fired * self.config.monitoring_cost_per_event
            )
        else:
            yield Compute(serialize_cost(payload_size))

        event = UltEvent(self.kernel, name=f"rpc:{rpc_name}:{seq}")
        self._pending[seq] = (event, request, self.kernel.now)
        self._inflight_out.inc()
        self._rpcs_sent.inc()
        known = self.network.send(self.process, address, request, request.wire_size)
        if observed:
            self._emit("on_forward_sent", request=request)
        if not known and timeout is None:
            # The destination does not exist and no timeout would ever
            # fire: fail fast instead of hanging the simulation.
            self._pending.pop(seq, None)
            self._inflight_out.dec()
            raise RpcError(f"unknown destination address {address!r}")

        value = yield Park(event, timeout)
        self._inflight_out.dec()
        if value is TIMED_OUT:
            self._pending.pop(seq, None)
            raise RpcTimeoutError(
                f"RPC {rpc_name!r} to {address} (provider {provider_id}) "
                f"timed out after {timeout}s"
            )
        response: RPCResponse = value
        if observed:
            fired = self._emit(
                "on_response_received",
                request=request,
                response=response,
                elapsed=self.kernel.now - started,
            )
            yield Compute(
                deserialize_cost(response.payload_size)
                + fired * self.config.monitoring_cost_per_event
            )
        else:
            yield Compute(deserialize_cost(response.payload_size))
        if response.status == STATUS_OK:
            return response.value
        if response.status == STATUS_NO_RPC:
            raise NoSuchRpcError(
                f"no handler for RPC {rpc_name!r} provider {provider_id} at {address}"
            )
        raise RpcFailedError(response.error_message or "remote handler failed")

    # ------------------------------------------------------------------
    # bulk (RDMA) path
    # ------------------------------------------------------------------
    def bulk_transfer(
        self, remote_address: str, size: int, op: str = BULK_OP_PULL
    ) -> Generator:
        """One-sided bulk transfer of ``size`` bytes to/from ``remote_address``.

        Models RDMA: the remote CPU (and its progress loop) is not
        involved; the calling ULT blocks for the wire time only.
        """
        if op not in (BULK_OP_PULL, BULK_OP_PUSH):
            raise ValueError(f"unknown bulk op {op!r}")
        if size < 0:
            raise ValueError(f"negative bulk size {size}")
        try:
            remote = self.network.lookup(remote_address)
        except Exception as err:
            raise RpcError(f"bulk transfer to unknown address {remote_address!r}") from err
        if not remote.alive:
            raise RpcError(f"bulk transfer peer {remote_address} is dead")
        if self.network.is_partitioned(self.process.node, remote.node):
            raise RpcTimeoutError(f"bulk transfer to {remote_address} unreachable (partition)")
        duration = self.network.transfer_time(self.process, remote, size, bulk=True)
        started = self.kernel.now
        if self.monitors:
            # Pre-charged like the RPC path: the hook fires after the
            # transfer, its cost rides the setup Compute.
            pre = len(self._hook_fns("on_bulk_transfer"))
            yield Compute(
                BULK_SETUP_COST + pre * self.config.monitoring_cost_per_event
            )
        else:
            yield Compute(BULK_SETUP_COST)
        yield UltSleep(duration)
        self.network.bytes_sent += size
        if self.monitors:
            self._emit(
                "on_bulk_transfer",
                remote=remote_address,
                size=size,
                op=op,
                duration=self.kernel.now - started,
            )
        return duration

    # ------------------------------------------------------------------
    # progress loop and dispatch (paper Fig. 2)
    # ------------------------------------------------------------------
    def _on_message(self, payload: Any) -> None:
        if self._finalized:
            return
        self._incoming.append(payload)
        assert self._progress_event is not None
        self._progress_event.set()

    def _progress_loop(self) -> Generator:
        event = self._progress_event
        assert event is not None
        while not self._finalized:
            if self._incoming:
                message = self._incoming.popleft()
                yield Compute(self.config.dispatch_cost)
                self._dispatch(message)
            else:
                event.clear()
                yield Park(event, None)

    def _dispatch(self, message: Any) -> None:
        if isinstance(message, RPCRequest):
            self._dispatch_request(message)
        elif isinstance(message, RPCResponse):
            self._dispatch_response(message)
        else:
            raise MargoError(f"unexpected message on the wire: {message!r}")

    def _dispatch_request(self, request: RPCRequest) -> None:
        # Same per-request ``observed`` decision as forward(); a request
        # from an unprofiled client arrives unstamped, so the server-side
        # profiler decides here, before the first hook.
        observed = bool(self.monitors)
        prof = self.profiler
        if observed and prof is not None:
            weight = getattr(request, SAMPLE_STAMP, None)
            if weight is None:
                weight = prof._sample_weight(request)
            if weight == 0 and self._skip_unsampled:
                observed = False
        if observed:
            self._emit("on_request_received", request=request)
        key = (request.rpc_id, request.provider_id)
        if _race.ENABLED:
            label = self._race_labels.get(key)
            if label is None:
                label = self._race_labels[key] = (
                    f"margo:{self.process.name}.dispatch:"
                    f"{request.rpc_name}/{request.provider_id}"
                )
            _race.note_read(self._registry, key, label)
        registration = self._registry.get(key)
        if registration is None:
            response = RPCResponse(
                seq=request.seq,
                status=STATUS_NO_RPC,
                value=None,
                payload_size=0,
                src_address=self.process.address,
                error_message=f"no handler for {request.rpc_name!r}/{request.provider_id}",
            )
            self.network.send(self.process, request.src_address, response, response.wire_size)
            return
        enqueued_at = self.kernel.now
        ult = ULT(
            self._handler_body(registration, request, enqueued_at, observed),
            name=f"rpc:{request.rpc_name}:{request.seq}",
        )
        ult.rpc_context = request
        if _sanitize.ENABLED:
            _sanitize.note_handler_dispatched(self, request, ult)
        registration.pool.push(ult)
        if observed:
            self._emit("on_ult_enqueued", request=request, pool=registration.pool)

    def _handler_body(
        self,
        registration: Registration,
        request: RPCRequest,
        enqueued_at: float,
        observed: bool,
    ) -> Generator:
        # ``observed`` is the per-request sampling decision made at
        # dispatch; it covers the whole handler ULT.
        self._inflight_in.inc()
        queued_for = self.kernel.now - enqueued_at
        ult_started = self.kernel.now
        if observed:
            fired = self._emit("on_ult_start", request=request, queued_for=queued_for)
            yield Compute(
                deserialize_cost(request.payload_size)
                + fired * self.config.monitoring_cost_per_event
            )
        else:
            yield Compute(deserialize_cost(request.payload_size))
        context = RequestContext(margo=self, request=request, observed=observed)
        status = STATUS_OK
        value: Any = None
        error_message: Optional[str] = None
        try:
            result = registration.handler(context)
            if isinstance(result, Generator):
                result = yield from result
            value = result
        except Exception as err:  # noqa: BLE001 - handler error -> error response
            # Any handler failure -- including a *nested* RPC that failed
            # or timed out -- becomes an error response; the caller must
            # never be left waiting.
            status = STATUS_ERROR
            error_message = f"{type(err).__name__}: {err}"
        payload_size = estimate_size(value) if status == STATUS_OK else 0
        if context._responded:
            # context.respond() already serialized and sent the reply;
            # the implicit path must not charge or send a second one.
            payload_size = 0
        if observed:
            # Pre-charge the on_ult_complete firing: same modeled cost,
            # one fewer kernel event per handled RPC.
            pre = len(self._hook_fns("on_ult_complete"))
            yield Compute(
                serialize_cost(payload_size)
                + pre * self.config.monitoring_cost_per_event
            )
        else:
            yield Compute(serialize_cost(payload_size))
        # The ULT duration covers the whole handler ULT: input
        # deserialization, the handler body, output serialization, and
        # the monitoring charge (the phases Listing 1's
        # "ult"/"duration" aggregates).
        duration = self.kernel.now - ult_started
        if observed:
            self._emit(
                "on_ult_complete",
                request=request,
                duration=duration,
                queued_for=queued_for,
            )
        self._inflight_in.dec()
        self._rpcs_handled.inc()
        if context._responded:
            # Respond exactly once: the explicit reply already went out.
            # A raise or a returned value after respond() is invisible
            # to the caller -- the sanitizer reports it under MCH070.
            if _sanitize.ENABLED:
                _sanitize.note_post_respond(
                    self, request, status == STATUS_OK, value, error_message
                )
            return
        response = RPCResponse(
            seq=request.seq,
            status=status,
            value=value,
            payload_size=payload_size,
            src_address=self.process.address,
            error_message=error_message,
        )
        self.network.send(self.process, request.src_address, response, response.wire_size)
        if _sanitize.ENABLED:
            _sanitize.note_handler_responded(self, request.seq)
        if observed:
            self._emit("on_respond", request=request, response=response)

    def _dispatch_response(self, response: RPCResponse) -> None:
        pending = self._pending.pop(response.seq, None)
        if pending is None:
            return  # late response after timeout: drop
        event, _request, _sent_at = pending
        event.set(response)

    # ------------------------------------------------------------------
    # online reconfiguration (paper section 5, Observation 2)
    # ------------------------------------------------------------------
    def find_pool(self, name: str) -> Pool:
        """``margo_find_pool_by_name`` equivalent."""
        return self._resolve_pool(name)

    def add_pool(self, spec: str | dict[str, Any] | PoolSpec) -> Pool:
        """``margo_add_pool_from_json`` equivalent."""
        if isinstance(spec, str):
            spec = json.loads(spec)
        if isinstance(spec, dict):
            spec = PoolSpec.from_json(spec)
        if spec.name in self.pools:
            raise DuplicateNameError(f"pool {spec.name!r} already exists")
        pool = Pool(spec.name, spec.kind, spec.access)
        if self.profiler is not None:
            pool._profiler = self.profiler
        self.pools[spec.name] = pool
        self.config.pools.append(spec)
        if _race.ENABLED:
            _race.track(self.pools, f"{self.process.name}.pools")
            _race.note_write(
                self.pools, spec.name, f"margo:{self.process.name}.add_pool:{spec.name}"
            )
        return pool

    def remove_pool(self, name: str) -> None:
        """Remove a pool; refuses if the pool is in use (paper: "Margo
        ensures that the changes are always valid")."""
        pool = self._resolve_pool(name)
        if pool.xstreams:
            raise PoolInUseError(
                f"pool {name!r} is used by xstreams "
                f"{[x.name for x in pool.xstreams]}"
            )
        claims = self._pool_claims.get(name)
        if claims:
            raise PoolInUseError(f"pool {name!r} is claimed by {sorted(claims)}")
        if pool.size:
            raise PoolInUseError(f"pool {name!r} still has {pool.size} queued ULTs")
        users = [r.name for r in self._registry.values() if r.pool is pool]
        if users:
            raise PoolInUseError(f"pool {name!r} is the handler pool of RPCs {users}")
        del self.pools[name]
        self.config.pools = [p for p in self.config.pools if p.name != name]
        if _race.ENABLED:
            _race.track(self.pools, f"{self.process.name}.pools")
            _race.note_write(
                self.pools, name, f"margo:{self.process.name}.remove_pool:{name}"
            )

    def add_xstream(self, spec: str | dict[str, Any] | XStreamSpec) -> XStream:
        if isinstance(spec, str):
            spec = json.loads(spec)
        if isinstance(spec, dict):
            spec = XStreamSpec.from_json(spec)
        if spec.name in self.xstreams:
            raise DuplicateNameError(f"xstream {spec.name!r} already exists")
        pools = [self._resolve_pool(p) for p in spec.pools]
        xstream = XStream(self.kernel, spec.name, pools, scheduler=spec.scheduler)
        self.xstreams[spec.name] = xstream
        self.config.xstreams.append(spec)
        if _race.ENABLED:
            _race.track(self.xstreams, f"{self.process.name}.xstreams")
            _race.note_write(
                self.xstreams, spec.name,
                f"margo:{self.process.name}.add_xstream:{spec.name}",
            )
        xstream.start()
        return xstream

    def remove_xstream(self, name: str) -> None:
        """Remove an xstream; refuses to orphan a pool that has users."""
        xstream = self.xstreams.get(name)
        if xstream is None:
            raise NoSuchXStreamError(f"no xstream named {name!r}")
        for pool in xstream.pools:
            others = [x for x in pool.xstreams if x is not xstream]
            if not others and self._pool_has_users(pool):
                raise PoolInUseError(
                    f"removing xstream {name!r} would orphan pool {pool.name!r} "
                    "which still has users"
                )
        xstream.stop()
        del self.xstreams[name]
        self.config.xstreams = [x for x in self.config.xstreams if x.name != name]
        if _race.ENABLED:
            _race.track(self.xstreams, f"{self.process.name}.xstreams")
            _race.note_write(
                self.xstreams, name, f"margo:{self.process.name}.remove_xstream:{name}"
            )

    def _pool_has_users(self, pool: Pool) -> bool:
        if pool.size:
            return True
        if self._pool_claims.get(pool.name):
            return True
        return any(r.pool is pool for r in self._registry.values())

    # Providers (and the progress loop) claim pools so that Margo can
    # refuse to remove a pool out from under them.
    def claim_pool(self, name: str, owner: str) -> Pool:
        pool = self._resolve_pool(name)
        self._pool_claims.setdefault(name, set()).add(owner)
        return pool

    def release_pool(self, name: str, owner: str) -> None:
        claims = self._pool_claims.get(name)
        if claims:
            claims.discard(owner)

    def get_config(self) -> dict[str, Any]:
        """The live configuration as a JSON document (queryable at run
        time, paper section 5)."""
        doc = self.config.to_json()
        # Reflect live xstream->pool mappings (they can drift from the
        # original spec through add_pool/remove_pool on xstreams).
        doc["argobots"]["xstreams"] = [
            x.to_json() for x in self.xstreams.values()
        ]
        doc["argobots"]["pools"] = [p.to_json() for p in self.pools.values()]
        return doc

    def snapshot(self) -> dict[str, Any]:
        """Live state sample used by the periodic monitoring sampler."""
        return {
            "time": self.kernel.now,
            "inflight_outgoing": self.inflight_outgoing,
            "inflight_incoming": self.inflight_incoming,
            "pools": {name: pool.size for name, pool in self.pools.items()},
        }

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Finalize: stop xstreams, drop pending work, emit final stats."""
        if self._finalized:
            return
        self._finalized = True
        if _sanitize.ENABLED:
            _sanitize.check_margo_shutdown(self)
        self._emit("on_finalize")
        if self.profiler is not None:
            self.profiler.stop()
        for xstream in self.xstreams.values():
            xstream.stop()
        self._incoming.clear()
        self._pending.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MargoInstance {self.process.address}>"
