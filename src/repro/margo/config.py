"""Margo JSON configuration (paper Listing 2).

A Margo instance is initialized from a document of the form::

    {
      "argobots": {
        "pools":    [ {"name": "MyPoolX", "type": "fifo_wait", "access": "mpmc"}, ... ],
        "xstreams": [ {"name": "MyES0",
                       "scheduler": {"type": "basic", "pools": ["MyPoolX"]}}, ... ]
      },
      "progress_pool": "MyPoolZ",   # where the network progress loop runs
      "rpc_pool": "MyPoolX"         # default pool for handler ULTs
    }

Everything is optional; defaults create one ``__primary__`` pool/xstream
that also hosts the progress loop, matching Margo's defaults.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ..observability.spec import ObservabilitySpec
from .errors import ConfigError

__all__ = ["MargoConfig", "PoolSpec", "XStreamSpec"]

DEFAULT_POOL = "__primary__"


@dataclass(frozen=True)
class PoolSpec:
    name: str
    kind: str = "fifo_wait"
    access: str = "mpmc"

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "PoolSpec":
        if not isinstance(doc, dict):
            raise ConfigError(f"pool spec must be an object, got {type(doc).__name__}")
        unknown = set(doc) - {"name", "type", "access"}
        if unknown:
            raise ConfigError(f"unknown pool spec keys: {sorted(unknown)}")
        if "name" not in doc:
            raise ConfigError("pool spec requires a 'name'")
        return cls(
            name=doc["name"],
            kind=doc.get("type", "fifo_wait"),
            access=doc.get("access", "mpmc"),
        )

    def to_json(self) -> dict[str, Any]:
        return {"name": self.name, "type": self.kind, "access": self.access}


@dataclass(frozen=True)
class XStreamSpec:
    name: str
    scheduler: str = "basic_wait"
    pools: tuple[str, ...] = ()

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "XStreamSpec":
        if not isinstance(doc, dict):
            raise ConfigError(f"xstream spec must be an object, got {type(doc).__name__}")
        unknown = set(doc) - {"name", "scheduler"}
        if unknown:
            raise ConfigError(f"unknown xstream spec keys: {sorted(unknown)}")
        if "name" not in doc:
            raise ConfigError("xstream spec requires a 'name'")
        sched = doc.get("scheduler", {})
        if not isinstance(sched, dict):
            raise ConfigError("xstream 'scheduler' must be an object")
        pools = sched.get("pools", [])
        if not isinstance(pools, list) or not all(isinstance(p, str) for p in pools):
            raise ConfigError("scheduler 'pools' must be a list of pool names")
        if not pools:
            raise ConfigError(f"xstream {doc['name']!r} must reference at least one pool")
        return cls(
            name=doc["name"],
            scheduler=sched.get("type", "basic_wait"),
            pools=tuple(pools),
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "scheduler": {"type": self.scheduler, "pools": list(self.pools)},
        }


@dataclass
class MargoConfig:
    """Parsed and validated Margo configuration."""

    pools: list[PoolSpec] = field(default_factory=list)
    xstreams: list[XStreamSpec] = field(default_factory=list)
    progress_pool: str = DEFAULT_POOL
    rpc_pool: str = DEFAULT_POOL
    #: Dispatch cost paid by the progress loop per incoming message.
    dispatch_cost: float = 200e-9
    #: Extra simulated cost charged per monitoring callback fired in the
    #: RPC fast path (0 when no monitors are attached).
    monitoring_cost_per_event: float = 20e-9
    #: Observability plane (tracing + metrics export), see
    #: :class:`repro.observability.ObservabilitySpec`.
    observability: ObservabilitySpec = field(default_factory=ObservabilitySpec)

    @classmethod
    def from_json(cls, doc: str | dict[str, Any] | None) -> "MargoConfig":
        """Parse a Listing-2-style document (JSON text or dict)."""
        if doc is None:
            doc = {}
        if isinstance(doc, str):
            try:
                doc = json.loads(doc)
            except json.JSONDecodeError as err:
                raise ConfigError(f"invalid JSON: {err}") from err
        if not isinstance(doc, dict):
            raise ConfigError(f"margo config must be an object, got {type(doc).__name__}")
        unknown = set(doc) - {
            "argobots",
            "progress_pool",
            "rpc_pool",
            "dispatch_cost",
            "monitoring_cost_per_event",
            "observability",
        }
        if unknown:
            raise ConfigError(f"unknown margo config keys: {sorted(unknown)}")
        argobots = doc.get("argobots", {})
        if not isinstance(argobots, dict):
            raise ConfigError("'argobots' must be an object")
        pool_docs = argobots.get("pools", [])
        xstream_docs = argobots.get("xstreams", [])
        pools = [PoolSpec.from_json(p) for p in pool_docs]
        xstreams = [XStreamSpec.from_json(x) for x in xstream_docs]
        if not pools:
            pools = [PoolSpec(name=DEFAULT_POOL)]
        if not xstreams:
            xstreams = [XStreamSpec(name=DEFAULT_POOL, pools=(pools[0].name,))]
        config = cls(
            pools=pools,
            xstreams=xstreams,
            progress_pool=doc.get("progress_pool", pools[0].name),
            rpc_pool=doc.get("rpc_pool", pools[0].name),
            dispatch_cost=float(doc.get("dispatch_cost", cls.dispatch_cost)),
            monitoring_cost_per_event=float(
                doc.get("monitoring_cost_per_event", cls.monitoring_cost_per_event)
            ),
            observability=_parse_observability(doc.get("observability")),
        )
        config.validate()
        return config

    def validate(self) -> None:
        names = [p.name for p in self.pools]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ConfigError(f"duplicate pool names in config: {dupes}")
        xnames = [x.name for x in self.xstreams]
        xdupes = sorted({n for n in xnames if xnames.count(n) > 1})
        if xdupes:
            raise ConfigError(f"duplicate xstream names in config: {xdupes}")
        known = set(names)
        for xstream in self.xstreams:
            missing = [p for p in xstream.pools if p not in known]
            if missing:
                raise ConfigError(
                    f"xstream {xstream.name!r} references unknown pools {missing}"
                )
        served = {p for x in self.xstreams for p in x.pools}
        unserved = known - served
        if unserved:
            raise ConfigError(f"pools not served by any xstream: {sorted(unserved)}")
        if self.progress_pool not in known:
            raise ConfigError(f"progress_pool {self.progress_pool!r} is not a defined pool")
        if self.rpc_pool not in known:
            raise ConfigError(f"rpc_pool {self.rpc_pool!r} is not a defined pool")

    def to_json(self) -> dict[str, Any]:
        return {
            "argobots": {
                "pools": [p.to_json() for p in self.pools],
                "xstreams": [x.to_json() for x in self.xstreams],
            },
            "progress_pool": self.progress_pool,
            "rpc_pool": self.rpc_pool,
            "observability": self.observability.to_json(),
        }


def _parse_observability(doc: Any) -> ObservabilitySpec:
    try:
        return ObservabilitySpec.from_json(doc)
    except ValueError as err:
        raise ConfigError(str(err)) from err
