"""Execution streams (xstreams): the OS threads of the Argobots model.

Each :class:`XStream` is a kernel task that repeatedly picks a ULT from
its scheduler's pools (in priority order, like the "basic" Argobots
scheduler) and runs it until the ULT yields.  ``Compute`` commands make
the stream itself busy for simulated time, which is how CPU contention
between providers sharing a stream (paper Fig. 2) arises.
"""

from __future__ import annotations

from typing import Any, Optional

from ..analysis import sanitize as _sanitize
from ..analysis.race import hooks as _race
from ..sim.kernel import SimKernel, Sleep, WaitEvent
from .errors import ConfigError
from .pool import Pool
from .ult import ULT, Compute, Park, UltSleep, UltState, UltYield, _set_current

__all__ = ["XStream", "SCHEDULER_TYPES"]

SCHEDULER_TYPES = ("basic", "basic_wait", "prio")

# Fixed cost charged per scheduling decision, modeling the scheduler's
# own overhead.  Small but non-zero so that idle loops always advance
# simulated time.
SCHED_OVERHEAD = 20e-9


class XStream:
    """An execution stream pulling ULTs from an ordered list of pools."""

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        pools: list[Pool],
        scheduler: str = "basic_wait",
    ) -> None:
        if not name:
            raise ConfigError("xstream name must be non-empty")
        if not pools:
            raise ConfigError(f"xstream {name!r} needs at least one pool")
        if scheduler not in SCHEDULER_TYPES:
            raise ConfigError(
                f"unknown scheduler type {scheduler!r} (expected one of {SCHEDULER_TYPES})"
            )
        self.kernel = kernel
        self.name = name
        self.scheduler = scheduler
        self.pools: list[Pool] = list(pools)
        self._wakeup = kernel.event(name=f"xstream:{name}")
        self._stopping = False
        self._task = None
        self.current_ult: Optional[ULT] = None
        # Counters for monitoring/benchmarks.
        self.slices_run = 0
        self.busy_time = 0.0
        self.ults_finished = 0
        for pool in self.pools:
            pool.attach_xstream(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError(f"xstream {self.name} already started")
        self._task = self.kernel.spawn(self._loop(), name=f"xstream:{self.name}", daemon=True)

    def stop(self) -> None:
        """Ask the stream to exit after the current slice."""
        self._stopping = True
        self.notify()
        for pool in self.pools:
            pool.detach_xstream(self)
        self.pools = []

    @property
    def stopped(self) -> bool:
        return self._stopping

    def notify(self) -> None:
        """Wake the stream because work may be available (pool push)."""
        self._wakeup.set()

    # ------------------------------------------------------------------
    # pool management (runtime reconfiguration)
    # ------------------------------------------------------------------
    def add_pool(self, pool: Pool) -> None:
        if pool in self.pools:
            return
        self.pools.append(pool)
        pool.attach_xstream(self)
        self.notify()

    def remove_pool(self, pool: Pool) -> None:
        if pool not in self.pools:
            raise ConfigError(f"xstream {self.name} does not serve pool {pool.name}")
        if len(self.pools) == 1:
            raise ConfigError(f"cannot remove the last pool of xstream {self.name}")
        self.pools.remove(pool)
        pool.detach_xstream(self)

    # ------------------------------------------------------------------
    # the scheduling loop
    # ------------------------------------------------------------------
    # mochi-lint: hotpath
    def _pick(self) -> Optional[ULT]:
        pools = self.pools
        if len(pools) == 1:
            # Sole-pool fast path: the overwhelmingly common config
            # (one pool per stream) skips the priority scan entirely.
            return pools[0].pop()
        for pool in pools:
            ult = pool.pop()
            if ult is not None:
                return ult
        return None

    def _loop(self):
        while not self._stopping:
            ult = self._pick()
            if ult is None:
                self._wakeup.clear()
                yield WaitEvent(self._wakeup)
                continue
            yield from self._run_slice(ult)

    def _run_slice(self, ult: ULT):
        """Run ``ult`` until it blocks, yields, or finishes."""
        self.slices_run += 1
        self.current_ult = ult
        ult.state = UltState.RUNNING
        value = ult._resume_value
        exc = ult._resume_exc
        ult._resume_value = None
        ult._resume_exc = None
        try:
            while True:
                try:
                    _set_current(ult)
                    if exc is not None:
                        cmd = ult.gen.throw(exc)
                        exc = None
                    else:
                        cmd = ult.gen.send(value)
                    value = None
                except StopIteration as stop:
                    self.ults_finished += 1
                    ult.finish(result=stop.value)
                    return
                except BaseException as err:  # noqa: BLE001 - ULT failure path
                    self.ults_finished += 1
                    ult.finish(error=err)
                    return
                finally:
                    _set_current(None)
                # This dispatch runs once per ULT step across every RPC
                # in the system; isinstance on these frozen dataclasses
                # is cheap, but the UltSleep wakeup is a bound method
                # (no closure per sleep).
                if isinstance(cmd, Compute):
                    self.busy_time += cmd.duration
                    yield Sleep(cmd.duration + SCHED_OVERHEAD)
                    continue
                if isinstance(cmd, Park):
                    if _sanitize.ENABLED:
                        # A strict violation fails the offending ULT (via
                        # gen.throw on the next loop turn), not the stream.
                        try:
                            _sanitize.check_blocking_yield(ult, cmd)
                        except AssertionError as err:
                            exc = err
                            continue
                    if _race.ANY_HELD and cmd.timeout is None:
                        # MCH041 needs an unbounded park *while holding
                        # a mutex*: timeout'd parks are bounded waits by
                        # construction, and ANY_HELD (maintained by the
                        # acquire/release hooks) is False in a lock-free
                        # phase -- the common case pays one attribute
                        # load here instead of a hook call.
                        _race.note_park(ult, cmd)
                    cmd.event._park(ult, cmd.timeout)
                    return
                if isinstance(cmd, UltSleep):
                    if _sanitize.ENABLED:
                        try:
                            _sanitize.check_blocking_yield(ult, cmd)
                        except AssertionError as err:
                            exc = err
                            continue
                    ult.state = UltState.BLOCKED
                    self.kernel.post(cmd.duration, ult._timed_ready, ult._park_token)
                    return
                if isinstance(cmd, UltYield):
                    ult.pool.push(ult)
                    return
                # Unknown command: surface as a ULT error.
                exc = TypeError(
                    f"ULT {ult.name!r} yielded unsupported command {cmd!r}; "
                    "ULTs may yield Compute, UltYield, UltSleep, or Park"
                )
        finally:
            self.current_ult = None

    # ------------------------------------------------------------------
    def sample(self) -> dict[str, float]:
        """Cumulative utilization counters (the continuous profiler takes
        per-window deltas of these at each boundary tick)."""
        return {
            "busy_time": self.busy_time,
            "slices_run": float(self.slices_run),
            "ults_finished": float(self.ults_finished),
        }

    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "scheduler": {"type": self.scheduler, "pools": [p.name for p in self.pools]},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<XStream {self.name} pools={[p.name for p in self.pools]}>"
