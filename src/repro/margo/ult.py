"""User-level threads (ULTs) and their synchronization primitives.

Mirrors the Argobots model described in the paper (section 3.2): ULTs are
cooperative units of work that live in pools and are executed by
execution streams.  A ULT is a Python generator that yields *ULT
commands*:

* :class:`Compute` -- occupy the executing stream for some simulated time
  (models actual CPU work; other ULTs on that stream wait);
* :class:`UltYield` -- cooperative yield back to the pool tail;
* :class:`UltSleep` -- release the stream and become ready again later;
* :class:`Park` -- block on a :class:`UltEvent` (with optional timeout).

Handlers and clients compose via plain ``yield from``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..analysis import sanitize as _sanitize
from ..analysis.race import hooks as _race
from ..sim.kernel import SimKernel, TIMED_OUT

__all__ = [
    "Compute",
    "UltYield",
    "UltSleep",
    "Park",
    "ULT",
    "UltEvent",
    "UltMutex",
    "UltState",
    "TIMED_OUT",
]


@dataclass(frozen=True)
class Compute:
    """Occupy the executing stream for ``duration`` simulated seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative compute duration: {self.duration}")


@dataclass(frozen=True)
class UltYield:
    """Cooperatively yield: requeue at the tail of the ULT's pool."""


@dataclass(frozen=True)
class UltSleep:
    """Block for ``duration`` simulated seconds without occupying a stream."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative sleep duration: {self.duration}")


@dataclass(frozen=True)
class Park:
    """Block until ``event`` is set (resumed with the payload), or until
    ``timeout`` simulated seconds pass (resumed with :data:`TIMED_OUT`)."""

    event: "UltEvent"
    timeout: Optional[float] = None


class UltState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


UltGen = Generator[Any, Any, Any]


class ULT:
    """A schedulable user-level thread.

    Completion is observable via :attr:`done_event`; an unhandled
    exception is recorded in :attr:`error` (the Margo RPC layer converts
    handler errors into error responses before they reach this point).
    """

    _counter = 0

    __slots__ = (
        "gen",
        "name",
        "pool",
        "state",
        "done_event",
        "on_finish",
        "result",
        "error",
        "rpc_context",
        "profile_enqueued_at",
        "_resume_value",
        "_resume_exc",
        "_park_token",
    )

    def __init__(self, gen: UltGen, name: str = "", pool: Any = None) -> None:
        if not isinstance(gen, Generator):
            raise TypeError(f"ULT body must be a generator, got {type(gen).__name__}")
        ULT._counter += 1
        self.gen = gen
        self.name = name or f"ult-{ULT._counter}"
        self.pool = pool
        self.state = UltState.READY
        self.done_event: Optional[UltEvent] = None
        self.on_finish: list[Callable[["ULT"], None]] = []
        self.result: Any = None
        self.error: Optional[BaseException] = None
        # Context of the RPC this ULT is currently servicing, if any; used
        # by the monitoring layer to attribute nested RPCs to a parent.
        self.rpc_context: Any = None
        # Simulated time of the last pool push, stamped by the continuous
        # profiler (slots forbid ad-hoc attributes, hence a real slot).
        self.profile_enqueued_at: Optional[float] = None
        self._resume_value: Any = None
        self._resume_exc: Optional[BaseException] = None
        self._park_token = 0

    def ready(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        """Make the ULT runnable again with the given resumption value."""
        if self.state == UltState.DONE:
            return
        self._resume_value = value
        self._resume_exc = exc
        self._park_token += 1  # invalidate any outstanding park wakeups
        self.state = UltState.READY
        if self.pool is None:
            raise RuntimeError(f"ULT {self.name} has no pool to return to")
        self.pool.push(self)

    def _timed_ready(self, token: int) -> None:
        """Timer target for ``UltSleep``: wake if the sleep is still current
        (scheduled as a bound method -- no closure per sleep)."""
        if self._park_token == token and self.state == UltState.BLOCKED:
            self.ready()

    def finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.state = UltState.DONE
        self.result = result
        self.error = error
        if self.done_event is not None:
            self.done_event.set(error if error is not None else result)
        for callback in self.on_finish:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ULT {self.name} {self.state.value}>"


class UltEvent:
    """An event ULTs can :class:`Park` on.

    ``set(payload)`` readies every parked ULT.  Like Argobots eventuals,
    an event stays set until :meth:`clear`; parking on a set event
    resumes on the next scheduling turn.
    """

    __slots__ = ("kernel", "name", "_set", "_payload", "_parked")

    def __init__(self, kernel: SimKernel, name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._set = False
        self._payload: Any = None
        self._parked: list[tuple[ULT, int]] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self, payload: Any = None) -> None:
        if self._set:
            return
        self._set = True
        self._payload = payload
        if _race.EVENT_EDGES:
            # Exact mode only: epoch mode needs no set-time publication
            # (woken waiters get the setter's clock through the push
            # this set performs; late joiners take the approximation
            # clock R in note_event_join).
            _race.note_event_set(self)
        parked, self._parked = self._parked, []
        for ult, token in parked:
            if ult._park_token == token and ult.state == UltState.BLOCKED:
                ult.ready(payload)

    def clear(self) -> None:
        self._set = False
        self._payload = None

    def _park(self, ult: ULT, timeout: Optional[float]) -> None:
        """Called by the executing stream to park ``ult`` here."""
        if self._set:
            if _race.ENABLED:
                _race.note_event_join(self)
            # Resume on a fresh turn for fairness (matches kernel events).
            self.kernel.post(0.0, ult.ready, self._payload)
            return
        ult.state = UltState.BLOCKED
        token = ult._park_token
        self._parked.append((ult, token))
        if timeout is not None:
            # No handle kept: the park token makes a stale fire a no-op,
            # so the no-Timer post() path is safe here.
            self.kernel.post(timeout, _ParkTimeout(self, ult, token))

    def wait(self, timeout: Optional[float] = None) -> UltGen:
        """``yield from event.wait()`` from ULT code."""
        if getattr(self.kernel, "xray_plane", None) is not None:
            # mochi-xray: a park inside a sampled handler is a causal
            # edge on that request's critical path.  The edge list's
            # existence is the gate (only sampled requests carry one),
            # so unsampled parks pay two attribute reads at most.
            ult = current_ult()
            context = ult.rpc_context if ult is not None else None
            edges = (
                getattr(context, "_xray_edges", None)
                if context is not None
                else None
            )
            if edges is not None:
                parked_at = self.kernel.now
                value = yield Park(self, timeout)
                edges.append(("park", self.name, self.kernel.now - parked_at))
                return value
        value = yield Park(self, timeout)
        return value


class _ParkTimeout:
    """Slotted timeout callback for :meth:`UltEvent._park` (replaces a
    per-park closure on the RPC timeout path)."""

    __slots__ = ("event", "ult", "token")

    def __init__(self, event: UltEvent, ult: ULT, token: int) -> None:
        self.event = event
        self.ult = ult
        self.token = token

    def __call__(self) -> None:
        ult = self.ult
        if ult._park_token == self.token and ult.state == UltState.BLOCKED:
            try:
                self.event._parked.remove((ult, self.token))
            except ValueError:
                pass
            ult.ready(TIMED_OUT)


class UltMutex:
    """A FIFO mutex for ULTs (used by Bedrock's reconfiguration paths)."""

    def __init__(self, kernel: SimKernel, name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._locked = False
        self._waiters: list[UltEvent] = []

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> UltGen:
        """``yield from mutex.acquire()``."""
        if self._locked:
            # Contended path only (the uncontended fast path is one
            # boolean check, unchanged): when the waiter services a
            # sampled request, record the full wait -- including the
            # requeue after the gate fires -- as a mochi-xray lock edge.
            waiter = current_ult()
            context = waiter.rpc_context if waiter is not None else None
            edges = (
                getattr(context, "_xray_edges", None)
                if context is not None
                else None
            )
            waited_from = self.kernel.now if edges is not None else None
            while self._locked:
                gate = UltEvent(self.kernel, name=f"mutex:{self.name}")
                self._waiters.append(gate)
                yield Park(gate, None)
            if waited_from is not None:
                edges.append(("lock", self.name, self.kernel.now - waited_from))
        self._locked = True
        if _sanitize.ENABLED:
            _sanitize.note_acquire(current_ult(), self)
        if _race.ENABLED:
            _race.note_acquire(current_ult(), self)
        return None

    def release(self) -> None:
        if not self._locked:
            raise RuntimeError(f"mutex {self.name!r} released while unlocked")
        self._locked = False
        if _sanitize.ENABLED:
            _sanitize.note_release(current_ult(), self)
        if _race.ENABLED:
            _race.note_release(current_ult(), self)
        if self._waiters:
            self._waiters.pop(0).set()


def ult_sleep(duration: float) -> UltGen:
    """Convenience: ``yield from ult_sleep(d)``."""
    yield UltSleep(duration)
    return None


# ----------------------------------------------------------------------
# Current-ULT tracking.  The kernel is single-threaded and cooperative,
# so a single module-level slot (set by the executing XStream around each
# generator step) suffices.  It lets the RPC layer attribute nested RPCs
# to the handler ULT that issued them (paper Listing 1: parent_rpc_id /
# parent_provider_id).
# ----------------------------------------------------------------------
_CURRENT: Optional[ULT] = None


def _set_current(ult: Optional[ULT]) -> None:
    global _CURRENT
    _CURRENT = ult


def current_ult() -> Optional[ULT]:
    """The ULT currently executing user code, or None outside ULT context."""
    return _CURRENT
