"""Argobots-style pools of ready ULTs.

A pool (paper Fig. 2) holds runnable ULTs; one or more execution streams
pull from it.  Pools are named and created from JSON fragments such as
``{"name": "MyPoolX", "type": "fifo_wait", "access": "mpmc"}``
(paper Listing 2).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from ..analysis.race import hooks as _race
from .errors import ConfigError
from .ult import ULT, UltState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .xstream import XStream

__all__ = ["Pool", "POOL_TYPES", "POOL_ACCESS_MODES"]

POOL_TYPES = ("fifo", "fifo_wait", "prio_wait")
POOL_ACCESS_MODES = ("mpmc", "mpsc", "spmc", "spsc", "private")


class Pool:
    """A FIFO queue of ready ULTs with push/pop statistics.

    The ``size`` property (number of queued ULTs) is what the paper's
    monitoring samples periodically ("the sizes of user-level thread
    pools", section 4).
    """

    def __init__(self, name: str, kind: str = "fifo_wait", access: str = "mpmc") -> None:
        if not name:
            raise ConfigError("pool name must be non-empty")
        if kind not in POOL_TYPES:
            raise ConfigError(f"unknown pool type {kind!r} (expected one of {POOL_TYPES})")
        if access not in POOL_ACCESS_MODES:
            raise ConfigError(
                f"unknown pool access mode {access!r} (expected one of {POOL_ACCESS_MODES})"
            )
        self.name = name
        self.kind = kind
        self.access = access
        self._queue: deque[ULT] = deque()
        self._watchers: list["XStream"] = []
        # Precomputed pool->xstream dispatch route (P1): the wakeup
        # events to poke on push, resolved once per attach/detach
        # instead of dereferencing every watcher per push.  ``_wake1``
        # is the sole watcher's wakeup event (the common case: one
        # xstream per pool); ``_wakeN`` the multi-watcher tuple.
        self._wake1: Optional[Any] = None
        self._wakeN: tuple = ()
        # Cumulative counters for monitoring/benchmarks.
        self.total_pushed = 0
        self.total_popped = 0
        # Continuous profiler hook (None when profiling is off, so the
        # hot path pays a single identity check -- same discipline as the
        # race-detector gates below).
        self._profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ULTs currently waiting in the pool."""
        return len(self._queue)

    # mochi-lint: hotpath
    def push(self, ult: ULT) -> None:
        ult.pool = self
        ult.state = UltState.READY
        self._queue.append(ult)
        self.total_pushed += 1
        if _race.ENABLED:
            _race.note_push(self, ult)
        prof = self._profiler
        if prof is not None and prof._sched_on:
            # Sched-latency sampling: stamp the push time while the
            # profiler's duty-cycle burst is open.  Outside a burst the
            # stamp is left untouched -- it is always None here (pop
            # clears it after observing; ContinuousProfiler.stop sweeps
            # queued ULTs), so this stays two attribute loads on the
            # hottest call site in the system.
            ult.profile_enqueued_at = prof.kernel.now
        # Wake the serving xstream(s) over the precomputed route.  The
        # already-set check mirrors SimEvent.set's idempotent early
        # return (including its pre-race-hook position), skipping a call
        # on the hottest site in the system.
        wake = self._wake1
        if wake is not None:
            if not wake._set:
                wake.set()
        else:
            for wake in self._wakeN:
                if not wake._set:
                    wake.set()

    # mochi-lint: hotpath
    def pop(self) -> Optional[ULT]:
        queue = self._queue
        if not queue:
            return None
        self.total_popped += 1
        if _race.PERTURB is not None:
            # Schedule-explorer mode: pop a seeded-random ready ULT
            # instead of the head.  Any pop order is a legal cooperative
            # schedule, so outcomes that change under it are bugs.
            index = _race.PERTURB.randrange(len(queue))
            ult = queue[index]
            del queue[index]
        else:
            ult = queue.popleft()
        if self._profiler is not None and ult.profile_enqueued_at is not None:
            self._profiler._note_pool_pop(self, ult)
        return ult

    # ------------------------------------------------------------------
    def attach_xstream(self, xstream: "XStream") -> None:
        if xstream not in self._watchers:
            self._watchers.append(xstream)
            self._rebuild_route()

    def detach_xstream(self, xstream: "XStream") -> None:
        if xstream in self._watchers:
            self._watchers.remove(xstream)
            self._rebuild_route()

    def _rebuild_route(self) -> None:
        """Re-resolve the push wakeup route (once per config change)."""
        watchers = self._watchers
        if len(watchers) == 1:
            self._wake1 = watchers[0]._wakeup
            self._wakeN = ()
        else:
            self._wake1 = None
            self._wakeN = tuple(x._wakeup for x in watchers)

    @property
    def xstreams(self) -> tuple["XStream", ...]:
        """Execution streams currently serving this pool."""
        return tuple(self._watchers)

    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "Pool":
        """Build a pool from a Listing-2-style JSON fragment."""
        if not isinstance(doc, dict):
            raise ConfigError(f"pool config must be an object, got {type(doc).__name__}")
        unknown = set(doc) - {"name", "type", "access"}
        if unknown:
            raise ConfigError(f"unknown pool config keys: {sorted(unknown)}")
        try:
            name = doc["name"]
        except KeyError as err:
            raise ConfigError("pool config requires a 'name'") from err
        return cls(name=name, kind=doc.get("type", "fifo_wait"), access=doc.get("access", "mpmc"))

    def to_json(self) -> dict[str, Any]:
        return {"name": self.name, "type": self.kind, "access": self.access}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Pool {self.name} size={self.size}>"
