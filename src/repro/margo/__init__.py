"""Margo-like runtime: ULTs, pools, execution streams, RPC, reconfiguration."""

from .config import MargoConfig, PoolSpec, XStreamSpec
from .errors import (
    ConfigError,
    DuplicateNameError,
    FinalizedError,
    MargoError,
    NoSuchPoolError,
    NoSuchRpcError,
    NoSuchXStreamError,
    PoolInUseError,
    RpcError,
    RpcFailedError,
    RpcTimeoutError,
)
from .pool import Pool
from .runtime import MargoInstance, Registration, RequestContext
from .ult import (
    Compute,
    Park,
    ULT,
    UltEvent,
    UltMutex,
    UltSleep,
    UltState,
    UltYield,
    current_ult,
    ult_sleep,
)
from .xstream import XStream

__all__ = [
    "MargoInstance",
    "RequestContext",
    "Registration",
    "MargoConfig",
    "PoolSpec",
    "XStreamSpec",
    "Pool",
    "XStream",
    "ULT",
    "UltEvent",
    "UltMutex",
    "UltState",
    "Compute",
    "Park",
    "UltSleep",
    "UltYield",
    "current_ult",
    "ult_sleep",
    "MargoError",
    "ConfigError",
    "DuplicateNameError",
    "NoSuchPoolError",
    "NoSuchXStreamError",
    "PoolInUseError",
    "RpcError",
    "RpcTimeoutError",
    "RpcFailedError",
    "NoSuchRpcError",
    "FinalizedError",
]
