"""Margo-level error types."""

from __future__ import annotations

__all__ = [
    "MargoError",
    "ConfigError",
    "PoolInUseError",
    "NoSuchPoolError",
    "NoSuchXStreamError",
    "DuplicateNameError",
    "RpcError",
    "RpcTimeoutError",
    "RpcFailedError",
    "NoSuchRpcError",
    "FinalizedError",
]


class MargoError(RuntimeError):
    """Base class for Margo runtime errors."""


class ConfigError(MargoError):
    """Invalid runtime configuration (bad JSON document or invalid change)."""


class DuplicateNameError(ConfigError):
    """A pool or xstream with that name already exists."""


class NoSuchPoolError(ConfigError):
    """Referenced pool does not exist."""


class NoSuchXStreamError(ConfigError):
    """Referenced execution stream does not exist."""


class PoolInUseError(ConfigError):
    """The pool is used by an xstream, provider, or pending work."""


class RpcError(MargoError):
    """Base class for RPC failures."""


class RpcTimeoutError(RpcError):
    """The RPC did not complete within its timeout."""


class RpcFailedError(RpcError):
    """The remote handler raised; carries the remote error message."""


class NoSuchRpcError(RpcError):
    """The target process has no handler registered for (rpc, provider)."""


class FinalizedError(MargoError):
    """Operation attempted on a finalized (shut down) Margo instance."""
