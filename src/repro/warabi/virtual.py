"""Virtual blob targets: the virtual-resource pattern, generalized.

The paper's Observation 10 (section 7) describes virtual resources for
"a provider [that] manages a resource that forwards its requests to
other components that hold the actual data" -- the pattern is not
KV-specific.  :class:`VirtualWarabiProvider` applies it to Warabi:
writes replicate to N real targets, reads fail over, and clients use
the ordinary :class:`~repro.warabi.client.TargetHandle`.

Blob ids are allocated by the virtual provider and mapped to the
per-replica ids (replicas may number blobs differently after repairs).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.component import Provider
from ..core.parallel import ParallelError, parallel
from ..margo.errors import RpcError, RpcFailedError
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute
from ..mercury import BulkHandle
from .client import TargetHandle, WarabiClient
from .provider import WarabiError

__all__ = ["VirtualWarabiProvider"]

ROUTE_COST = 200e-9


class VirtualWarabiProvider(Provider):
    """A Warabi-compatible provider that replicates to N real targets.

    Config::

        {"targets": [{"address": ..., "provider_id": ...}, ...],
         "rpc_timeout": 1.0}
    """

    component_type = "warabi"  # same namespace: transparent to clients

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        pool: Any = None,
        config: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(margo, name, provider_id, pool=pool, config=config)
        targets = self.config.get("targets", [])
        if not targets:
            raise WarabiError("virtual target needs at least one real target")
        client = WarabiClient(margo)
        self.rpc_timeout = float(self.config.get("rpc_timeout", 1.0))
        self.replicas: list[TargetHandle] = []
        for target in targets:
            handle = client.make_handle(target["address"], target["provider_id"])
            handle.timeout = self.rpc_timeout
            self.replicas.append(handle)
        #: virtual blob id -> list of per-replica blob ids.
        self._mapping: dict[int, list[int]] = {}
        self._next_id = 0

        self.register_rpc("create", self._on_create)
        self.register_rpc("write", self._on_write)
        self.register_rpc("read", self._on_read)
        self.register_rpc("size", self._on_size)
        self.register_rpc("erase", self._on_erase)
        self.register_rpc("list", self._on_list)

    # ------------------------------------------------------------------
    def _replica_ids(self, virtual_id: int) -> list[int]:
        try:
            return self._mapping[virtual_id]
        except KeyError:
            raise WarabiError(f"no such blob: {virtual_id}") from None

    def _write_all(self, make_gen) -> Generator:
        yield Compute(ROUTE_COST)
        try:
            results = yield from parallel(
                self.margo, [make_gen(i, r) for i, r in enumerate(self.replicas)]
            )
            return results
        except ParallelError as err:
            if len(err.errors) == len(self.replicas):
                raise WarabiError(
                    f"all {len(self.replicas)} replicas failed"
                ) from err
            # Partial failure tolerated; surviving replicas hold the data.
            return [None] * len(self.replicas)

    def _read_any(self, make_gen) -> Generator:
        yield Compute(ROUTE_COST)
        last: Optional[BaseException] = None
        for index, replica in enumerate(self.replicas):
            try:
                result = yield from make_gen(index, replica)
                return result
            except RpcFailedError:
                raise  # data-level error: authoritative
            except RpcError as err:
                last = err
        raise WarabiError(f"no live replica among {len(self.replicas)}") from last

    # ------------------------------------------------------------------
    def _on_create(self, ctx: RequestContext) -> Generator:
        size = int((ctx.args or {}).get("size", 0))
        ids = yield from self._write_all(lambda i, r: r.create(size=size))
        virtual_id = self._next_id
        self._next_id += 1
        # Failed replicas recorded as -1 (not repaired here).
        self._mapping[virtual_id] = [b if b is not None else -1 for b in ids]
        return virtual_id

    def _on_write(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        ids = self._replica_ids(args["id"])
        offset = args.get("offset", 0)
        bulk = args.get("bulk")
        if bulk is not None:
            yield from self.margo.bulk_transfer(ctx.source, bulk.size, op="pull")
            data = bulk.data
        else:
            data = args["data"]
        results = yield from self._write_all(
            lambda i, r: r.write(ids[i], data, offset=offset) if ids[i] >= 0 else _noop()
        )
        return len(data)

    def _on_read(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        ids = self._replica_ids(args["id"])
        data = yield from self._read_any(
            lambda i, r: r.read(ids[i], offset=args.get("offset", 0),
                                size=args.get("size"))
            if ids[i] >= 0
            else _fail()
        )
        if len(data) >= 8192:
            yield from self.margo.bulk_transfer(ctx.source, len(data), op="push")
            return BulkHandle(self.margo.address, len(data), data)
        return data

    def _on_size(self, ctx: RequestContext) -> Generator:
        ids = self._replica_ids(ctx.args["id"])
        size = yield from self._read_any(
            lambda i, r: r.size(ids[i]) if ids[i] >= 0 else _fail()
        )
        return size

    def _on_erase(self, ctx: RequestContext) -> Generator:
        virtual_id = ctx.args["id"]
        ids = self._replica_ids(virtual_id)
        yield from self._write_all(
            lambda i, r: r.erase(ids[i]) if ids[i] >= 0 else _noop()
        )
        del self._mapping[virtual_id]
        return None

    def _on_list(self, ctx: RequestContext) -> Generator:
        yield Compute(ROUTE_COST)
        return sorted(self._mapping)

    def get_config(self) -> dict[str, Any]:
        doc = dict(self.config)
        doc["virtual"] = True
        doc["num_replicas"] = len(self.replicas)
        doc["num_blobs"] = len(self._mapping)
        return doc


def _noop() -> Generator:
    return None
    yield  # pragma: no cover


def _fail() -> Generator:
    raise RpcError("replica hole (blob missing on this replica)")
    yield  # pragma: no cover
