"""Warabi client: handles to remote blob targets."""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.component import Client, ResourceHandle
from ..mercury import BulkHandle
from .provider import DEFAULT_BULK_THRESHOLD

__all__ = ["WarabiClient", "TargetHandle"]


class TargetHandle(ResourceHandle):
    """Handle to one remote blob target."""

    def create(self, size: int = 0) -> Generator:
        blob_id = yield from self._forward("create", {"size": size})
        return blob_id

    def write(self, blob_id: int, data: bytes, offset: int = 0) -> Generator:
        if isinstance(data, str):
            data = data.encode("utf-8")
        if len(data) >= DEFAULT_BULK_THRESHOLD:
            args: dict[str, Any] = {
                "id": blob_id,
                "offset": offset,
                "bulk": BulkHandle(self.client.margo.address, len(data), bytes(data)),
            }
        else:
            args = {"id": blob_id, "offset": offset, "data": bytes(data)}
        written = yield from self._forward("write", args)
        return written

    def read(self, blob_id: int, offset: int = 0, size: Optional[int] = None) -> Generator:
        result = yield from self._forward(
            "read", {"id": blob_id, "offset": offset, "size": size}
        )
        if isinstance(result, BulkHandle):
            return result.data
        return result

    def size(self, blob_id: int) -> Generator:
        result = yield from self._forward("size", {"id": blob_id})
        return result

    def erase(self, blob_id: int) -> Generator:
        yield from self._forward("erase", {"id": blob_id})
        return None

    def list(self) -> Generator:
        result = yield from self._forward("list")
        return result


class WarabiClient(Client):
    """Client library of the Warabi component."""

    component_type = "warabi"
    handle_cls = TargetHandle

    def make_handle(self, address: str, provider_id: int) -> TargetHandle:
        return TargetHandle(self, address, provider_id)
