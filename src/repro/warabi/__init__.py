"""Warabi: Mochi's blob-storage component."""

from .client import TargetHandle, WarabiClient
from .provider import NoSuchBlobError, WarabiError, WarabiProvider
from .virtual import VirtualWarabiProvider

__all__ = [
    "WarabiProvider",
    "VirtualWarabiProvider",
    "WarabiClient",
    "TargetHandle",
    "WarabiError",
    "NoSuchBlobError",
]
