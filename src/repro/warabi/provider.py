"""Warabi provider: the blob-storage component (paper section 3.2).

Manages named blob *targets*: clients create blobs, then read/write byte
ranges.  Like Yokan, backends are pluggable (``memory`` or
``persistent``), large transfers use the bulk path, and the provider
implements the dynamic-service hooks.
"""

from __future__ import annotations

import json
from typing import Any, Generator, Optional

from ..analysis.race import hooks as _race
from ..core.component import Provider
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute, UltSleep
from ..mercury import BULK_OP_PULL, BULK_OP_PUSH, BulkHandle
from ..storage.local import LocalStore

__all__ = ["WarabiProvider", "WarabiError", "NoSuchBlobError"]

OP_BASE_COST = 300e-9
BYTES_PER_SECOND = 10e9
DEFAULT_BULK_THRESHOLD = 8192


class WarabiError(RuntimeError):
    """Base class for Warabi errors."""


class NoSuchBlobError(WarabiError, KeyError):
    def __init__(self, blob_id: int) -> None:
        super().__init__(blob_id)
        self.blob_id = blob_id

    def __str__(self) -> str:
        return f"no such blob: {self.blob_id}"


class WarabiProvider(Provider):
    """Manages one blob target.

    Config::

        {"target": {"type": "memory" | "persistent"}, "bulk_threshold": 8192}
    """

    component_type = "warabi"

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        pool: Any = None,
        config: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(margo, name, provider_id, pool=pool, config=config)
        target = dict(self.config.get("target", {}))
        self.target_type = target.get("type", "memory")
        if self.target_type not in ("memory", "persistent"):
            raise WarabiError(f"unknown target type {self.target_type!r}")
        self.store: Optional[LocalStore] = None
        if self.target_type == "persistent":
            attachment = target.get("store_attachment", "disk")
            store = margo.process.node.attachments.get(attachment)
            if not isinstance(store, LocalStore):
                raise WarabiError(
                    f"persistent target needs LocalStore attachment {attachment!r}"
                )
            self.store = store
        self.bulk_threshold = int(self.config.get("bulk_threshold", DEFAULT_BULK_THRESHOLD))
        self._blobs: dict[int, bytearray] = {}
        self._next_id = 0
        if self.store is not None:
            self._load_persisted()
        if _race.ENABLED:
            _race.track(self._blobs, f"warabi:{name}.blobs")

        self.register_rpc("create", self._on_create)
        self.register_rpc("write", self._on_write)
        self.register_rpc("read", self._on_read)
        self.register_rpc("size", self._on_size)
        self.register_rpc("erase", self._on_erase)
        self.register_rpc("list", self._on_list)

    # ------------------------------------------------------------------
    def _blob(self, blob_id: int) -> bytearray:
        try:
            return self._blobs[blob_id]
        except KeyError:
            raise NoSuchBlobError(blob_id) from None

    def _blob_path(self, blob_id: int) -> str:
        return f"warabi/{self.name}/{blob_id}"

    def _meta_path(self) -> str:
        return f"warabi/{self.name}/meta"

    def _persist(self, blob_id: int) -> Generator:
        if self.store is not None:
            data = bytes(self._blobs[blob_id])
            yield UltSleep(self.store.write_cost(len(data)))
            self.store.write(self._blob_path(blob_id), data)
        return None

    def _persist_meta(self) -> Generator:
        """Write the id-counter sidecar next to the blob files.

        The counter is authoritative state, not derivable from the
        surviving blobs: after erasing the highest-id blob,
        ``max(ids) + 1`` would re-issue an id a client may still hold.
        The sidecar travels with ``local_files()`` so a REMI migration
        carries it.
        """
        if self.store is not None:
            doc = json.dumps({"next_id": self._next_id}).encode()
            yield UltSleep(self.store.write_cost(len(doc)))
            self.store.write(self._meta_path(), doc)
        return None

    def _load_persisted(self) -> None:
        """Rebuild blobs + id counter from the local store (constructor
        path: how the destination provider of a migration comes up over
        the files REMI just landed)."""
        assert self.store is not None
        next_id = 0
        for path in self.store.list(f"warabi/{self.name}/"):
            leaf = path.rsplit("/", 1)[-1]
            if leaf == "meta":
                try:
                    next_id = max(next_id, int(json.loads(self.store.read(path))["next_id"]))
                except (ValueError, KeyError, TypeError):
                    pass
                continue
            try:
                blob_id = int(leaf)
            except ValueError:
                continue
            self._blobs[blob_id] = bytearray(self.store.read(path))
        self._next_id = max(next_id, max(self._blobs, default=-1) + 1)

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _on_create(self, ctx: RequestContext) -> Generator:
        size = int((ctx.args or {}).get("size", 0))
        if size < 0:
            raise WarabiError(f"negative blob size: {size}")
        yield Compute(OP_BASE_COST)
        blob_id = self._next_id
        self._next_id += 1
        if _race.ENABLED:
            # The id counter is itself shared state: unordered creates
            # hand out schedule-dependent blob ids.
            _race.note_write(self._blobs, "next_id", f"warabi:{self.name}.create")
            _race.note_write(self._blobs, blob_id, f"warabi:{self.name}.create")
        self._blobs[blob_id] = bytearray(size)
        yield from self._persist(blob_id)
        yield from self._persist_meta()
        return blob_id

    def _on_write(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        blob_id = args["id"]
        offset = args.get("offset", 0)
        bulk = args.get("bulk")
        if bulk is not None:
            yield from self.margo.bulk_transfer(ctx.source, bulk.size, op=BULK_OP_PULL)
            data = bulk.data
        else:
            data = args["data"]
        blob = self._blob(blob_id)
        if offset < 0:
            raise WarabiError(f"negative offset: {offset}")
        end = offset + len(data)
        if end > len(blob):
            blob.extend(b"\x00" * (end - len(blob)))
        yield Compute(OP_BASE_COST + len(data) / BYTES_PER_SECOND)
        if _race.ENABLED:
            _race.note_write(self._blobs, blob_id, f"warabi:{self.name}.write")
        blob[offset:end] = data
        yield from self._persist(blob_id)
        return len(data)

    def _on_read(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        blob = self._blob(args["id"])
        if _race.ENABLED:
            _race.note_read(self._blobs, args["id"], f"warabi:{self.name}.read")
        offset = args.get("offset", 0)
        size = args.get("size")
        if size is None:
            size = len(blob) - offset
        if offset < 0 or size < 0 or offset + size > len(blob):
            raise WarabiError(
                f"read out of range: offset={offset} size={size} blob={len(blob)}"
            )
        yield Compute(OP_BASE_COST + size / BYTES_PER_SECOND)
        data = bytes(blob[offset : offset + size])
        if self.store is not None:
            yield UltSleep(self.store.read_cost(size))
        if len(data) >= self.bulk_threshold:
            yield from self.margo.bulk_transfer(ctx.source, len(data), op=BULK_OP_PUSH)
            return BulkHandle(self.margo.address, len(data), data)
        return data

    def _on_size(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_BASE_COST)
        if _race.ENABLED:
            _race.note_read(self._blobs, ctx.args["id"], f"warabi:{self.name}.size")
        return len(self._blob(ctx.args["id"]))

    def _on_erase(self, ctx: RequestContext) -> Generator:
        blob_id = ctx.args["id"]
        self._blob(blob_id)  # existence check
        yield Compute(OP_BASE_COST)
        if _race.ENABLED:
            _race.note_write(self._blobs, blob_id, f"warabi:{self.name}.erase")
        del self._blobs[blob_id]
        if self.store is not None and self.store.exists(self._blob_path(blob_id)):
            self.store.delete(self._blob_path(blob_id))
        return None

    def _on_list(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_BASE_COST)
        return sorted(self._blobs)

    # ------------------------------------------------------------------
    # dynamic-service hooks
    # ------------------------------------------------------------------
    def local_files(self) -> list[str]:
        if self.store is None:
            return []
        return self.store.list(f"warabi/{self.name}/")

    def get_config(self) -> dict[str, Any]:
        doc = dict(self.config)
        doc["target"] = {"type": self.target_type}
        doc["statistics"] = {
            "num_blobs": len(self._blobs),
            "size_bytes": sum(len(b) for b in self._blobs.values()),
        }
        return doc

    def migrate(self, remi_client: Any, dest_address: str, dest_provider_id: int) -> Generator:
        if self.store is None:
            raise WarabiError("migration requires a persistent target")
        for blob_id in self._blobs:
            yield from self._persist(blob_id)
        yield from self._persist_meta()
        result = yield from remi_client.migrate_files(
            dest_address, self.local_files(), dest_provider_id=dest_provider_id
        )
        return result

    #: reserved (non-numeric) record key carrying the id counter in a
    #: checkpoint image; blob records use their decimal id as the key.
    _META_KEY = b"meta"

    def checkpoint(self, pfs: Any, path: str) -> Generator:
        from ..yokan.backend import encode_records

        records = [
            (self._META_KEY, json.dumps({"next_id": self._next_id}).encode())
        ]
        records.extend(
            (str(blob_id).encode(), bytes(blob))
            for blob_id, blob in sorted(self._blobs.items())
        )
        image = encode_records(records)
        yield UltSleep(pfs.write_cost(len(image)))
        pfs.write(path, image)
        return len(image)

    def restore(self, pfs: Any, path: str) -> Generator:
        from ..yokan.backend import decode_records

        image = pfs.read(path)
        yield UltSleep(pfs.read_cost(len(image)))
        blobs: dict[int, bytearray] = {}
        next_id = 0
        for key, value in decode_records(image):
            if key == self._META_KEY:
                next_id = int(json.loads(value)["next_id"])
                continue
            blobs[int(key)] = bytearray(value)
        self._blobs = blobs
        # Pre-sidecar images have no meta record: fall back to the old
        # derivation rather than refusing to restore.
        self._next_id = max(next_id, max(self._blobs, default=-1) + 1)
        return len(image)
