"""Tokenizer for the Jx9 subset.

Jx9 is "a lightweight, embeddable scripting language designed to handle
queries on JSON documents" (paper section 5).  The subset implemented
here covers the query style of Listing 4: ``$``-variables, ``foreach``,
``if``/``else``, arrays/objects, member access, and builtin calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Token", "tokenize", "Jx9SyntaxError"]


class Jx9SyntaxError(SyntaxError):
    """Lexing or parsing failure, with line information."""


KEYWORDS = {"foreach", "as", "if", "else", "return", "true", "false", "null", "while"}

PUNCT = [
    "=>",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ";",
    ",",
    ":",
    ".",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "var", "ident", "keyword", "number", "string", "punct", "eof"
    value: str
    line: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    index = 0
    line = 1
    length = len(source)
    while index < length:
        ch = source[index]
        if ch == "\n":
            line += 1
            index += 1
            continue
        if ch.isspace():
            index += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise Jx9SyntaxError(f"unterminated comment at line {line}")
            line += source.count("\n", index, end)
            index = end + 2
            continue
        if ch == "$":
            start = index + 1
            end = start
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            if end == start:
                raise Jx9SyntaxError(f"bare '$' at line {line}")
            tokens.append(Token("var", source[start:end], line))
            index = end
            continue
        if ch.isalpha() or ch == "_":
            end = index
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            word = source[index:end]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            index = end
            continue
        if ch.isdigit():
            end = index
            seen_dot = False
            while end < length and (source[end].isdigit() or (source[end] == "." and not seen_dot)):
                if source[end] == ".":
                    # Only part of the number if followed by a digit.
                    if end + 1 >= length or not source[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token("number", source[index:end], line))
            index = end
            continue
        if ch in "\"'":
            quote = ch
            end = index + 1
            chunks = []
            while end < length and source[end] != quote:
                if source[end] == "\\" and end + 1 < length:
                    escape = source[end + 1]
                    chunks.append({"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(escape, escape))
                    end += 2
                else:
                    chunks.append(source[end])
                    end += 1
            if end >= length:
                raise Jx9SyntaxError(f"unterminated string at line {line}")
            tokens.append(Token("string", "".join(chunks), line))
            index = end + 1
            continue
        for punct in PUNCT:
            if source.startswith(punct, index):
                tokens.append(Token("punct", punct, line))
                index += len(punct)
                break
        else:
            raise Jx9SyntaxError(f"unexpected character {ch!r} at line {line}")
    tokens.append(Token("eof", "", line))
    return tokens
