"""Parser + evaluator for the Jx9 subset.

Executes queries like paper Listing 4 verbatim::

    $result = [];
    foreach ($__config__.providers as $p) {
        array_push($result, $p.name); }
    return $result;

The host (Bedrock) injects ``$__config__``; the script returns a JSON
value.  Execution is sandboxed: only the builtins below are callable and
a step budget bounds runtime.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .lexer import Jx9SyntaxError, Token, tokenize

__all__ = ["Jx9Error", "Jx9SyntaxError", "jx9_execute"]


class Jx9Error(RuntimeError):
    """Runtime failure inside a Jx9 script."""


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


# ----------------------------------------------------------------------
# builtins
# ----------------------------------------------------------------------
def _array_push(array: Any, *values: Any) -> int:
    if not isinstance(array, list):
        raise Jx9Error("array_push() expects an array")
    array.extend(values)
    return len(array)


def _count(value: Any) -> int:
    if isinstance(value, (list, dict, str)):
        return len(value)
    raise Jx9Error("count() expects an array, object, or string")


BUILTINS: dict[str, Callable[..., Any]] = {
    "array_push": _array_push,
    "count": _count,
    "array_keys": lambda obj: sorted(obj.keys()) if isinstance(obj, dict) else list(range(len(obj))),
    "array_values": lambda obj: list(obj.values()) if isinstance(obj, dict) else list(obj),
    "strlen": lambda s: len(s),
    "substr": lambda s, start, length=None: s[start : start + length] if length is not None else s[start:],
    "in_array": lambda needle, haystack: needle in haystack,
    "abs": abs,
    "min": min,
    "max": max,
    "floor": lambda x: float(int(x // 1)),
    "ceil": lambda x: float(-((-x) // 1)),
    "is_array": lambda v: isinstance(v, list),
    "is_object": lambda v: isinstance(v, dict),
    "is_string": lambda v: isinstance(v, str),
}


# ----------------------------------------------------------------------
# parser (recursive descent over the token list)
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            raise Jx9SyntaxError(
                f"expected {value or kind}, got {token.value!r} at line {token.line}"
            )
        return token

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        if self.at(kind, value):
            self.next()
            return True
        return False

    # ---- statements ---------------------------------------------------
    def parse_program(self) -> list:
        stmts = []
        while not self.at("eof"):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self):
        if self.at("keyword", "return"):
            self.next()
            value = None if self.at("punct", ";") else self.parse_expr()
            self.accept("punct", ";")
            return ("return", value)
        if self.at("keyword", "foreach"):
            self.next()
            self.expect("punct", "(")
            iterable = self.parse_expr()
            self.expect("keyword", "as")
            first = self.expect("var").value
            second = None
            if self.accept("punct", "=>"):
                second = self.expect("var").value
            self.expect("punct", ")")
            body = self.parse_block_or_stmt()
            return ("foreach", iterable, first, second, body)
        if self.at("keyword", "if"):
            self.next()
            self.expect("punct", "(")
            condition = self.parse_expr()
            self.expect("punct", ")")
            then = self.parse_block_or_stmt()
            otherwise = None
            if self.accept("keyword", "else"):
                otherwise = self.parse_block_or_stmt()
            return ("if", condition, then, otherwise)
        if self.at("keyword", "while"):
            self.next()
            self.expect("punct", "(")
            condition = self.parse_expr()
            self.expect("punct", ")")
            body = self.parse_block_or_stmt()
            return ("while", condition, body)
        if self.at("punct", "{"):
            return ("block", self.parse_block())
        # assignment or bare expression
        expr = self.parse_expr()
        if self.accept("punct", "="):
            value = self.parse_expr()
            self.accept("punct", ";")
            return ("assign", expr, value)
        self.accept("punct", ";")
        return ("expr", expr)

    def parse_block_or_stmt(self):
        if self.at("punct", "{"):
            return self.parse_block()
        return [self.parse_stmt()]

    def parse_block(self) -> list:
        self.expect("punct", "{")
        stmts = []
        while not self.at("punct", "}"):
            if self.at("eof"):
                raise Jx9SyntaxError("unterminated block")
            stmts.append(self.parse_stmt())
        self.expect("punct", "}")
        return stmts

    # ---- expressions --------------------------------------------------
    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self.at("punct", "||"):
            self.next()
            left = ("or", left, self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_cmp()
        while self.at("punct", "&&"):
            self.next()
            left = ("and", left, self.parse_cmp())
        return left

    def parse_cmp(self):
        left = self.parse_add()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self.at("punct", op):
                self.next()
                return ("cmp", op, left, self.parse_add())
        return left

    def parse_add(self):
        left = self.parse_mul()
        while self.at("punct", "+") or self.at("punct", "-"):
            op = self.next().value
            left = ("bin", op, left, self.parse_mul())
        return left

    def parse_mul(self):
        left = self.parse_unary()
        while self.at("punct", "*") or self.at("punct", "/") or self.at("punct", "%"):
            op = self.next().value
            left = ("bin", op, left, self.parse_unary())
        return left

    def parse_unary(self):
        if self.accept("punct", "!"):
            return ("not", self.parse_unary())
        if self.accept("punct", "-"):
            return ("neg", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self):
        node = self.parse_primary()
        while True:
            if self.accept("punct", "."):
                name = self.next()
                if name.kind not in ("ident", "keyword"):
                    raise Jx9SyntaxError(f"expected member name at line {name.line}")
                node = ("member", node, name.value)
            elif self.at("punct", "["):
                self.next()
                index = self.parse_expr()
                self.expect("punct", "]")
                node = ("index", node, index)
            else:
                return node

    def parse_primary(self):
        token = self.peek()
        if token.kind == "number":
            self.next()
            text = token.value
            return ("lit", float(text) if "." in text else int(text))
        if token.kind == "string":
            self.next()
            return ("lit", token.value)
        if token.kind == "keyword" and token.value in ("true", "false", "null"):
            self.next()
            return ("lit", {"true": True, "false": False, "null": None}[token.value])
        if token.kind == "var":
            self.next()
            return ("var", token.value)
        if token.kind == "ident":
            self.next()
            self.expect("punct", "(")
            args = []
            if not self.at("punct", ")"):
                args.append(self.parse_expr())
                while self.accept("punct", ","):
                    args.append(self.parse_expr())
            self.expect("punct", ")")
            return ("call", token.value, args)
        if self.accept("punct", "("):
            inner = self.parse_expr()
            self.expect("punct", ")")
            return inner
        if self.accept("punct", "["):
            elements = []
            if not self.at("punct", "]"):
                elements.append(self.parse_expr())
                while self.accept("punct", ","):
                    elements.append(self.parse_expr())
            self.expect("punct", "]")
            return ("array", elements)
        if self.accept("punct", "{"):
            pairs = []
            if not self.at("punct", "}"):
                pairs.append(self._parse_pair())
                while self.accept("punct", ","):
                    pairs.append(self._parse_pair())
            self.expect("punct", "}")
            return ("object", pairs)
        raise Jx9SyntaxError(
            f"unexpected token {token.value!r} at line {token.line}"
        )

    def _parse_pair(self):
        key_token = self.next()
        if key_token.kind not in ("string", "ident"):
            raise Jx9SyntaxError(f"expected object key at line {key_token.line}")
        # jx9/PHP uses ':' inside JSON-like objects.
        if not self.accept("punct", ":"):
            self.expect("punct", "=>")
        return (key_token.value, self.parse_expr())


# ----------------------------------------------------------------------
# evaluator
# ----------------------------------------------------------------------
class _Evaluator:
    def __init__(self, env: dict[str, Any], max_steps: int = 200_000) -> None:
        self.env = env
        self.max_steps = max_steps
        self.steps = 0

    def tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise Jx9Error(f"script exceeded {self.max_steps} steps")

    # ---- statements ---------------------------------------------------
    def run(self, stmts: list) -> Any:
        try:
            last = None
            for stmt in stmts:
                last = self.exec_stmt(stmt)
            return last
        except _Return as signal:
            return signal.value

    def exec_block(self, stmts: list) -> Any:
        last = None
        for stmt in stmts:
            last = self.exec_stmt(stmt)
        return last

    def exec_stmt(self, stmt) -> Any:
        self.tick()
        kind = stmt[0]
        if kind == "expr":
            return self.eval(stmt[1])
        if kind == "assign":
            value = self.eval(stmt[2])
            self.assign(stmt[1], value)
            return None
        if kind == "return":
            raise _Return(None if stmt[1] is None else self.eval(stmt[1]))
        if kind == "block":
            return self.exec_block(stmt[1])
        if kind == "if":
            _, condition, then, otherwise = stmt
            if self.truthy(self.eval(condition)):
                return self.exec_block(then)
            if otherwise is not None:
                return self.exec_block(otherwise)
            return None
        if kind == "while":
            _, condition, body = stmt
            while self.truthy(self.eval(condition)):
                self.tick()
                self.exec_block(body)
            return None
        if kind == "foreach":
            _, iterable_node, first, second, body = stmt
            iterable = self.eval(iterable_node)
            if isinstance(iterable, dict):
                items = list(iterable.items())
            elif isinstance(iterable, list):
                items = list(enumerate(iterable))
            else:
                raise Jx9Error("foreach expects an array or object")
            for key, value in items:
                self.tick()
                if second is None:
                    self.env[first] = value
                else:
                    self.env[first] = key
                    self.env[second] = value
                self.exec_block(body)
            return None
        raise Jx9Error(f"unknown statement kind {kind!r}")

    def assign(self, target, value: Any) -> None:
        kind = target[0]
        if kind == "var":
            self.env[target[1]] = value
            return
        if kind == "member":
            container = self.eval(target[1])
            if not isinstance(container, dict):
                raise Jx9Error("member assignment on a non-object")
            container[target[2]] = value
            return
        if kind == "index":
            container = self.eval(target[1])
            index = self.eval(target[2])
            if isinstance(container, list):
                container[int(index)] = value
            elif isinstance(container, dict):
                container[index] = value
            else:
                raise Jx9Error("index assignment on a non-container")
            return
        raise Jx9Error("invalid assignment target")

    # ---- expressions --------------------------------------------------
    @staticmethod
    def truthy(value: Any) -> bool:
        return bool(value)

    def eval(self, node) -> Any:
        self.tick()
        kind = node[0]
        if kind == "lit":
            return node[1]
        if kind == "var":
            name = node[1]
            if name not in self.env:
                raise Jx9Error(f"undefined variable ${name}")
            return self.env[name]
        if kind == "array":
            return [self.eval(e) for e in node[1]]
        if kind == "object":
            return {k: self.eval(v) for k, v in node[1]}
        if kind == "member":
            container = self.eval(node[1])
            if isinstance(container, dict):
                if node[2] not in container:
                    return None  # jx9: missing members are null
                return container[node[2]]
            raise Jx9Error(f"member access '.{node[2]}' on a non-object")
        if kind == "index":
            container = self.eval(node[1])
            index = self.eval(node[2])
            try:
                if isinstance(container, list):
                    return container[int(index)]
                if isinstance(container, dict):
                    return container.get(index)
            except (IndexError, ValueError) as err:
                raise Jx9Error(f"bad index {index!r}") from err
            raise Jx9Error("indexing a non-container")
        if kind == "call":
            name, arg_nodes = node[1], node[2]
            fn = BUILTINS.get(name)
            if fn is None:
                raise Jx9Error(f"call to unknown function {name}()")
            args = [self.eval(a) for a in arg_nodes]
            return fn(*args)
        if kind == "not":
            return not self.truthy(self.eval(node[1]))
        if kind == "neg":
            return -self.eval(node[1])
        if kind == "or":
            left = self.eval(node[1])
            return left if self.truthy(left) else self.eval(node[2])
        if kind == "and":
            left = self.eval(node[1])
            return self.eval(node[2]) if self.truthy(left) else left
        if kind == "cmp":
            op, left, right = node[1], self.eval(node[2]), self.eval(node[3])
            try:
                return {
                    "==": lambda: left == right,
                    "!=": lambda: left != right,
                    "<": lambda: left < right,
                    "<=": lambda: left <= right,
                    ">": lambda: left > right,
                    ">=": lambda: left >= right,
                }[op]()
            except TypeError as err:
                raise Jx9Error(f"bad comparison {op} between types") from err
        if kind == "bin":
            op, left, right = node[1], self.eval(node[2]), self.eval(node[3])
            try:
                if op == "+":
                    if isinstance(left, str) or isinstance(right, str):
                        return f"{left}{right}"
                    return left + right
                if op == "-":
                    return left - right
                if op == "*":
                    return left * right
                if op == "/":
                    return left / right
                if op == "%":
                    return left % right
            except (TypeError, ZeroDivisionError) as err:
                raise Jx9Error(f"arithmetic error for {op!r}: {err}") from err
        raise Jx9Error(f"unknown expression kind {kind!r}")


def jx9_execute(source: str, env: Optional[dict[str, Any]] = None, max_steps: int = 200_000) -> Any:
    """Run a Jx9 query; ``env`` supplies ``$``-variables (e.g.
    ``{"__config__": {...}}``)."""
    tokens = tokenize(source)
    parser = _Parser(tokens)
    program = parser.parse_program()
    evaluator = _Evaluator(dict(env or {}), max_steps=max_steps)
    return evaluator.run(program)
