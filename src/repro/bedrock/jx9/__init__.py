"""Jx9-subset query engine for Bedrock configurations."""

from .interpreter import Jx9Error, jx9_execute
from .lexer import Jx9SyntaxError, tokenize

__all__ = ["jx9_execute", "Jx9Error", "Jx9SyntaxError", "tokenize"]
