"""One-call process bootstrap from a Listing-3 document.

"Bedrock's bootstrapping mechanism is already a powerful way to set up
Mochi services without the need for glue code" (paper section 5).
:func:`boot_process` consumes the whole document: the ``margo`` section
configures the runtime, ``libraries`` + ``providers`` configure Bedrock.
"""

from __future__ import annotations

from typing import Any, Optional

from ..cluster import Cluster
from ..margo.runtime import MargoInstance
from ..storage.local import LocalStore
from ..storage.pfs import ParallelFileSystem
from .server import BedrockServer

__all__ = ["boot_process"]


def boot_process(
    cluster: Cluster,
    name: str,
    node: str,
    config: Optional[dict[str, Any]] = None,
    pfs: Optional[ParallelFileSystem] = None,
    with_local_store: bool = True,
    monitors: tuple = (),
    validate: bool = True,
) -> tuple[MargoInstance, BedrockServer]:
    """Create a process on ``node`` and boot it from ``config``.

    Returns the Margo instance and its Bedrock server.  A node-local
    store is attached (once per node) unless ``with_local_store=False``.

    Unless ``validate=False``, the whole document is first run through
    the static cross-validator (:mod:`repro.analysis.config_check`) --
    the same pass ``repro-lint`` applies to config files on disk -- so
    a bad document fails before any process exists, with the exception
    type the runtime would have raised for the same mistake.
    """
    if validate:
        # Imported lazily: config_check depends on this package.
        from ..analysis.config_check import check_boot_config

        check_boot_config(config, path=f"<boot:{name}>")
    config = dict(config or {})
    node_obj = cluster.node(node)
    if with_local_store and "disk" not in node_obj.attachments:
        LocalStore(node_obj)
    margo = cluster.add_margo(
        name, node_obj, config=config.pop("margo", None), monitors=monitors
    )
    bedrock = BedrockServer(margo, config=config, pfs=pfs)
    return margo, bedrock
