"""Bedrock modules: how Bedrock learns to instantiate component types.

Paper Listing 3: the ``libraries`` section "tells Bedrock which
libraries to load to know how to instantiate a provider of type 'A'.
This library contains a structure of function pointers that Bedrock will
call to instantiate providers, clients, and resource handles, as well as
to obtain their configuration."

:class:`BedrockModule` is that structure of function pointers; the
library registry maps ``.so`` names to modules.  The built-in Mochi
components register their libraries at import time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = [
    "BedrockModule",
    "register_library",
    "resolve_library",
    "known_libraries",
    "builtin_libraries",
    "ModuleError",
]


class ModuleError(RuntimeError):
    """Unknown library / type, or a module contract violation."""


@dataclass(frozen=True)
class BedrockModule:
    """Function-pointer table for one component type."""

    type_name: str
    #: (margo, name, provider_id, pool, config, dependencies) -> Provider
    provider_factory: Callable[..., Any]
    #: (margo) -> Client; optional.
    client_factory: Optional[Callable[..., Any]] = None
    #: Names of dependencies the provider requires, e.g. ("remi",).
    required_dependencies: tuple[str, ...] = ()
    #: Whether providers of this type support migrate()/checkpoint().
    supports_migration: bool = False
    supports_checkpoint: bool = False


_LIBRARIES: dict[str, BedrockModule] = {}


def register_library(library: str, module: BedrockModule) -> None:
    """Associate a library path (e.g. ``"libyokan.so"``) with a module."""
    existing = _LIBRARIES.get(library)
    if existing is not None and existing is not module:
        raise ModuleError(f"library {library!r} already registered")
    _LIBRARIES[library] = module


def resolve_library(library: str) -> BedrockModule:
    try:
        return _LIBRARIES[library]
    except KeyError as err:
        raise ModuleError(
            f"unknown library {library!r}; known: {sorted(_LIBRARIES)}"
        ) from err


def known_libraries() -> list[str]:
    return sorted(_LIBRARIES)


# ----------------------------------------------------------------------
# built-in component libraries
# ----------------------------------------------------------------------
def _yokan_factory(margo, name, provider_id, pool, config, dependencies):
    from ..yokan.provider import YokanProvider

    return YokanProvider(margo, name, provider_id, pool=pool, config=config)


def _yokan_virtual_factory(margo, name, provider_id, pool, config, dependencies):
    from ..yokan.virtual import VirtualYokanProvider

    return VirtualYokanProvider(margo, name, provider_id, pool=pool, config=config)


def _warabi_factory(margo, name, provider_id, pool, config, dependencies):
    from ..warabi.provider import WarabiProvider

    return WarabiProvider(margo, name, provider_id, pool=pool, config=config)


def _poesie_factory(margo, name, provider_id, pool, config, dependencies):
    from ..poesie.provider import PoesieProvider

    return PoesieProvider(margo, name, provider_id, pool=pool, config=config)


def _remi_factory(margo, name, provider_id, pool, config, dependencies):
    from ..remi.provider import RemiProvider

    return RemiProvider(margo, name, provider_id, pool=pool, config=config)


def _yokan_client(margo):
    from ..yokan.client import YokanClient

    return YokanClient(margo)


def _warabi_client(margo):
    from ..warabi.client import WarabiClient

    return WarabiClient(margo)


def _poesie_client(margo):
    from ..poesie.provider import PoesieClient

    return PoesieClient(margo)


def _remi_client(margo):
    from ..remi.client import RemiClient

    return RemiClient(margo)


def builtin_libraries() -> dict[str, BedrockModule]:
    """The standard Mochi component libraries."""
    return {
        "libyokan.so": BedrockModule(
            type_name="yokan",
            provider_factory=_yokan_factory,
            client_factory=_yokan_client,
            supports_migration=True,
            supports_checkpoint=True,
        ),
        "libyokan-virtual.so": BedrockModule(
            type_name="yokan-virtual",
            provider_factory=_yokan_virtual_factory,
            client_factory=_yokan_client,
        ),
        "libwarabi.so": BedrockModule(
            type_name="warabi",
            provider_factory=_warabi_factory,
            client_factory=_warabi_client,
            supports_migration=True,
            supports_checkpoint=True,
        ),
        "libpoesie.so": BedrockModule(
            type_name="poesie",
            provider_factory=_poesie_factory,
            client_factory=_poesie_client,
        ),
        "libremi.so": BedrockModule(
            type_name="remi",
            provider_factory=_remi_factory,
            client_factory=_remi_client,
        ),
    }


for _lib, _mod in builtin_libraries().items():
    if _lib not in _LIBRARIES:
        register_library(_lib, _mod)
