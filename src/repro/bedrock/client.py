"""Bedrock client: remote manipulation of a process's configuration.

Mirrors the C++ API of paper Listing 5::

    bedrock::Client client{...};
    bedrock::ServiceHandle p = client.makeServiceHandle(address);
    p.addPool(jsonPoolConfig);
    p.removePool("MyPoolX");
    p.loadModule("B", "libcomponent_b.so");
    p.startProvider("myProviderB", "B", ...);

plus the distributed-transaction coordinator that gives concurrent
reconfigurations all-or-nothing semantics across processes (section 5,
Observation 3).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.component import Client, ResourceHandle
from ..core.parallel import parallel
from .errors import TransactionError
from .server import BEDROCK_PROVIDER_ID

__all__ = ["BedrockClient", "ServiceHandle", "ServiceGroupHandle"]


class ServiceHandle(ResourceHandle):
    """Handle to the Bedrock server of one process."""

    # ---- argobots-level reconfiguration --------------------------------
    def add_pool(self, pool_config: dict[str, Any]) -> Generator:
        yield from self._forward("add_pool", pool_config)
        return None

    def remove_pool(self, name: str) -> Generator:
        yield from self._forward("remove_pool", {"name": name})
        return None

    def add_xstream(self, xstream_config: dict[str, Any]) -> Generator:
        yield from self._forward("add_xstream", xstream_config)
        return None

    def remove_xstream(self, name: str) -> Generator:
        yield from self._forward("remove_xstream", {"name": name})
        return None

    # ---- provider-level reconfiguration --------------------------------
    def load_module(self, type_name: str, library: str) -> Generator:
        yield from self._forward("load_module", {"type": type_name, "library": library})
        return None

    def start_provider(
        self,
        name: str,
        type_name: str,
        provider_id: int = 1,
        pool: Optional[str] = None,
        config: Optional[dict[str, Any]] = None,
        dependencies: Optional[dict[str, Any]] = None,
    ) -> Generator:
        op: dict[str, Any] = {
            "name": name,
            "type": type_name,
            "provider_id": provider_id,
            "config": config or {},
            "dependencies": dependencies or {},
        }
        if pool is not None:
            op["pool"] = pool
        result = yield from self._forward("start_provider", op)
        return result

    def stop_provider(self, name: str) -> Generator:
        yield from self._forward("stop_provider", {"name": name})
        return None

    def list_providers(self) -> Generator:
        result = yield from self._forward("list_providers")
        return result

    # ---- configuration access ------------------------------------------
    def get_config(self) -> Generator:
        result = yield from self._forward("get_config")
        return result

    def query(self, jx9_script: str) -> Generator:
        """Run a Jx9 query on the remote process's configuration."""
        result = yield from self._forward("query", {"script": jx9_script})
        return result

    # ---- observability access ------------------------------------------
    def get_metrics(self) -> Generator:
        """Snapshot of the remote process's metrics registry."""
        result = yield from self._forward("get_metrics")
        return result

    def get_traces(self) -> Generator:
        """Remote process's spans as a Chrome trace-event document."""
        result = yield from self._forward("get_traces")
        return result

    def get_profile(self, last: Optional[int] = None) -> Generator:
        """Closed profile windows of the remote continuous profiler
        (``last`` limits the reply to the N most recent windows)."""
        args: dict[str, Any] = {} if last is None else {"last": last}
        result = yield from self._forward("get_profile", args)
        return result

    def get_utilization(self) -> Generator:
        """Latest closed window's utilization and per-provider rates."""
        result = yield from self._forward("get_utilization")
        return result

    def get_health(self) -> Generator:
        """Cluster health snapshot (per-target states, phi levels)."""
        result = yield from self._forward("get_health")
        return result

    def get_incidents(self, last: Optional[int] = None) -> Generator:
        """The incident log: faults correlated with SWIM detection,
        elections, and recovery (``last`` limits to the N most recent)."""
        args: dict[str, Any] = {} if last is None else {"last": last}
        result = yield from self._forward("get_incidents", args)
        return result

    def get_slo_status(self) -> Generator:
        """The remote process's SLO engine status (burn rates, budgets,
        alert transitions)."""
        result = yield from self._forward("get_slo_status")
        return result

    def get_critical_path(
        self, last: Optional[int] = None, trace_id: Optional[str] = None
    ) -> Generator:
        """Recorded per-request critical paths from the mochi-xray plane
        (``last`` limits the reply, ``trace_id`` filters to one trace)."""
        args: dict[str, Any] = {}
        if last is not None:
            args["last"] = last
        if trace_id is not None:
            args["trace_id"] = trace_id
        result = yield from self._forward("get_critical_path", args)
        return result

    def get_attribution(self, last: Optional[int] = None) -> Generator:
        """Per-window tail-latency attribution and what-if rankings from
        the mochi-xray plane (``last`` limits to the N most recent)."""
        args: dict[str, Any] = {} if last is None else {"last": last}
        result = yield from self._forward("get_attribution", args)
        return result

    # ---- dynamic-service operations --------------------------------------
    def migrate_provider(
        self,
        name: str,
        dest_address: str,
        remi_provider_id: int = 0,
        method: str = "auto",
        **kwargs: Any,
    ) -> Generator:
        op = {
            "name": name,
            "dest_address": dest_address,
            "remi_provider_id": remi_provider_id,
            "method": method,
            **kwargs,
        }
        result = yield from self._forward("migrate_provider", op, timeout=30.0)
        return result

    def checkpoint_provider(self, name: str, path: str) -> Generator:
        result = yield from self._forward(
            "checkpoint_provider", {"name": name, "path": path}, timeout=30.0
        )
        return result

    def restore_provider(self, name: str, path: str) -> Generator:
        result = yield from self._forward(
            "restore_provider", {"name": name, "path": path}, timeout=30.0
        )
        return result


class ServiceGroupHandle:
    """Coordinates reconfigurations across several Bedrock processes.

    Implements the two-phase-commit protocol whose guarantee the paper
    states for concurrent conflicting requests: "either c1's or c2's
    request will succeed, but not both."
    """

    def __init__(self, client: "BedrockClient", addresses: list[str]) -> None:
        self.client = client
        self.addresses = list(addresses)
        self._tx_counter = 0

    def handle_for(self, address: str) -> ServiceHandle:
        return self.client.make_handle(address, BEDROCK_PROVIDER_ID)

    def _next_txid(self) -> str:
        self._tx_counter += 1
        return f"tx:{self.client.margo.address}:{self._tx_counter}"

    def execute_transaction(
        self, ops_by_address: dict[str, list[dict[str, Any]]]
    ) -> Generator:
        """Atomically apply ops across processes; raises
        :class:`TransactionError` (after aborting everywhere) if any
        participant votes no."""
        margo = self.client.margo
        txid = self._next_txid()
        participants = sorted(ops_by_address)

        def prepare(address: str) -> Generator:
            reply = yield from margo.forward(
                address,
                "bedrock_tx_prepare",
                {"txid": txid, "ops": ops_by_address[address]},
                provider_id=BEDROCK_PROVIDER_ID,
                timeout=5.0,
            )
            return reply

        votes = yield from parallel(margo, [prepare(a) for a in participants])
        if all(v["vote"] for v in votes):
            verb, outcome = "bedrock_tx_commit", None
        else:
            reasons = [v.get("reason") for v in votes if not v["vote"]]
            verb, outcome = "bedrock_tx_abort", reasons

        def finish(address: str) -> Generator:
            yield from margo.forward(
                address,
                verb,
                {"txid": txid},
                provider_id=BEDROCK_PROVIDER_ID,
                timeout=5.0,
            )

        yield from parallel(margo, [finish(a) for a in participants])
        if outcome is not None:
            raise TransactionError(
                f"transaction {txid} aborted: {'; '.join(map(str, outcome))}"
            )
        return txid

    def start_provider_tx(
        self, address: str, op: dict[str, Any]
    ) -> Generator:
        """Start a provider transactionally, pinning its remote
        dependencies so concurrent destruction cannot race it (the
        paper's c1/c2 scenario)."""
        ops: dict[str, list[dict[str, Any]]] = {address: [dict(op, action="start_provider")]}
        token = f"remote:{address}:{op['name']}"
        for spec in (op.get("dependencies") or {}).values():
            if isinstance(spec, dict):
                pin = {
                    "action": "pin_provider",
                    "name": spec.get("provider_name"),
                    "dependent": token,
                }
                if pin["name"] is None:
                    raise TransactionError(
                        "transactional remote dependencies need 'provider_name'"
                    )
                ops.setdefault(spec["address"], []).append(pin)
        txid = yield from self.execute_transaction(ops)
        return txid

    def stop_provider_tx(self, address: str, name: str) -> Generator:
        txid = yield from self.execute_transaction(
            {address: [{"action": "stop_provider", "name": name}]}
        )
        return txid


class BedrockClient(Client):
    """Client library of the Bedrock component."""

    component_type = "bedrock"
    handle_cls = ServiceHandle

    def make_service_handle(self, address: str) -> ServiceHandle:
        """``client.makeServiceHandle(address)`` of Listing 5."""
        return self.make_handle(address, BEDROCK_PROVIDER_ID)

    def make_service_group_handle(self, addresses: list[str]) -> ServiceGroupHandle:
        return ServiceGroupHandle(self, addresses)
