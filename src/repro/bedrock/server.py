"""The Bedrock server: a "provider of providers" (paper section 5).

Bedrock "is a component meant to manage other providers running in a
Mochi process.  It follows the same architecture [as Fig. 1] ... but the
'resource' it manages is the configuration of the process it runs on."

Responsibilities implemented here:

* bootstrap a process from a Listing-3 JSON document (libraries +
  providers + dependency resolution), without glue code;
* expose the full live configuration, queryable with Jx9 (Listing 4);
* online reconfiguration: start/stop providers, add/remove pools and
  xstreams -- all validity-checked (Listing 5);
* provider **migration** orchestration over REMI (section 6, Obs. 5);
* provider **checkpoint/restore** hooks to a PFS (section 7, Obs. 9);
* cross-process consistency of concurrent reconfigurations via
  two-phase commit locks (section 5, Obs. 3: of two conflicting client
  requests, exactly one succeeds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..core.component import Provider
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute
from ..observability.exporters import chrome_trace
from ..storage.pfs import ParallelFileSystem
from .errors import (
    BedrockConfigError,
    BedrockError,
    DependencyError,
    EntityLockedError,
    NoSuchProviderError,
    ProviderConflictError,
    TransactionError,
)
from .jx9 import jx9_execute
from .module import BedrockModule, ModuleError, resolve_library

__all__ = ["BedrockServer", "ProviderRecord", "BEDROCK_PROVIDER_ID"]

#: Every Bedrock server registers at this provider id, by convention.
BEDROCK_PROVIDER_ID = 0

OP_COST = 500e-9

#: Read-only introspection operations (metric export / profile query):
#: their handlers are wrapped so an exception degrades to an error
#: response -- counted in ``bedrock_introspection_errors`` -- instead of
#: propagating through the Bedrock ULT (mirrors the
#: ``margo_monitor_errors`` treatment of monitor hooks).
_INTROSPECTION_OPS = frozenset(
    {
        "get_metrics",
        "get_traces",
        "get_profile",
        "get_utilization",
        "get_health",
        "get_incidents",
        "get_slo_status",
        "get_critical_path",
        "get_attribution",
        "query",
    }
)


@dataclass
class ProviderRecord:
    """Bookkeeping for one managed provider."""

    name: str
    type_name: str
    provider_id: int
    pool: str
    config: dict[str, Any]
    dependencies: dict[str, Any]
    module: BedrockModule
    instance: Any

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "type": self.type_name,
            "provider_id": self.provider_id,
            "pool": self.pool,
            "config": self.instance.get_config(),
            "dependencies": {
                k: v for k, v in self.dependencies.items()
            },
        }


class BedrockServer(Provider):
    """Manages the configuration of one Mochi process."""

    component_type = "bedrock"

    def __init__(
        self,
        margo: MargoInstance,
        config: Optional[dict[str, Any]] = None,
        pfs: Optional[ParallelFileSystem] = None,
    ) -> None:
        super().__init__(margo, "bedrock", BEDROCK_PROVIDER_ID, config={})
        self.pfs = pfs
        self.modules: dict[str, BedrockModule] = {}
        self.library_of: dict[str, str] = {}
        self.records: dict[str, ProviderRecord] = {}
        #: provider name -> set of dependent tokens ("local:<name>" or
        #: "remote:<address>:<name>").
        self.dependents: dict[str, set[str]] = {}
        #: entity -> transaction id holding its lock.
        self._locks: dict[str, str] = {}
        #: txid -> list of prepared ops.
        self._prepared: dict[str, list[dict[str, Any]]] = {}

        for operation in (
            "load_module",
            "start_provider",
            "stop_provider",
            "add_pool",
            "remove_pool",
            "add_xstream",
            "remove_xstream",
            "get_config",
            "get_metrics",
            "get_traces",
            "get_profile",
            "get_utilization",
            "get_health",
            "get_incidents",
            "get_slo_status",
            "get_critical_path",
            "get_attribution",
            "query",
            "migrate_provider",
            "checkpoint_provider",
            "restore_provider",
            "add_dependent",
            "remove_dependent",
            "list_providers",
            "tx_prepare",
            "tx_commit",
            "tx_abort",
        ):
            handler = getattr(self, f"_on_{operation}")
            if operation in _INTROSPECTION_OPS:
                handler = self._contain_introspection(operation, handler)
            self.register_rpc(operation, handler)

        self._introspection_errors = margo.metrics.counter(
            "bedrock_introspection_errors",
            "introspection/query RPCs whose handler raised (contained: "
            "a malformed query degrades to an error response)",
        )
        self._providers_started = margo.metrics.counter(
            "bedrock_providers_started", "providers started on this process"
        )
        self._providers_stopped = margo.metrics.counter(
            "bedrock_providers_stopped", "providers stopped on this process"
        )
        self._migrations = margo.metrics.counter(
            "bedrock_migrations", "provider migrations orchestrated from here"
        )
        self._migrated_bytes = margo.metrics.counter(
            "bedrock_migrated_bytes", "bytes shipped by provider migrations"
        )

        doc = dict(config or {})
        doc.pop("margo", None)  # consumed by the Margo instance itself
        self._apply_boot_config(doc)

    # ------------------------------------------------------------------
    # boot-time configuration (Listing 3)
    # ------------------------------------------------------------------
    def _apply_boot_config(self, doc: dict[str, Any]) -> None:
        unknown = set(doc) - {"libraries", "providers"}
        if unknown:
            raise BedrockConfigError(f"unknown bedrock config keys: {sorted(unknown)}")
        libraries = doc.get("libraries", {})
        if not isinstance(libraries, dict):
            raise BedrockConfigError("'libraries' must be an object {type: path}")
        for type_name, library in libraries.items():
            self.load_module(type_name, library)
        providers = doc.get("providers", [])
        if not isinstance(providers, list):
            raise BedrockConfigError("'providers' must be a list")
        for entry in providers:
            self._validate_start(entry)
            self._execute_start(entry)

    # ------------------------------------------------------------------
    # modules
    # ------------------------------------------------------------------
    def load_module(self, type_name: str, library: str) -> None:
        module = resolve_library(library)
        if module.type_name != type_name:
            raise BedrockConfigError(
                f"library {library!r} provides type {module.type_name!r}, "
                f"not {type_name!r}"
            )
        existing = self.modules.get(type_name)
        if existing is not None and existing is not module:
            raise BedrockConfigError(f"type {type_name!r} already loaded")
        self.modules[type_name] = module
        self.library_of[type_name] = library

    # ------------------------------------------------------------------
    # start/stop providers (validation + execution split for 2PC reuse)
    # ------------------------------------------------------------------
    def _validate_start(self, op: dict[str, Any]) -> None:
        for key in ("name", "type"):
            if key not in op:
                raise BedrockConfigError(f"provider entry missing {key!r}: {op}")
        name = op["name"]
        if name in self.records:
            raise ProviderConflictError(f"provider {name!r} already exists")
        type_name = op["type"]
        module = self.modules.get(type_name)
        if module is None:
            raise ModuleError(
                f"no module loaded for type {type_name!r} "
                f"(loaded: {sorted(self.modules)})"
            )
        provider_id = int(op.get("provider_id", 1))
        for record in self.records.values():
            if record.type_name == type_name and record.provider_id == provider_id:
                raise ProviderConflictError(
                    f"(type={type_name}, provider_id={provider_id}) already in use "
                    f"by {record.name!r}"
                )
        pool = op.get("pool", self.margo.config.rpc_pool)
        if pool not in self.margo.pools:
            raise BedrockConfigError(f"provider {name!r} references unknown pool {pool!r}")
        for dep_name, spec in (op.get("dependencies") or {}).items():
            self._check_dependency_spec(name, dep_name, spec)

    def _check_dependency_spec(self, provider: str, dep_name: str, spec: Any) -> None:
        if isinstance(spec, str):
            if spec not in self.records:
                raise DependencyError(
                    f"provider {provider!r} depends on unknown local provider {spec!r}"
                )
            return
        if isinstance(spec, dict):
            missing = {"type", "address", "provider_id"} - set(spec)
            if missing:
                raise DependencyError(
                    f"remote dependency {dep_name!r} of {provider!r} missing {sorted(missing)}"
                )
            if spec["type"] not in self.modules:
                raise DependencyError(
                    f"remote dependency {dep_name!r} has unloaded type {spec['type']!r}"
                )
            return
        raise DependencyError(
            f"dependency {dep_name!r} of {provider!r} must be a local provider "
            f"name or a {{type, address, provider_id}} object"
        )

    def _resolve_dependencies(self, op: dict[str, Any]) -> dict[str, Any]:
        resolved: dict[str, Any] = {}
        for dep_name, spec in (op.get("dependencies") or {}).items():
            if isinstance(spec, str):
                resolved[dep_name] = self.records[spec].instance
            else:
                module = self.modules[spec["type"]]
                if module.client_factory is None:
                    raise DependencyError(
                        f"type {spec['type']!r} has no client library"
                    )
                client = module.client_factory(self.margo)
                resolved[dep_name] = client.make_handle(
                    spec["address"], spec["provider_id"]
                )
        return resolved

    def _execute_start(self, op: dict[str, Any]) -> ProviderRecord:
        name = op["name"]
        module = self.modules[op["type"]]
        pool = op.get("pool", self.margo.config.rpc_pool)
        dependencies = dict(op.get("dependencies") or {})
        resolved = self._resolve_dependencies(op)
        instance = module.provider_factory(
            self.margo,
            name,
            int(op.get("provider_id", 1)),
            pool,
            dict(op.get("config") or {}),
            resolved,
        )
        record = ProviderRecord(
            name=name,
            type_name=op["type"],
            provider_id=int(op.get("provider_id", 1)),
            pool=pool,
            config=dict(op.get("config") or {}),
            dependencies=dependencies,
            module=module,
            instance=instance,
        )
        self.records[name] = record
        self._providers_started.inc()
        for spec in dependencies.values():
            if isinstance(spec, str):
                self.dependents.setdefault(spec, set()).add(f"local:{name}")
        return record

    def _validate_stop(self, op: dict[str, Any]) -> None:
        name = op["name"]
        record = self.records.get(name)
        if record is None:
            raise NoSuchProviderError(f"no provider named {name!r}")
        holders = self.dependents.get(name)
        if holders:
            raise DependencyError(
                f"cannot stop provider {name!r}: depended on by {sorted(holders)}"
            )

    def _execute_stop(self, op: dict[str, Any]) -> None:
        record = self.records.pop(op["name"])
        for spec in record.dependencies.values():
            if isinstance(spec, str):
                holders = self.dependents.get(spec)
                if holders:
                    holders.discard(f"local:{record.name}")
        self.dependents.pop(record.name, None)
        self._providers_stopped.inc()
        record.instance.destroy()

    # ------------------------------------------------------------------
    # configuration access
    # ------------------------------------------------------------------
    def get_config(self) -> dict[str, Any]:
        return {
            "margo": self.margo.get_config(),
            "libraries": dict(self.library_of),
            "providers": [r.describe() for r in self.records.values()],
            "address": self.margo.address,
        }

    def query(self, script: str) -> Any:
        """Run a Jx9 query against the live configuration (Listing 4)."""
        return jx9_execute(script, {"__config__": self.get_config()})

    def boot_document(self) -> dict[str, Any]:
        """A Listing-3 document that re-creates this process's current
        composition from scratch.

        The paper (section 5): "Its configuration format ... can also
        easily be shared with the community to diagnose issues and
        bugs."  Unlike :meth:`get_config` (live state, statistics), this
        is the *boot-clean* document: feed it to
        :func:`~repro.bedrock.boot.boot_process` to clone the process.
        """
        return {
            "margo": self.margo.get_config(),
            "libraries": dict(self.library_of),
            "providers": [
                {
                    "name": record.name,
                    "type": record.type_name,
                    "provider_id": record.provider_id,
                    "pool": record.pool,
                    "config": dict(record.config),
                    "dependencies": dict(record.dependencies),
                }
                for record in self.records.values()
            ],
        }

    # ------------------------------------------------------------------
    # RPC handlers (the remote API of Listing 5)
    # ------------------------------------------------------------------
    def _on_load_module(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        self.load_module(ctx.args["type"], ctx.args["library"])
        return None

    def _on_start_provider(self, ctx: RequestContext) -> Generator:
        op = ctx.args
        yield Compute(OP_COST)
        self._check_unlocked(f"provider:{op['name']}")
        self._validate_start(op)
        record = self._execute_start(op)
        # Register remote dependents so the dependency's process can
        # refuse to stop it while we rely on it.
        for spec in record.dependencies.values():
            if isinstance(spec, dict):
                try:
                    yield from self.margo.forward(
                        spec["address"],
                        "bedrock_add_dependent",
                        {
                            "name": self._remote_dep_target(spec),
                            "dependent": f"remote:{self.margo.address}:{record.name}",
                        },
                        provider_id=BEDROCK_PROVIDER_ID,
                        timeout=2.0,
                    )
                except BedrockError:
                    raise
                except Exception:
                    pass  # dependency process may not run bedrock; tolerated
        return record.describe()

    @staticmethod
    def _remote_dep_target(spec: dict[str, Any]) -> dict[str, Any]:
        return {"type": spec["type"], "provider_id": spec["provider_id"]}

    def _on_stop_provider(self, ctx: RequestContext) -> Generator:
        op = ctx.args
        yield Compute(OP_COST)
        self._check_unlocked(f"provider:{op['name']}")
        self._validate_stop(op)
        record = self.records[op["name"]]
        # Unpin ourselves from remote dependencies.
        for spec in record.dependencies.values():
            if isinstance(spec, dict):
                try:
                    yield from self.margo.forward(
                        spec["address"],
                        "bedrock_remove_dependent",
                        {
                            "name": self._remote_dep_target(spec),
                            "dependent": f"remote:{self.margo.address}:{record.name}",
                        },
                        provider_id=BEDROCK_PROVIDER_ID,
                        timeout=2.0,
                    )
                except Exception:
                    pass
        self._execute_stop(op)
        return None

    def _on_add_dependent(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        target = ctx.args["name"]
        record = self._find_by_type_id(target["type"], target["provider_id"])
        if record is None:
            raise NoSuchProviderError(
                f"no provider (type={target['type']}, id={target['provider_id']})"
            )
        self.dependents.setdefault(record.name, set()).add(ctx.args["dependent"])
        return None

    def _on_remove_dependent(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        target = ctx.args["name"]
        record = self._find_by_type_id(target["type"], target["provider_id"])
        if record is not None:
            holders = self.dependents.get(record.name)
            if holders:
                holders.discard(ctx.args["dependent"])
        return None

    def _find_by_type_id(self, type_name: str, provider_id: int) -> Optional[ProviderRecord]:
        for record in self.records.values():
            if record.type_name == type_name and record.provider_id == provider_id:
                return record
        return None

    def _on_add_pool(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        self.margo.add_pool(ctx.args)
        return None

    def _on_remove_pool(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        name = ctx.args["name"]
        used_by = [r.name for r in self.records.values() if r.pool == name]
        if used_by:
            raise BedrockConfigError(f"pool {name!r} is used by providers {used_by}")
        self.margo.remove_pool(name)
        return None

    def _on_add_xstream(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        self.margo.add_xstream(ctx.args)
        return None

    def _on_remove_xstream(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        self.margo.remove_xstream(ctx.args["name"])
        return None

    def _on_get_config(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        return self.get_config()

    def _on_get_metrics(self, ctx: RequestContext) -> Generator:
        """The process's metrics registry as a JSON snapshot (the
        observability counterpart of ``bedrock_get_config``)."""
        yield Compute(OP_COST)
        return self.margo.metrics.snapshot()

    def _on_get_traces(self, ctx: RequestContext) -> Generator:
        """Spans collected on this process, as Chrome trace-event JSON.

        Empty document when tracing is off; note that wire spans whose
        other endpoint lives on an untraced process are omitted (they
        pair up when exports are merged cluster-side).
        """
        yield Compute(OP_COST)
        if self.margo.tracer is None:
            return chrome_trace()
        return chrome_trace(self.margo.tracer)

    def _on_get_profile(self, ctx: RequestContext) -> Generator:
        """Closed profile windows (rolling store) as one JSON document.

        Args: ``{"last": N}`` limits the reply to the N most recent
        windows.  Replies ``{"enabled": False}`` when profiling is off.
        """
        yield Compute(OP_COST)
        profiler = self.margo.profiler
        if profiler is None:
            return {"enabled": False, "process": self.margo.process.name, "windows": []}
        args = ctx.args or {}
        unknown = set(args) - {"last"}
        if unknown:
            raise BedrockError(f"unknown get_profile keys: {sorted(unknown)}")
        doc = profiler.profile(last=args.get("last"))
        doc["enabled"] = True
        return doc

    def _on_get_utilization(self, ctx: RequestContext) -> Generator:
        """The latest closed window's utilization + per-provider rates
        (what the reconfiguration controller polls)."""
        yield Compute(OP_COST)
        profiler = self.margo.profiler
        if profiler is None:
            return {
                "enabled": False,
                "process": self.margo.process.name,
                "providers": {},
                "pools": {},
                "xstreams": {},
            }
        doc = profiler.utilization()
        doc["enabled"] = True
        return doc

    def _health_plane(self) -> Any:
        """The cluster health plane, reachable through the network the
        Margo instance is attached to; ``None`` when not enabled."""
        return getattr(self.margo.network, "health_plane", None)

    def _on_get_health(self, ctx: RequestContext) -> Generator:
        """The cluster health snapshot: per-target states, phi suspicion
        levels, open incident count.  ``{"enabled": False}`` when the
        cluster runs without a health plane."""
        yield Compute(OP_COST)
        plane = self._health_plane()
        if plane is None:
            return {"enabled": False, "process": self.margo.process.name}
        doc = plane.health_doc()
        doc["enabled"] = True
        doc["process"] = self.margo.process.name
        return doc

    def _on_get_incidents(self, ctx: RequestContext) -> Generator:
        """The incident log (faults correlated with detection and
        recovery).  Args: ``{"last": N}`` limits to the N most recent."""
        yield Compute(OP_COST)
        plane = self._health_plane()
        if plane is None:
            return {
                "enabled": False,
                "process": self.margo.process.name,
                "incidents": [],
            }
        args = ctx.args or {}
        unknown = set(args) - {"last"}
        if unknown:
            raise BedrockError(f"unknown get_incidents keys: {sorted(unknown)}")
        doc = plane.incidents.to_json(last=args.get("last"))
        doc["enabled"] = True
        doc["process"] = self.margo.process.name
        return doc

    def _on_get_slo_status(self, ctx: RequestContext) -> Generator:
        """This process's SLO engine status (objectives, burn rates,
        error budgets, alert ring); ``{"enabled": False}`` when the
        process declares no SLOs."""
        yield Compute(OP_COST)
        engine = self.margo.slo_engine
        if engine is None:
            return {
                "enabled": False,
                "process": self.margo.process.name,
                "slos": [],
            }
        doc = engine.status()
        doc["enabled"] = True
        return doc

    def _xray_plane(self) -> Any:
        """The shared mochi-xray plane (critical paths + attribution),
        reachable through the kernel; ``None`` when no process on the
        cluster enabled xray."""
        return getattr(self.margo.kernel, "xray_plane", None)

    def _on_get_critical_path(self, ctx: RequestContext) -> Generator:
        """Recorded per-request critical paths (most recent first is the
        caller's job; the ring is in recording order).  Args:
        ``{"last": N}`` limits the reply, ``{"trace_id": T}`` filters to
        one trace.  ``{"enabled": False}`` without an xray plane."""
        yield Compute(OP_COST)
        plane = self._xray_plane()
        if plane is None:
            return {
                "enabled": False,
                "process": self.margo.process.name,
                "paths": [],
            }
        args = ctx.args or {}
        unknown = set(args) - {"last", "trace_id"}
        if unknown:
            raise BedrockError(f"unknown get_critical_path keys: {sorted(unknown)}")
        return {
            "enabled": True,
            "process": self.margo.process.name,
            "paths": plane.critical_paths(
                last=args.get("last"), trace_id=args.get("trace_id")
            ),
        }

    def _on_get_attribution(self, ctx: RequestContext) -> Generator:
        """Per-window tail-latency attribution + what-if rankings.
        Args: ``{"last": N}`` limits to the N most recent closed
        windows.  ``{"enabled": False}`` without an xray plane."""
        yield Compute(OP_COST)
        plane = self._xray_plane()
        if plane is None:
            return {
                "enabled": False,
                "process": self.margo.process.name,
                "windows": [],
            }
        args = ctx.args or {}
        unknown = set(args) - {"last"}
        if unknown:
            raise BedrockError(f"unknown get_attribution keys: {sorted(unknown)}")
        return {
            "enabled": True,
            "process": self.margo.process.name,
            "windows": plane.attribution(last=args.get("last")),
        }

    def _contain_introspection(self, operation: str, handler: Any) -> Any:
        """Wrap an introspection handler: failures become error responses
        plus a ``bedrock_introspection_errors`` tick, never a dead ULT."""

        def guarded(ctx: RequestContext) -> Generator:
            try:
                result = handler(ctx)
                if isinstance(result, Generator):
                    result = yield from result
                return result
            except Exception as err:
                self._introspection_errors.inc()
                raise BedrockError(
                    f"introspection operation {operation!r} failed: "
                    f"{type(err).__name__}: {err}"
                ) from err

        guarded.__name__ = f"_guarded_{operation}"
        return guarded

    def _on_query(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        return self.query(ctx.args["script"])

    def _on_list_providers(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        return sorted(self.records)

    # ------------------------------------------------------------------
    # migration orchestration (paper section 6, Observation 5)
    # ------------------------------------------------------------------
    def _on_migrate_provider(self, ctx: RequestContext) -> Generator:
        """Migrate a provider to another Bedrock-managed process.

        Steps: (1) the provider flushes and REMI-ships its files to the
        destination node, (2) the destination Bedrock instantiates an
        identical provider over them, (3) the local provider is stopped.
        """
        op = ctx.args
        name = op["name"]
        record = self.records.get(name)
        if record is None:
            raise NoSuchProviderError(f"no provider named {name!r}")
        if not record.module.supports_migration:
            raise BedrockError(f"type {record.type_name!r} does not support migration")
        self._validate_stop({"name": name})  # no dependents may be left behind
        self._check_unlocked(f"provider:{name}")
        dest_address = op["dest_address"]
        remi_provider_id = int(op.get("remi_provider_id", 0))
        method = op.get("method", "auto")

        from ..remi.client import RemiClient

        migration_started = self.margo.kernel.now
        remi_client = RemiClient(self.margo)
        report = yield from record.instance.migrate(
            _BoundRemi(remi_client, dest_address, remi_provider_id, method),
            dest_address,
            record.provider_id,
        )
        new_provider_id = op.get("new_provider_id")
        if new_provider_id is None:
            # Keep the original id when free at the destination; otherwise
            # allocate the next id unused by providers of this type there.
            dest_config = yield from self.margo.forward(
                dest_address,
                "bedrock_get_config",
                provider_id=BEDROCK_PROVIDER_ID,
                timeout=5.0,
            )
            taken = {
                p["provider_id"]
                for p in dest_config["providers"]
                if p["type"] == record.type_name
            }
            new_provider_id = record.provider_id
            while new_provider_id in taken:
                new_provider_id += 1
        start_op = {
            "name": op.get("new_name", name),
            "type": record.type_name,
            "provider_id": int(new_provider_id),
            "pool": op.get("pool"),
            "config": record.config,
            "dependencies": record.dependencies
            if all(isinstance(s, dict) for s in record.dependencies.values())
            else {},
        }
        if start_op["pool"] is None:
            start_op.pop("pool")
        new_record = yield from self.margo.forward(
            dest_address,
            "bedrock_start_provider",
            start_op,
            provider_id=BEDROCK_PROVIDER_ID,
            timeout=10.0,
        )
        self._execute_stop({"name": name})
        self._migrations.inc()
        self._migrated_bytes.inc(report.total_bytes)
        plane = self._health_plane()
        if plane is not None:
            plane.note_migration(
                name,
                self.margo.process.name,
                dest_address,
                self.margo.kernel.now - migration_started,
            )
        if self.margo.tracer is not None:
            self.margo.tracer.record_span(
                f"migrate:{name}",
                "migration",
                self.margo.process.name,
                migration_started,
                self.margo.kernel.now,
                attributes={
                    "dest": dest_address,
                    "files": report.num_files,
                    "bytes": report.total_bytes,
                    "method": report.method,
                },
            )
        return {
            "moved_files": report.num_files,
            "moved_bytes": report.total_bytes,
            "method": report.method,
            "new_provider": new_record,
        }

    # ------------------------------------------------------------------
    # checkpoint / restore (paper section 7, Observation 9)
    # ------------------------------------------------------------------
    def _on_checkpoint_provider(self, ctx: RequestContext) -> Generator:
        name = ctx.args["name"]
        record = self.records.get(name)
        if record is None:
            raise NoSuchProviderError(f"no provider named {name!r}")
        if not record.module.supports_checkpoint:
            raise BedrockError(f"type {record.type_name!r} does not support checkpoints")
        if self.pfs is None:
            raise BedrockError("this Bedrock server has no PFS attached")
        size = yield from record.instance.checkpoint(self.pfs, ctx.args["path"])
        return {"bytes": size, "path": ctx.args["path"]}

    def _on_restore_provider(self, ctx: RequestContext) -> Generator:
        name = ctx.args["name"]
        record = self.records.get(name)
        if record is None:
            raise NoSuchProviderError(f"no provider named {name!r}")
        if self.pfs is None:
            raise BedrockError("this Bedrock server has no PFS attached")
        size = yield from record.instance.restore(self.pfs, ctx.args["path"])
        return {"bytes": size, "path": ctx.args["path"]}

    # ------------------------------------------------------------------
    # two-phase commit (paper section 5, Observation 3)
    # ------------------------------------------------------------------
    def _entities_of(self, op: dict[str, Any]) -> list[str]:
        action = op["action"]
        if action in ("start_provider", "stop_provider", "pin_provider"):
            return [f"provider:{op['name']}"] + [
                f"provider:{spec}"
                for spec in (op.get("dependencies") or {}).values()
                if isinstance(spec, str)
            ]
        raise TransactionError(f"unknown transactional action {action!r}")

    def _check_unlocked(self, entity: str) -> None:
        holder = self._locks.get(entity)
        if holder is not None:
            raise EntityLockedError(
                f"{entity} is locked by transaction {holder}"
            )

    def _on_tx_prepare(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        txid = ctx.args["txid"]
        ops = ctx.args["ops"]
        needed: list[str] = []
        for op in ops:
            needed.extend(self._entities_of(op))
        # All-or-nothing lock acquisition.
        for entity in needed:
            holder = self._locks.get(entity)
            if holder is not None and holder != txid:
                return {"vote": False, "reason": f"{entity} locked by {holder}"}
        try:
            for op in ops:
                action = op["action"]
                if action == "start_provider":
                    self._validate_start(op)
                elif action == "stop_provider":
                    self._validate_stop(op)
                elif action == "pin_provider":
                    if op["name"] not in self.records:
                        raise NoSuchProviderError(
                            f"pin target {op['name']!r} does not exist"
                        )
        except BedrockError as err:
            return {"vote": False, "reason": str(err)}
        for entity in needed:
            self._locks[entity] = txid
        self._prepared[txid] = ops
        return {"vote": True}

    def _on_tx_commit(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        txid = ctx.args["txid"]
        ops = self._prepared.pop(txid, None)
        if ops is None:
            raise TransactionError(f"commit of unknown transaction {txid}")
        for op in ops:
            action = op["action"]
            if action == "start_provider":
                self._execute_start(op)
            elif action == "stop_provider":
                self._execute_stop(op)
            elif action == "pin_provider":
                self.dependents.setdefault(op["name"], set()).add(op["dependent"])
        self._release_locks(txid)
        return None

    def _on_tx_abort(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_COST)
        txid = ctx.args["txid"]
        self._prepared.pop(txid, None)
        self._release_locks(txid)
        return None

    def _release_locks(self, txid: str) -> None:
        self._locks = {e: t for e, t in self._locks.items() if t != txid}


class _BoundRemi:
    """Adapter: a REMI client pre-bound to one destination provider.

    Component ``migrate`` hooks call ``migrate_files(dest_address,
    paths, dest_provider_id=...)`` where ``dest_address`` is the target
    *process*; Bedrock knows which REMI provider id serves it and which
    transfer method to use.
    """

    def __init__(self, remi_client: Any, dest_address: str, remi_provider_id: int, method: str) -> None:
        self._client = remi_client
        self._dest = dest_address
        self._remi_id = remi_provider_id
        self._method = method

    def migrate_files(self, dest_address: str, paths: list, dest_provider_id: int = 0):
        report = yield from self._client.migrate_files(
            self._dest, paths, dest_provider_id=self._remi_id, method=self._method
        )
        return report
