"""Bedrock: bootstrapping + online reconfiguration (paper section 5)."""

from .boot import boot_process
from .client import BedrockClient, ServiceGroupHandle, ServiceHandle
from .errors import (
    BedrockConfigError,
    BedrockError,
    DependencyError,
    EntityLockedError,
    NoSuchProviderError,
    ProviderConflictError,
    TransactionError,
)
from .jx9 import Jx9Error, Jx9SyntaxError, jx9_execute
from .module import (
    BedrockModule,
    ModuleError,
    builtin_libraries,
    known_libraries,
    register_library,
    resolve_library,
)
from .server import BEDROCK_PROVIDER_ID, BedrockServer, ProviderRecord

__all__ = [
    "BedrockServer",
    "BedrockClient",
    "ServiceHandle",
    "ServiceGroupHandle",
    "ProviderRecord",
    "BEDROCK_PROVIDER_ID",
    "boot_process",
    "BedrockModule",
    "register_library",
    "resolve_library",
    "known_libraries",
    "builtin_libraries",
    "ModuleError",
    "jx9_execute",
    "Jx9Error",
    "Jx9SyntaxError",
    "BedrockError",
    "BedrockConfigError",
    "DependencyError",
    "NoSuchProviderError",
    "ProviderConflictError",
    "TransactionError",
    "EntityLockedError",
]
