"""Bedrock error types."""

from __future__ import annotations

__all__ = [
    "BedrockError",
    "BedrockConfigError",
    "DependencyError",
    "NoSuchProviderError",
    "ProviderConflictError",
    "TransactionError",
    "EntityLockedError",
]


class BedrockError(RuntimeError):
    """Base class for Bedrock errors."""


class BedrockConfigError(BedrockError):
    """Invalid Bedrock configuration document."""


class DependencyError(BedrockError):
    """A provider dependency cannot be resolved, or is still in use."""


class NoSuchProviderError(BedrockError):
    """Named provider does not exist in this process."""


class ProviderConflictError(BedrockError):
    """Duplicate provider name or (type, provider id) pair."""


class TransactionError(BedrockError):
    """A distributed reconfiguration transaction failed."""


class EntityLockedError(TransactionError):
    """The entity is locked by another in-flight transaction."""
