"""Storage substrate: node-local stores and a shared parallel file system."""

from .local import LocalStore, NoSuchFileError, StorageCostModel, StorageError
from .pfs import ParallelFileSystem

__all__ = [
    "LocalStore",
    "ParallelFileSystem",
    "StorageCostModel",
    "StorageError",
    "NoSuchFileError",
]
