"""A shared parallel file system.

"Just as data services complement parallel file systems, parallel file
systems can support specialized Mochi-based services by storing
checkpoints in a way that makes them accessible from any node" (paper
section 7, Observation 9).  :class:`ParallelFileSystem` is that shared
namespace: slower than node-local storage, but it survives node death
and is readable from every node.
"""

from __future__ import annotations

from typing import Optional

from .local import NoSuchFileError, StorageCostModel, StorageError

__all__ = ["ParallelFileSystem"]

#: Default PFS cost model: high latency (metadata round trips), decent
#: streaming bandwidth shared across the machine.
PFS_COST = StorageCostModel(
    read_latency=1e-3,
    write_latency=2e-3,
    read_bandwidth=2.0e9,
    write_bandwidth=1.0e9,
)


class ParallelFileSystem:
    """A globally accessible path -> bytes namespace."""

    def __init__(self, name: str = "pfs", cost: Optional[StorageCostModel] = None) -> None:
        self.name = name
        self.cost = cost or PFS_COST
        self._files: dict[str, bytes] = {}

    # ------------------------------------------------------------------
    def write(self, path: str, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"PFS holds bytes, got {type(data).__name__}")
        self._files[path] = bytes(data)

    def read(self, path: str) -> bytes:
        try:
            return self._files[path]
        except KeyError as err:
            raise NoSuchFileError(f"{self.name}:{path}") from err

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise NoSuchFileError(f"{self.name}:{path}")
        del self._files[path]

    def exists(self, path: str) -> bool:
        return path in self._files

    def list(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    @property
    def total_bytes(self) -> int:
        return sum(len(v) for v in self._files.values())

    # ------------------------------------------------------------------
    def read_cost(self, size: int) -> float:
        return self.cost.read_time(size)

    def write_cost(self, size: int) -> float:
        return self.cost.write_time(size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ParallelFileSystem {self.name} files={len(self._files)}>"
