"""Node-local storage.

"Most data managed by Mochi components resides in files stored in a
local storage device" (paper section 6).  A :class:`LocalStore` is such
a device, attached to a :class:`~repro.sim.network.Node`.  Its contents
survive *process* crashes (transient failures) but are wiped by *node*
death (permanent failures) -- the distinction at the heart of the
paper's resilience discussion (section 2.3).

I/O costs are exposed as ``*_cost(size)`` helpers; callers charge them
in ULT context (``yield UltSleep(store.write_cost(n))``), modelling a
device that does not occupy the CPU while transferring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..sim.network import Node

__all__ = ["LocalStore", "StorageError", "NoSuchFileError", "StorageCostModel"]


class StorageError(RuntimeError):
    """Base class for storage failures."""


class NoSuchFileError(StorageError, KeyError):
    """Path not found in the store."""


@dataclass(frozen=True)
class StorageCostModel:
    """Latency + bandwidth model for a storage device.

    Defaults approximate a datacenter NVMe SSD.
    """

    read_latency: float = 20e-6
    write_latency: float = 30e-6
    read_bandwidth: float = 3.2e9
    write_bandwidth: float = 1.8e9

    def read_time(self, size: int) -> float:
        return self.read_latency + size / self.read_bandwidth

    def write_time(self, size: int) -> float:
        return self.write_latency + size / self.write_bandwidth


class LocalStore:
    """A flat path -> bytes store on one node."""

    def __init__(self, node: Node, name: str = "disk", cost: Optional[StorageCostModel] = None) -> None:
        self.node = node
        self.name = name
        self.cost = cost or StorageCostModel()
        self._files: dict[str, bytes] = {}
        self.wiped = False
        node.attach(name, self)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def write(self, path: str, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"store holds bytes, got {type(data).__name__}")
        self._check_alive()
        self._files[path] = bytes(data)

    def read(self, path: str) -> bytes:
        self._check_alive()
        try:
            return self._files[path]
        except KeyError as err:
            raise NoSuchFileError(f"{self.node.name}:{path}") from err

    def delete(self, path: str) -> None:
        self._check_alive()
        if path not in self._files:
            raise NoSuchFileError(f"{self.node.name}:{path}")
        del self._files[path]

    def exists(self, path: str) -> bool:
        return path in self._files

    def size_of(self, path: str) -> int:
        return len(self.read(path))

    def list(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    @property
    def total_bytes(self) -> int:
        return sum(len(v) for v in self._files.values())

    # ------------------------------------------------------------------
    # cost helpers
    # ------------------------------------------------------------------
    def read_cost(self, size: int) -> float:
        return self.cost.read_time(size)

    def write_cost(self, size: int) -> float:
        return self.cost.write_time(size)

    # ------------------------------------------------------------------
    # failure integration
    # ------------------------------------------------------------------
    def wipe(self) -> None:
        """Called by the fault injector on node death: all data is lost."""
        self._files.clear()
        self.wiped = True

    def _check_alive(self) -> None:
        if not self.node.alive:
            raise StorageError(f"node {self.node.name} is dead")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LocalStore {self.node.name}:{self.name} files={len(self._files)}>"
