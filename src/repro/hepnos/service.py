"""A HEPnOS-like event store composed from Mochi components.

The service is a :class:`~repro.core.service.DynamicService` whose
processes each host one REMI provider plus a configurable number of
ordered Yokan databases.  Events are hash-sharded across all databases;
scans fan out to every shard and merge.

The sharding count is the service's main tuning knob -- more shards
parallelize ingestion, fewer shards make scan-heavy analysis cheaper --
which is exactly the kind of per-workflow-step tradeoff that motivates
dynamic reconfiguration in the paper's introduction (the HEPnOS
autotuning result [3]).  :meth:`HEPnOSService.reshard` changes it
online.
"""

from __future__ import annotations

import zlib
from typing import Any, Generator, Optional

from ..cluster import Cluster
from ..core.parallel import parallel
from ..core.service import DynamicService
from ..core.spec import ProcessSpec, ServiceSpec
from ..margo.runtime import MargoInstance
from ..storage.pfs import ParallelFileSystem
from ..yokan.backend import decode_records
from ..yokan.client import DatabaseHandle, YokanClient
from .datamodel import EventKey, encode_event_key, event_prefix

__all__ = ["HEPnOSService", "HEPnOSClient"]


def _shard_of(raw_key: bytes, n: int) -> int:
    return zlib.crc32(raw_key) % n


class HEPnOSService:
    """Deployment + management of the event store."""

    def __init__(self, service: DynamicService, shards: list[tuple[str, int]]) -> None:
        self.service = service
        #: (address, provider_id) of every database shard, in order.
        self.shards = shards
        self._reshard_epoch = 0

    # ------------------------------------------------------------------
    @classmethod
    def deploy(
        cls,
        cluster: Cluster,
        nodes: list[str],
        databases_per_process: int = 1,
        name: str = "hepnos",
        pfs: Optional[ParallelFileSystem] = None,
    ) -> "HEPnOSService":
        processes = []
        for i, node in enumerate(nodes):
            # Each database gets its own pool + execution stream, so the
            # sharding degree really buys server-side parallelism (the
            # Fig. 2 provider-to-core mapping).
            pools = [{"name": "__primary__"}]
            xstreams = [
                {"name": "__primary__", "scheduler": {"pools": ["__primary__"]}}
            ]
            providers: list[dict[str, Any]] = [
                {"name": f"remi{i}", "type": "remi", "provider_id": 0}
            ]
            for d in range(databases_per_process):
                pools.append({"name": f"dbpool{d}"})
                xstreams.append(
                    {"name": f"dbes{d}", "scheduler": {"pools": [f"dbpool{d}"]}}
                )
                providers.append(
                    {
                        "name": f"db{i}-{d}",
                        "type": "yokan",
                        "provider_id": d + 1,
                        "pool": f"dbpool{d}",
                        "config": {"database": {"type": "ordered"}},
                    }
                )
            processes.append(
                ProcessSpec(
                    name=f"{name}{i}",
                    node=node,
                    config={
                        "margo": {"argobots": {"pools": pools, "xstreams": xstreams}},
                        "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
                        "providers": providers,
                    },
                )
            )
        spec = ServiceSpec(name=name, processes=processes, group=f"{name}-group")
        service = DynamicService.deploy(cluster, spec, pfs=pfs)
        shards = []
        for i in range(len(nodes)):
            address = service.processes[f"{name}{i}"].address
            for d in range(databases_per_process):
                shards.append((address, d + 1))
        return cls(service, shards)

    def client(self, margo: MargoInstance) -> "HEPnOSClient":
        return HEPnOSClient(margo, list(self.shards))

    # ------------------------------------------------------------------
    # online resharding (the dynamic-reconfiguration knob)
    # ------------------------------------------------------------------
    def reshard(self, databases_per_process: int) -> Generator:
        """Change the number of databases per process, redistributing
        all stored events.  Runs as a ULT on the control process."""
        control = self.service.control
        assert control is not None
        yokan = YokanClient(control)
        old_shards = [yokan.make_handle(a, p) for a, p in self.shards]

        # 1. Drain all records from the old shards.
        images = yield from parallel(
            control, [handle.fetch_image() for handle in old_shards]
        )
        records: list[tuple[bytes, bytes]] = []
        for image in images:
            records.extend(decode_records(image))

        # 2. Start the new generation of providers.
        self._reshard_epoch += 1
        epoch = self._reshard_epoch
        new_shards: list[tuple[str, int]] = []
        process_names = sorted(self.service.processes)
        for proc_name in process_names:
            handle = self.service.handle_for(proc_name)
            for d in range(databases_per_process):
                provider_id = 100 * epoch + d + 1
                pool_name = f"dbpool-e{epoch}-{d}"
                yield from handle.add_pool({"name": pool_name})
                yield from handle.add_xstream(
                    {"name": f"dbes-e{epoch}-{d}", "scheduler": {"pools": [pool_name]}}
                )
                yield from handle.start_provider(
                    f"db-{proc_name}-e{epoch}-{d}",
                    "yokan",
                    provider_id=provider_id,
                    pool=pool_name,
                    config={"database": {"type": "ordered"}},
                )
                new_shards.append(
                    (self.service.processes[proc_name].address, provider_id)
                )

        # 3. Redistribute.
        new_handles = [yokan.make_handle(a, p) for a, p in new_shards]
        buckets: list[list[tuple[bytes, bytes]]] = [[] for _ in new_shards]
        for key, value in records:
            buckets[_shard_of(key, len(new_shards))].append((key, value))
        yield from parallel(
            control,
            [
                handle.put_multi(bucket)
                for handle, bucket in zip(new_handles, buckets)
                if bucket
            ],
        )

        # 4. Retire the old generation: providers, then their dedicated
        # xstreams and pools (keeping the runtime footprint bounded).
        old_shard_set = set(self.shards)
        for proc_name in process_names:
            process = self.service.processes[proc_name]
            handle = self.service.handle_for(proc_name)
            retired_pools: list[str] = []
            for record_name in list(process.bedrock.records):
                record = process.bedrock.records[record_name]
                if record.type_name == "yokan" and (
                    process.address,
                    record.provider_id,
                ) in old_shard_set:
                    if record.pool != "__primary__":
                        retired_pools.append(record.pool)
                    yield from handle.stop_provider(record_name)
            config = yield from handle.get_config()
            for pool_name in retired_pools:
                for xstream in config["margo"]["argobots"]["xstreams"]:
                    if xstream["scheduler"]["pools"] == [pool_name]:
                        yield from handle.remove_xstream(xstream["name"])
                yield from handle.remove_pool(pool_name)
        self.shards = new_shards
        return len(new_shards)


class HEPnOSClient:
    """Application-facing API: store/load/scan events."""

    def __init__(self, margo: MargoInstance, shards: list[tuple[str, int]]) -> None:
        if not shards:
            raise ValueError("HEPnOS client needs at least one shard")
        self.margo = margo
        self._yokan = YokanClient(margo)
        self.shards: list[DatabaseHandle] = [
            self._yokan.make_handle(a, p) for a, p in shards
        ]

    def refresh(self, shards: list[tuple[str, int]]) -> None:
        """Adopt a new shard layout (after a reshard)."""
        self.shards = [self._yokan.make_handle(a, p) for a, p in shards]

    def _shard_for(self, raw_key: bytes) -> DatabaseHandle:
        return self.shards[_shard_of(raw_key, len(self.shards))]

    # ------------------------------------------------------------------
    def store_event(self, key: EventKey, product: str, data: bytes) -> Generator:
        raw = encode_event_key(key, product)
        yield from self._shard_for(raw).put(raw, data)
        return None

    def load_event(self, key: EventKey, product: str) -> Generator:
        raw = encode_event_key(key, product)
        value = yield from self._shard_for(raw).get(raw)
        return value

    def event_exists(self, key: EventKey, product: str = "") -> Generator:
        raw = encode_event_key(key, product)
        result = yield from self._shard_for(raw).exists(raw)
        return result

    def list_events(
        self, dataset: str, run: Optional[int] = None, subrun: Optional[int] = None
    ) -> Generator:
        """Bulk scan: fan out to every shard in parallel, merge-sort."""
        prefix = event_prefix(dataset, run, subrun)
        per_shard = yield from parallel(
            self.margo, [shard.list_keys(prefix=prefix) for shard in self.shards]
        )
        merged: list[bytes] = sorted(k for keys in per_shard for k in keys)
        return merged

    def iterate_events(
        self,
        dataset: str,
        run: Optional[int] = None,
        subrun: Optional[int] = None,
        page_size: int = 32,
    ) -> Generator:
        """Ordered iteration, HEPnOS-iterator style: page through every
        shard with bounded requests.  Each shard costs at least one
        round trip per page -- which is why scan-heavy steps prefer few
        shards (the per-step tradeoff of the paper's introduction)."""
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        prefix = event_prefix(dataset, run, subrun)
        merged: list[bytes] = []
        for shard in self.shards:
            cursor: Optional[bytes] = None
            while True:
                page = yield from shard.list_keys(
                    prefix=prefix, start_after=cursor, max_keys=page_size
                )
                merged.extend(page)
                if len(page) < page_size:
                    break
                cursor = page[-1]
        merged.sort()
        return merged

    def drop_product(self, dataset: str, product: str) -> Generator:
        """Retention policy: delete every ``product`` in ``dataset`` from
        all shards (e.g. drop 'raw' after the filtering pass)."""
        prefix = event_prefix(dataset)
        suffix = f"|{product}".encode("utf-8")
        counts = yield from parallel(
            self.margo,
            [shard.erase_matching(prefix=prefix, suffix=suffix) for shard in self.shards],
        )
        return sum(counts)

    def store_batch(self, items: list[tuple[EventKey, str, bytes]]) -> Generator:
        """Bulk ingestion: group by shard, one put_multi per shard."""
        buckets: dict[int, list[tuple[bytes, bytes]]] = {}
        for key, product, data in items:
            raw = encode_event_key(key, product)
            buckets.setdefault(_shard_of(raw, len(self.shards)), []).append((raw, data))
        yield from parallel(
            self.margo,
            [self.shards[i].put_multi(bucket) for i, bucket in sorted(buckets.items())],
        )
        return None
