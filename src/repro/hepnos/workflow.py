"""A NOvA-like multi-step workflow generator.

The paper's motivating example (section 1): "the high-energy physics
NOvA workflow presents steps with vastly different I/O patterns ... the
best configuration of the service for one step of the workflow is not
necessarily the best for other steps."

Three step archetypes with deliberately different I/O shapes:

* **ingest** -- write-heavy, large event products (favors many shards:
  parallel ingestion bandwidth);
* **filter** -- read-modify-write of small products (mixed);
* **analysis** -- scan-heavy (``list_events`` + targeted reads; favors
  few shards: every scan pays a per-shard fan-out cost).

``run_step`` executes a step against a :class:`HEPnOSClient` and reports
its wall (simulated) time -- the measurement E12 compares across static
and dynamic configurations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from .datamodel import EventKey
from .service import HEPnOSClient

__all__ = ["WorkflowStep", "nova_like_workflow", "run_step", "StepReport"]


@dataclass(frozen=True)
class WorkflowStep:
    """One step of the workflow."""

    name: str
    kind: str  # "ingest" | "filter" | "analysis"
    num_events: int
    product_size: int
    num_scans: int = 0
    reads_per_scan: int = 8
    dataset: str = "nova"

    def __post_init__(self) -> None:
        if self.kind not in ("ingest", "filter", "analysis"):
            raise ValueError(f"unknown step kind {self.kind!r}")
        if self.num_events < 0 or self.product_size < 0 or self.num_scans < 0:
            raise ValueError("step parameters must be non-negative")


@dataclass(frozen=True)
class StepReport:
    step: str
    kind: str
    duration: float
    operations: int

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.duration if self.duration > 0 else 0.0


def nova_like_workflow(
    scale: int = 1, dataset: str = "nova"
) -> list[WorkflowStep]:
    """The canonical 3-step workflow, sized by ``scale``."""
    return [
        WorkflowStep(
            name="ingest",
            kind="ingest",
            num_events=120 * scale,
            product_size=64 * 1024,
            dataset=dataset,
        ),
        WorkflowStep(
            name="filter",
            kind="filter",
            num_events=80 * scale,
            product_size=1024,
            dataset=dataset,
        ),
        WorkflowStep(
            name="analysis",
            kind="analysis",
            num_events=40 * scale,
            product_size=256,
            num_scans=30 * scale,
            dataset=dataset,
        ),
    ]


def run_step(
    client: HEPnOSClient,
    step: WorkflowStep,
    rng: random.Random,
    run_number: int = 0,
) -> Generator:
    """Execute one step; returns a :class:`StepReport`."""
    kernel = client.margo.kernel
    started = kernel.now
    operations = 0

    if step.kind == "ingest":
        batch: list[tuple[EventKey, str, bytes]] = []
        for i in range(step.num_events):
            key = EventKey(step.dataset, run_number, i // 100, i % 100)
            payload = bytes(rng.randrange(256) for _ in range(8)) * (
                step.product_size // 8
            )
            batch.append((key, "raw", payload))
            if len(batch) >= 32:
                yield from client.store_batch(batch)
                operations += len(batch)
                batch = []
        if batch:
            yield from client.store_batch(batch)
            operations += len(batch)

    elif step.kind == "filter":
        for i in range(step.num_events):
            key = EventKey(step.dataset, run_number, i // 100, i % 100)
            exists = yield from client.event_exists(key, "raw")
            if exists:
                data = yield from client.load_event(key, "raw")
                digest = bytes([sum(data[:64]) % 256]) * step.product_size
                yield from client.store_event(key, "filtered", digest)
                operations += 3
            else:
                operations += 1

    elif step.kind == "analysis":
        for _ in range(step.num_scans):
            keys = yield from client.iterate_events(step.dataset, run=run_number)
            operations += 1
            stride = max(1, len(keys) // max(1, step.reads_per_scan))
            for raw in keys[::stride][: step.reads_per_scan]:
                from .datamodel import decode_event_key

                key, product = decode_event_key(raw)
                if product:
                    yield from client.load_event(key, product)
                    operations += 1

    return StepReport(
        step=step.name,
        kind=step.kind,
        duration=kernel.now - started,
        operations=operations,
    )
