"""HEPnOS data model: datasets / runs / subruns / events / products.

HEPnOS [2] stores high-energy-physics event data in a hierarchical
namespace.  Keys are encoded so that the lexicographic order of the
encoded bytes equals the natural hierarchy order, which makes prefix
scans over a run or subrun efficient on ordered Yokan backends.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EventKey", "encode_event_key", "decode_event_key", "event_prefix"]


@dataclass(frozen=True, order=True)
class EventKey:
    """Fully qualified event address."""

    dataset: str
    run: int
    subrun: int
    event: int

    def __post_init__(self) -> None:
        if not self.dataset or "|" in self.dataset:
            raise ValueError(f"bad dataset name {self.dataset!r}")
        for field_name in ("run", "subrun", "event"):
            value = getattr(self, field_name)
            if not 0 <= value < 10**8:
                raise ValueError(f"{field_name} out of range: {value}")


def encode_event_key(key: EventKey, product: str = "") -> bytes:
    """Order-preserving encoding: ``ds|run|subrun|event|product``."""
    base = (
        f"{key.dataset}|{key.run:08d}|{key.subrun:08d}|{key.event:08d}"
    )
    if product:
        if "|" in product:
            raise ValueError(f"bad product label {product!r}")
        base += f"|{product}"
    return base.encode("utf-8")


def decode_event_key(raw: bytes) -> tuple[EventKey, str]:
    """Inverse of :func:`encode_event_key`; returns (key, product)."""
    parts = raw.decode("utf-8").split("|")
    if len(parts) not in (4, 5):
        raise ValueError(f"malformed event key {raw!r}")
    key = EventKey(
        dataset=parts[0], run=int(parts[1]), subrun=int(parts[2]), event=int(parts[3])
    )
    product = parts[4] if len(parts) == 5 else ""
    return key, product


def event_prefix(dataset: str, run: int | None = None, subrun: int | None = None) -> bytes:
    """Prefix for scanning a dataset, run, or subrun."""
    if "|" in dataset:
        raise ValueError(f"bad dataset name {dataset!r}")
    prefix = dataset + "|"
    if run is not None:
        prefix += f"{run:08d}|"
        if subrun is not None:
            prefix += f"{subrun:08d}|"
    elif subrun is not None:
        raise ValueError("subrun prefix requires a run")
    return prefix.encode("utf-8")
