"""HEPnOS-like event store + NOvA-like workflow generator."""

from .datamodel import EventKey, decode_event_key, encode_event_key, event_prefix
from .service import HEPnOSClient, HEPnOSService
from .workflow import StepReport, WorkflowStep, nova_like_workflow, run_step

__all__ = [
    "EventKey",
    "encode_event_key",
    "decode_event_key",
    "event_prefix",
    "HEPnOSService",
    "HEPnOSClient",
    "WorkflowStep",
    "StepReport",
    "nova_like_workflow",
    "run_step",
]
