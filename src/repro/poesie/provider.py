"""Poesie provider/client: remote script execution.

The provider hosts named interpreter *sessions* with persistent
environments; clients submit scripts.  Execution is charged CPU time
proportional to interpreter steps, so heavy scripts occupy the
provider's execution stream like real embedded interpreters do.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.component import Client, Provider, ResourceHandle
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute
from .interpreter import MiniInterpreter, ScriptError

__all__ = ["PoesieProvider", "PoesieClient", "InterpreterHandle"]

#: Simulated cost per interpreter step.
STEP_COST = 50e-9


class PoesieProvider(Provider):
    """Hosts script-interpreter sessions.

    Config: ``{"max_steps": 100000}``.
    """

    component_type = "poesie"

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        pool: Any = None,
        config: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(margo, name, provider_id, pool=pool, config=config)
        self.max_steps = int(self.config.get("max_steps", 100_000))
        self._sessions: dict[str, MiniInterpreter] = {}
        self.register_rpc("execute", self._on_execute)
        self.register_rpc("get_var", self._on_get_var)
        self.register_rpc("reset", self._on_reset)

    def _session(self, name: str) -> MiniInterpreter:
        session = self._sessions.get(name)
        if session is None:
            session = MiniInterpreter(max_steps=self.max_steps)
            self._sessions[name] = session
        return session

    def _on_execute(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        session = self._session(args.get("session", "default"))
        result = session.execute(args["code"], env=args.get("env"))
        yield Compute(STEP_COST * max(1, session._steps))
        return result

    def _on_get_var(self, ctx: RequestContext) -> Generator:
        session = self._session(ctx.args.get("session", "default"))
        name = ctx.args["name"]
        yield Compute(STEP_COST)
        if name not in session.env:
            raise ScriptError(f"undefined variable {name!r}")
        return session.env[name]

    def _on_reset(self, ctx: RequestContext) -> Generator:
        yield Compute(STEP_COST)
        self._sessions.pop(ctx.args.get("session", "default"), None)
        return None

    def get_config(self) -> dict[str, Any]:
        doc = dict(self.config)
        doc["max_steps"] = self.max_steps
        doc["sessions"] = sorted(self._sessions)
        return doc


class InterpreterHandle(ResourceHandle):
    """Handle to a remote Poesie interpreter."""

    def execute(self, code: str, session: str = "default", env: Optional[dict] = None) -> Generator:
        result = yield from self._forward(
            "execute", {"code": code, "session": session, "env": env}
        )
        return result

    def get_var(self, name: str, session: str = "default") -> Generator:
        result = yield from self._forward("get_var", {"name": name, "session": session})
        return result

    def reset(self, session: str = "default") -> Generator:
        yield from self._forward("reset", {"session": session})
        return None


class PoesieClient(Client):
    """Client library of the Poesie component."""

    component_type = "poesie"
    handle_cls = InterpreterHandle

    def make_handle(self, address: str, provider_id: int) -> InterpreterHandle:
        return InterpreterHandle(self, address, provider_id)
