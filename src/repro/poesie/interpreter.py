"""A sandboxed mini-Python interpreter (the Poesie "resource").

Poesie embeds script-language interpreters in Mochi services (paper
section 3.2).  This implementation evaluates a restricted Python subset
over an AST whitelist: literals, arithmetic/comparison/boolean
expressions, assignments, ``if``/``for``/``while``, indexing, f-less
strings, and a fixed builtin table.  No attribute access, no imports,
no calls except whitelisted builtins -- scripts cannot escape.

A step budget bounds execution, so a hostile ``while True`` terminates
with :class:`ScriptBudgetError` instead of hanging the service.
"""

from __future__ import annotations

import ast
import operator
from typing import Any, Optional

__all__ = ["MiniInterpreter", "ScriptError", "ScriptBudgetError"]


class ScriptError(RuntimeError):
    """Script failed to parse or execute."""


class ScriptBudgetError(ScriptError):
    """Script exceeded its execution step budget."""


_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
}

_CMPOPS = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}

_UNARYOPS = {
    ast.USub: operator.neg,
    ast.UAdd: operator.pos,
    ast.Not: operator.not_,
}

_BUILTINS: dict[str, Any] = {
    "len": len,
    "sum": sum,
    "min": min,
    "max": max,
    "abs": abs,
    "range": range,
    "sorted": sorted,
    "str": str,
    "int": int,
    "float": float,
    "bool": bool,
    "list": list,
    "dict": dict,
    "round": round,
    "zip": zip,
    "enumerate": enumerate,
}


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class MiniInterpreter:
    """Evaluates scripts against a persistent variable environment."""

    def __init__(self, max_steps: int = 100_000) -> None:
        self.max_steps = max_steps
        self.env: dict[str, Any] = {}
        self._steps = 0

    # ------------------------------------------------------------------
    def execute(self, source: str, env: Optional[dict[str, Any]] = None) -> Any:
        """Run ``source``; return the value of a ``return`` statement, the
        last expression statement, or None."""
        try:
            tree = ast.parse(source, mode="exec")
        except SyntaxError as err:
            raise ScriptError(f"syntax error: {err}") from err
        if env:
            self.env.update(env)
        self._steps = 0
        last: Any = None
        try:
            for node in tree.body:
                last = self._exec_stmt(node)
        except _ReturnSignal as signal:
            return signal.value
        return last

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise ScriptBudgetError(
                f"script exceeded {self.max_steps} execution steps"
            )

    def _exec_stmt(self, node: ast.stmt) -> Any:
        self._tick()
        if isinstance(node, ast.Expr):
            return self._eval(node.value)
        if isinstance(node, ast.Assign):
            value = self._eval(node.value)
            for target in node.targets:
                self._assign(target, value)
            return None
        if isinstance(node, ast.AugAssign):
            if not isinstance(node.target, ast.Name):
                raise ScriptError("augmented assignment only to names")
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise ScriptError(f"unsupported operator {type(node.op).__name__}")
            current = self._load_name(node.target.id)
            self.env[node.target.id] = op(current, self._eval(node.value))
            return None
        if isinstance(node, ast.If):
            branch = node.body if self._eval(node.test) else node.orelse
            result = None
            for stmt in branch:
                result = self._exec_stmt(stmt)
            return result
        if isinstance(node, ast.For):
            if not isinstance(node.target, ast.Name):
                raise ScriptError("for-loop target must be a simple name")
            result = None
            for item in self._eval(node.iter):
                self._tick()
                self.env[node.target.id] = item
                for stmt in node.body:
                    result = self._exec_stmt(stmt)
            return result
        if isinstance(node, ast.While):
            result = None
            while self._eval(node.test):
                self._tick()
                for stmt in node.body:
                    result = self._exec_stmt(stmt)
            return result
        if isinstance(node, ast.Return):
            raise _ReturnSignal(self._eval(node.value) if node.value else None)
        if isinstance(node, ast.Pass):
            return None
        raise ScriptError(f"unsupported statement: {type(node).__name__}")

    def _assign(self, target: ast.expr, value: Any) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Subscript):
            container = self._eval(target.value)
            container[self._eval(target.slice)] = value
        elif isinstance(target, ast.Tuple):
            values = list(value)
            if len(values) != len(target.elts):
                raise ScriptError("tuple unpacking arity mismatch")
            for sub, item in zip(target.elts, values):
                self._assign(sub, item)
        else:
            raise ScriptError(f"unsupported assignment target: {type(target).__name__}")

    def _load_name(self, name: str) -> Any:
        if name in self.env:
            return self.env[name]
        if name in _BUILTINS:
            return _BUILTINS[name]
        raise ScriptError(f"undefined variable {name!r}")

    def _eval(self, node: ast.expr) -> Any:
        self._tick()
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self._load_name(node.id)
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise ScriptError(f"unsupported operator {type(node.op).__name__}")
            return op(self._eval(node.left), self._eval(node.right))
        if isinstance(node, ast.UnaryOp):
            op = _UNARYOPS.get(type(node.op))
            if op is None:
                raise ScriptError(f"unsupported unary op {type(node.op).__name__}")
            return op(self._eval(node.operand))
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                result = True
                for value_node in node.values:
                    result = self._eval(value_node)
                    if not result:
                        return result
                return result
            result = False
            for value_node in node.values:
                result = self._eval(value_node)
                if result:
                    return result
            return result
        if isinstance(node, ast.Compare):
            left = self._eval(node.left)
            for op_node, comparator in zip(node.ops, node.comparators):
                op = _CMPOPS.get(type(op_node))
                if op is None:
                    raise ScriptError(f"unsupported comparison {type(op_node).__name__}")
                right = self._eval(comparator)
                if not op(left, right):
                    return False
                left = right
            return True
        if isinstance(node, ast.List):
            return [self._eval(e) for e in node.elts]
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            return {
                self._eval(k): self._eval(v)
                for k, v in zip(node.keys, node.values)
                if k is not None
            }
        if isinstance(node, ast.Subscript):
            return self._eval(node.value)[self._eval(node.slice)]
        if isinstance(node, ast.Slice):
            return slice(
                self._eval(node.lower) if node.lower else None,
                self._eval(node.upper) if node.upper else None,
                self._eval(node.step) if node.step else None,
            )
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name):
                raise ScriptError("only direct builtin calls are allowed")
            if node.func.id not in _BUILTINS:
                raise ScriptError(f"call to non-builtin {node.func.id!r} not allowed")
            fn = _BUILTINS[node.func.id]
            args = [self._eval(a) for a in node.args]
            if node.keywords:
                raise ScriptError("keyword arguments are not allowed")
            return fn(*args)
        if isinstance(node, ast.IfExp):
            return self._eval(node.body) if self._eval(node.test) else self._eval(node.orelse)
        if isinstance(node, ast.Attribute):
            raise ScriptError("attribute access is not allowed in scripts")
        raise ScriptError(f"unsupported expression: {type(node).__name__}")
