"""Poesie: Mochi's embedded script-interpreter component."""

from .interpreter import MiniInterpreter, ScriptBudgetError, ScriptError
from .provider import InterpreterHandle, PoesieClient, PoesieProvider

__all__ = [
    "PoesieProvider",
    "PoesieClient",
    "InterpreterHandle",
    "MiniInterpreter",
    "ScriptError",
    "ScriptBudgetError",
]
