"""Yokan provider: the server side of the key-value component.

Follows the Fig. 1 anatomy: configured from JSON, backend-agnostic,
RPCs registered under its provider id in its pool.  Values above
``bulk_threshold`` move over the one-sided bulk (RDMA) path instead of
inline RPC payloads, as Mercury-based services do.

Implements the dynamic-service hooks: ``migrate`` (via REMI, paper
section 6), ``checkpoint``/``restore`` (via the parallel file system,
paper section 7 Observation 9).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..analysis.race import hooks as _race
from ..core.component import Provider
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute, UltSleep
from ..mercury import BULK_OP_PULL, BULK_OP_PUSH, BulkHandle
from ..storage.local import LocalStore
from . import backends as _backends  # noqa: F401 - registers built-ins
from .backend import KVBackend, YokanError, create_backend

__all__ = ["YokanProvider", "OP_BASE_COST", "BYTES_PER_SECOND"]

#: CPU cost of one key-value operation (hashing, lookup, allocator).
OP_BASE_COST = 300e-9
#: Memory bandwidth for copying keys/values inside the provider.
BYTES_PER_SECOND = 10e9

#: Values at or above this many bytes use the bulk path by default.
DEFAULT_BULK_THRESHOLD = 8192


def _op_cost(nbytes: int) -> float:
    return OP_BASE_COST + nbytes / BYTES_PER_SECOND


def _to_bytes(value: Any) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, (bytearray, memoryview)):
        return bytes(value)
    if isinstance(value, str):
        return value.encode("utf-8")
    raise YokanError(f"keys/values must be bytes or str, got {type(value).__name__}")


class YokanProvider(Provider):
    """Manages one key-value database and serves it over RPC."""

    component_type = "yokan"

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        pool: Any = None,
        config: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(margo, name, provider_id, pool=pool, config=config)
        db_config = dict(self.config.get("database", {}))
        backend_type = db_config.pop("type", "map")
        if backend_type == "persistent":
            attachment = db_config.get("store_attachment", "disk")
            store = margo.process.node.attachments.get(attachment)
            if not isinstance(store, LocalStore):
                raise YokanError(
                    f"persistent database needs LocalStore attachment "
                    f"{attachment!r} on node {margo.process.node.name}"
                )
            db_config.setdefault("path", f"yokan/{name}.db")
            db_config["store"] = store
        self.backend: KVBackend = create_backend(backend_type, db_config)
        self.backend_type = backend_type
        if _race.ENABLED:
            _race.track(self.backend, f"yokan:{name}.db")
        self.bulk_threshold = int(self.config.get("bulk_threshold", DEFAULT_BULK_THRESHOLD))

        self.register_rpc("put", self._on_put)
        self.register_rpc("get", self._on_get)
        self.register_rpc("erase", self._on_erase)
        self.register_rpc("exists", self._on_exists)
        self.register_rpc("count", self._on_count)
        self.register_rpc("list_keys", self._on_list_keys)
        self.register_rpc("put_multi", self._on_put_multi)
        self.register_rpc("get_multi", self._on_get_multi)
        # Batch aliases matching the C Yokan "multi" API family; same
        # handlers, so either name reaches the batched backend path.
        self.register_rpc("multi_put", self._on_put_multi)
        self.register_rpc("multi_get", self._on_get_multi)
        self.register_rpc("flush", self._on_flush)
        self.register_rpc("fetch_image", self._on_fetch_image)
        self.register_rpc("erase_matching", self._on_erase_matching)

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _extract_value(self, ctx: RequestContext, args: dict) -> Generator:
        """Get the value from inline args or via the bulk path."""
        bulk = args.get("bulk")
        if bulk is not None:
            yield from self.margo.bulk_transfer(ctx.source, bulk.size, op=BULK_OP_PULL)
            return bulk.data
        return args["value"]

    def _on_put(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        key = args["key"]
        value = yield from self._extract_value(ctx, args)
        yield Compute(_op_cost(len(key) + len(value)))
        if _race.ENABLED:
            _race.note_write(self.backend, key, f"yokan:{self.name}.put")
        self.backend.put(key, value)
        yield from self._maybe_sync(len(key) + len(value))
        return None

    def _on_get(self, ctx: RequestContext) -> Generator:
        key = ctx.args["key"]
        yield Compute(_op_cost(len(key)))
        if _race.ENABLED:
            _race.note_read(self.backend, key, f"yokan:{self.name}.get")
        value = self.backend.get(key)
        yield Compute(len(value) / BYTES_PER_SECOND)
        if len(value) >= self.bulk_threshold:
            yield from self.margo.bulk_transfer(ctx.source, len(value), op=BULK_OP_PUSH)
            return BulkHandle(self.margo.address, len(value), value)
        return value

    def _on_erase(self, ctx: RequestContext) -> Generator:
        key = ctx.args["key"]
        yield Compute(_op_cost(len(key)))
        if _race.ENABLED:
            _race.note_write(self.backend, key, f"yokan:{self.name}.erase")
        self.backend.erase(key)
        yield from self._maybe_sync(len(key))
        return None

    def _on_exists(self, ctx: RequestContext) -> Generator:
        key = ctx.args["key"]
        yield Compute(_op_cost(len(key)))
        if _race.ENABLED:
            _race.note_read(self.backend, key, f"yokan:{self.name}.exists")
        return self.backend.exists(key)

    def _on_count(self, ctx: RequestContext) -> Generator:
        yield Compute(OP_BASE_COST)
        return self.backend.count()

    def _on_list_keys(self, ctx: RequestContext) -> Generator:
        args = ctx.args or {}
        prefix = args.get("prefix", b"")
        start_after = args.get("start_after")
        max_keys = args.get("max_keys", 0)
        yield Compute(OP_BASE_COST)
        keys = self.backend.list_keys(prefix, start_after, max_keys)
        yield Compute(sum(len(k) for k in keys) / BYTES_PER_SECOND)
        return keys

    def _on_put_multi(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        bulk = args.get("bulk")
        if bulk is not None:
            # Batch arrived via the bulk path as an encoded record stream.
            from .backend import decode_records

            yield from self.margo.bulk_transfer(ctx.source, bulk.size, op=BULK_OP_PULL)
            pairs = decode_records(bulk.data)
        else:
            pairs = args["pairs"]
            if not isinstance(pairs, list):
                # Materialize so computing the total below cannot exhaust
                # a one-shot iterator before put_multi sees it.
                pairs = list(pairs)
        total = sum(len(key) + len(value) for key, value in pairs)
        if _race.ENABLED:
            for key, _value in pairs:
                _race.note_write(self.backend, key, f"yokan:{self.name}.put_multi")
        self.backend.put_multi(pairs)
        yield Compute(OP_BASE_COST * max(1, len(pairs)) + total / BYTES_PER_SECOND)
        yield from self._maybe_sync(total)
        return None

    def _on_get_multi(self, ctx: RequestContext) -> Generator:
        keys = ctx.args["keys"]
        yield Compute(OP_BASE_COST * max(1, len(keys)))
        if _race.ENABLED:
            for key in keys:
                _race.note_read(self.backend, key, f"yokan:{self.name}.get_multi")
        values = self.backend.get_multi(keys)
        total = sum(len(v) for v in values)
        yield Compute(total / BYTES_PER_SECOND)
        if total >= self.bulk_threshold:
            from .backend import encode_records

            encoded = encode_records(zip(keys, values))
            yield from self.margo.bulk_transfer(ctx.source, len(encoded), op=BULK_OP_PUSH)
            return BulkHandle(self.margo.address, len(encoded), encoded)
        return values

    def _on_erase_matching(self, ctx: RequestContext) -> Generator:
        """Erase all keys with ``prefix`` and (optionally) ``suffix``.

        Supports retention policies (e.g. dropping raw products after a
        filtering pass) without a round trip per key."""
        args = ctx.args or {}
        prefix = args.get("prefix", b"")
        suffix = args.get("suffix", b"")
        victims = [
            k
            for k in self.backend.list_keys(prefix=prefix)
            if not suffix or k.endswith(suffix)
        ]
        erased_bytes = 0
        for key in victims:
            erased_bytes += len(key) + len(self.backend.get(key))
            self.backend.erase(key)
        yield Compute(OP_BASE_COST * max(1, len(victims)) + erased_bytes / BYTES_PER_SECOND)
        yield from self._maybe_sync(erased_bytes)
        return len(victims)

    def _on_flush(self, ctx: RequestContext) -> Generator:
        yield from self._flush_backend()
        return None

    def _on_fetch_image(self, ctx: RequestContext) -> Generator:
        """Serve the full database image over the bulk path (used by
        virtual-database resync and top-down recovery)."""
        image = self.backend.dump()
        yield Compute(_op_cost(len(image)))
        yield from self.margo.bulk_transfer(ctx.source, len(image), op=BULK_OP_PUSH)
        return BulkHandle(self.margo.address, len(image), image)

    # ------------------------------------------------------------------
    # persistence helpers
    # ------------------------------------------------------------------
    def _maybe_sync(self, nbytes: int) -> Generator:
        backend = self.backend
        if getattr(backend, "sync_on_put", False):
            store = backend.store  # type: ignore[attr-defined]
            yield UltSleep(store.write_cost(nbytes))
            backend.flush()  # type: ignore[attr-defined]
        return None

    def _flush_backend(self) -> Generator:
        flush = getattr(self.backend, "flush", None)
        if flush is None:
            return 0  # memory backend: nothing to flush
        image_size = self.backend.size_bytes()
        store = self.backend.store  # type: ignore[attr-defined]
        yield UltSleep(store.write_cost(image_size))
        return flush()

    def local_files(self) -> list[str]:
        """Local-store paths holding this provider's persistent state."""
        files = getattr(self.backend, "files", None)
        return files() if files is not None else []

    # ------------------------------------------------------------------
    # dynamic-service hooks
    # ------------------------------------------------------------------
    def get_config(self) -> dict[str, Any]:
        doc = dict(self.config)
        doc["database"] = dict(doc.get("database", {}))
        doc["database"]["type"] = self.backend_type
        doc["statistics"] = {
            "count": self.backend.count(),
            "size_bytes": self.backend.size_bytes(),
        }
        return doc

    def migrate(self, remi_client: Any, dest_address: str, dest_provider_id: int) -> Generator:
        """Flush and ship this database's files to the destination process.

        REMI moves the files; the caller (Bedrock) is responsible for
        instantiating the destination provider over them and destroying
        this one (paper section 6: "the migration of a component can be
        reduced to the migration of its files to a new location...").
        """
        yield from self._flush_backend()
        paths = self.local_files()
        if not paths:
            # Memory backend: materialize a one-off image file to migrate.
            store = self.margo.process.node.attachments.get("disk")
            if not isinstance(store, LocalStore):
                raise YokanError("migration of a memory database needs a local store")
            image = self.backend.dump()
            path = f"yokan/{self.name}.migrate.db"
            yield UltSleep(store.write_cost(len(image)))
            store.write(path, image)
            paths = [path]
        result = yield from remi_client.migrate_files(
            dest_address, paths, dest_provider_id=dest_provider_id
        )
        return result

    def checkpoint(self, pfs: Any, path: str) -> Generator:
        image = self.backend.dump()
        yield UltSleep(pfs.write_cost(len(image)))
        pfs.write(path, image)
        return len(image)

    def restore(self, pfs: Any, path: str) -> Generator:
        image = pfs.read(path)
        yield UltSleep(pfs.read_cost(len(image)))
        self.backend.load(image)
        return len(image)
