"""Yokan client: resource handles for remote key-value databases.

The handle "maps to a remote resource by encapsulating the address and
provider ID of the provider holding that resource" (paper Fig. 1) and
"provides an API to access the resource, for instance putting and
getting key-value pairs" (section 3.1).  All methods are generators:
``value = yield from db.get(key)``.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from ..core.component import Client, ResourceHandle
from ..mercury import BulkHandle
from .backend import YokanError
from .provider import DEFAULT_BULK_THRESHOLD

__all__ = ["YokanClient", "DatabaseHandle"]


def _to_bytes(value: Any) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, (bytearray, memoryview)):
        return bytes(value)
    if isinstance(value, str):
        return value.encode("utf-8")
    raise YokanError(f"keys/values must be bytes or str, got {type(value).__name__}")


class DatabaseHandle(ResourceHandle):
    """Handle to one remote Yokan database."""

    def put(self, key: Any, value: Any) -> Generator:
        key_b, value_b = _to_bytes(key), _to_bytes(value)
        if len(value_b) >= DEFAULT_BULK_THRESHOLD:
            # Data plane: expose the value via a bulk handle; the provider
            # pulls it with RDMA instead of shipping it inline.
            args = {
                "key": key_b,
                "bulk": BulkHandle(self.client.margo.address, len(value_b), value_b),
            }
        else:
            args = {"key": key_b, "value": value_b}
        yield from self._forward("put", args)
        return None

    def get(self, key: Any) -> Generator:
        result = yield from self._forward("get", {"key": _to_bytes(key)})
        if isinstance(result, BulkHandle):
            return result.data
        return result

    def erase(self, key: Any) -> Generator:
        yield from self._forward("erase", {"key": _to_bytes(key)})
        return None

    def exists(self, key: Any) -> Generator:
        result = yield from self._forward("exists", {"key": _to_bytes(key)})
        return result

    def count(self) -> Generator:
        result = yield from self._forward("count")
        return result

    def list_keys(
        self,
        prefix: Any = b"",
        start_after: Optional[Any] = None,
        max_keys: int = 0,
    ) -> Generator:
        args = {
            "prefix": _to_bytes(prefix),
            "start_after": _to_bytes(start_after) if start_after is not None else None,
            "max_keys": max_keys,
        }
        result = yield from self._forward("list_keys", args)
        return result

    def put_multi(self, pairs: Iterable[tuple[Any, Any]]) -> Generator:
        normalized = [(_to_bytes(k), _to_bytes(v)) for k, v in pairs]
        total = sum(len(k) + len(v) for k, v in normalized)
        if total >= DEFAULT_BULK_THRESHOLD:
            # Large batches travel as one encoded record stream over the
            # bulk path: the provider pulls it with RDMA.
            from .backend import encode_records

            data = encode_records(normalized)
            args: dict = {
                "bulk": BulkHandle(self.client.margo.address, len(data), data)
            }
        else:
            args = {"pairs": normalized}
        yield from self._forward("put_multi", args)
        return None

    def get_multi(self, keys: Iterable[Any]) -> Generator:
        encoded = [_to_bytes(k) for k in keys]
        result = yield from self._forward("get_multi", {"keys": encoded})
        if isinstance(result, BulkHandle):
            from .backend import decode_records

            return [v for _k, v in decode_records(result.data)]
        return result

    # Batch aliases matching the C Yokan API naming (``yk_put_multi`` /
    # ``yk_get_multi`` are exposed there as the "multi" family).  Bulk
    # workloads in this repo standardize on these names.
    def multi_put(self, pairs: Iterable[tuple[Any, Any]]) -> Generator:
        result = yield from self.put_multi(pairs)
        return result

    def multi_get(self, keys: Iterable[Any]) -> Generator:
        result = yield from self.get_multi(keys)
        return result

    def erase_matching(self, prefix: Any = b"", suffix: Any = b"") -> Generator:
        """Erase every key with ``prefix`` and ``suffix``; returns count."""
        count = yield from self._forward(
            "erase_matching",
            {"prefix": _to_bytes(prefix), "suffix": _to_bytes(suffix)},
        )
        return count

    def flush(self) -> Generator:
        yield from self._forward("flush")
        return None

    def fetch_image(self) -> Generator:
        """Pull the whole database image (bytes)."""
        result = yield from self._forward("fetch_image")
        if isinstance(result, BulkHandle):
            return result.data
        return result


class YokanClient(Client):
    """Client library of the Yokan component."""

    component_type = "yokan"
    handle_cls = DatabaseHandle

    def make_handle(self, address: str, provider_id: int) -> DatabaseHandle:
        return DatabaseHandle(self, address, provider_id)
