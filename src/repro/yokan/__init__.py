"""Yokan: Mochi's node-based key-value store component.

Server side: :class:`YokanProvider` (backends: ``map``, ``ordered``,
``persistent``) and :class:`VirtualYokanProvider` (transparent N-way
replication, paper section 7 Observation 10).  Client side:
:class:`YokanClient` / :class:`DatabaseHandle`.
"""

from .backend import (
    KVBackend,
    NoSuchKeyError,
    UnknownBackendError,
    YokanError,
    backend_types,
    create_backend,
    decode_records,
    encode_records,
    register_backend,
)
from .backends import MapBackend, OrderedBackend, PersistentBackend
from .client import DatabaseHandle, YokanClient
from .provider import YokanProvider
from .virtual import VirtualYokanProvider

__all__ = [
    "YokanProvider",
    "VirtualYokanProvider",
    "YokanClient",
    "DatabaseHandle",
    "KVBackend",
    "MapBackend",
    "OrderedBackend",
    "PersistentBackend",
    "register_backend",
    "create_backend",
    "backend_types",
    "encode_records",
    "decode_records",
    "YokanError",
    "NoSuchKeyError",
    "UnknownBackendError",
]
