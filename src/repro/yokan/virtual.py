"""Virtual databases: transparent bottom-up replication (paper section 7,
Observation 10).

A :class:`VirtualYokanProvider` "forwards its requests to other
components that hold the actual data": it registers the *same* RPCs as a
regular Yokan provider (so clients cannot tell the difference -- the
transparency the paper requires), but its resource is a set of handles
to N real databases on other processes.

* Writes go to **all** replicas (concurrently).
* Reads try replicas in order, failing over past dead ones.

This provides replication without the replicas knowing they are
replicated, and without the consensus machinery of Mochi-RAFT; see
:mod:`repro.raft.smr` for the strongly consistent alternative.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.component import Provider
from ..core.parallel import ParallelError, parallel
from ..margo.errors import RpcError, RpcFailedError
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute
from ..mercury import BulkHandle
from .backend import YokanError
from .client import DatabaseHandle, YokanClient

__all__ = ["VirtualYokanProvider"]

#: Forwarding adds a small routing cost per request.
ROUTE_COST = 200e-9


class VirtualYokanProvider(Provider):
    """A Yokan-compatible provider that holds no data itself.

    Config::

        {
          "targets": [{"address": ..., "provider_id": ...}, ...],
          "rpc_timeout": 1.0            # per-replica failover timeout
        }
    """

    component_type = "yokan"  # same namespace: transparent to clients

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        pool: Any = None,
        config: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(margo, name, provider_id, pool=pool, config=config)
        targets = self.config.get("targets", [])
        if not targets:
            raise YokanError("virtual database needs at least one target")
        client = YokanClient(margo)
        self.rpc_timeout = float(self.config.get("rpc_timeout", 1.0))
        self.replicas: list[DatabaseHandle] = []
        for target in targets:
            handle = client.make_handle(target["address"], target["provider_id"])
            handle.timeout = self.rpc_timeout  # bound failover latency
            self.replicas.append(handle)

        self.register_rpc("put", self._on_put)
        self.register_rpc("get", self._on_get)
        self.register_rpc("erase", self._on_erase)
        self.register_rpc("exists", self._on_exists)
        self.register_rpc("count", self._on_count)
        self.register_rpc("list_keys", self._on_list_keys)
        self.register_rpc("put_multi", self._on_put_multi)
        self.register_rpc("get_multi", self._on_get_multi)
        # Same batch aliases the plain provider exposes.
        self.register_rpc("multi_put", self._on_put_multi)
        self.register_rpc("multi_get", self._on_get_multi)

    # ------------------------------------------------------------------
    # write path: all replicas, concurrently
    # ------------------------------------------------------------------
    def _write_all(self, make_gen) -> Generator:
        yield Compute(ROUTE_COST)
        try:
            yield from parallel(self.margo, [make_gen(r) for r in self.replicas])
        except ParallelError as err:
            if len(err.errors) == len(self.replicas):
                raise YokanError(f"all {len(self.replicas)} replicas failed") from err
            # Partial failure: data is durable on surviving replicas; a
            # top-down repair (resync) brings the rest back (section 7).
        return None

    def _on_put(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        key = args["key"]
        if "bulk" in args:
            bulk = args["bulk"]
            yield from self.margo.bulk_transfer(ctx.source, bulk.size, op="pull")
            value = bulk.data
        else:
            value = args["value"]
        yield from self._write_all(lambda replica: replica.put(key, value))
        return None

    def _on_erase(self, ctx: RequestContext) -> Generator:
        key = ctx.args["key"]
        yield from self._write_all(lambda replica: replica.erase(key))
        return None

    def _on_put_multi(self, ctx: RequestContext) -> Generator:
        bulk = ctx.args.get("bulk")
        if bulk is not None:
            from .backend import decode_records

            yield from self.margo.bulk_transfer(ctx.source, bulk.size, op="pull")
            pairs = decode_records(bulk.data)
        else:
            pairs = ctx.args["pairs"]
        yield from self._write_all(lambda replica: replica.put_multi(pairs))
        return None

    # ------------------------------------------------------------------
    # read path: first live replica
    # ------------------------------------------------------------------
    def _read_any(self, make_gen) -> Generator:
        yield Compute(ROUTE_COST)
        last_error: Optional[BaseException] = None
        for replica in self.replicas:
            try:
                result = yield from make_gen(replica)
                return result
            except RpcFailedError:
                # The replica responded: data-level errors (e.g.
                # NoSuchKey) are authoritative, not a reason to fail over.
                raise
            except RpcError as err:
                last_error = err  # replica unreachable: fail over
        raise YokanError(
            f"no live replica among {len(self.replicas)}"
        ) from last_error

    def _on_get(self, ctx: RequestContext) -> Generator:
        key = ctx.args["key"]
        value = yield from self._read_any(lambda r: r.get(key))
        if len(value) >= 8192:
            yield from self.margo.bulk_transfer(ctx.source, len(value), op="push")
            return BulkHandle(self.margo.address, len(value), value)
        return value

    def _on_exists(self, ctx: RequestContext) -> Generator:
        key = ctx.args["key"]
        result = yield from self._read_any(lambda r: r.exists(key))
        return result

    def _on_count(self, ctx: RequestContext) -> Generator:
        result = yield from self._read_any(lambda r: r.count())
        return result

    def _on_list_keys(self, ctx: RequestContext) -> Generator:
        args = ctx.args or {}
        result = yield from self._read_any(
            lambda r: r.list_keys(
                args.get("prefix", b""),
                args.get("start_after"),
                args.get("max_keys", 0),
            )
        )
        return result

    def _on_get_multi(self, ctx: RequestContext) -> Generator:
        keys = ctx.args["keys"]
        result = yield from self._read_any(lambda r: r.get_multi(keys))
        return result

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def resync(self, source_index: int = 0) -> Generator:
        """Copy the image of one replica onto all others (top-down repair
        after a replica was replaced)."""
        source = self.replicas[source_index]
        image = yield from source.fetch_image()
        from .backend import decode_records

        pairs = decode_records(image)
        for index, replica in enumerate(self.replicas):
            if index == source_index:
                continue
            if pairs:
                yield from replica.put_multi(pairs)
        return len(pairs)

    def get_config(self) -> dict[str, Any]:
        doc = dict(self.config)
        doc["virtual"] = True
        doc["num_replicas"] = len(self.replicas)
        return doc
