"""Abstract key-value backend interface (the "resource" of Fig. 1).

Yokan "provides key-value storage on top of backends such as RocksDB,
LevelDB, and Berkeley DB" (paper section 3.1).  Here the backend
interface is the same idea: the provider is backend-agnostic, and
backends register themselves in a factory by type name.

Keys and values are ``bytes`` (``str`` inputs are UTF-8 encoded at the
provider boundary).  Backends must implement a codec-stable
``dump()``/``load()`` pair used for checkpointing and migration.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable, Optional

__all__ = [
    "KVBackend",
    "register_backend",
    "create_backend",
    "backend_types",
    "encode_records",
    "decode_records",
    "YokanError",
    "NoSuchKeyError",
    "UnknownBackendError",
]


class YokanError(RuntimeError):
    """Base class for Yokan errors."""


class NoSuchKeyError(YokanError, KeyError):
    """Key not present in the database."""

    def __init__(self, key: bytes) -> None:
        super().__init__(repr(key))
        self.key = key

    def __str__(self) -> str:
        return f"no such key: {self.key!r}"


class UnknownBackendError(YokanError, ValueError):
    """Backend type name not registered."""


# ----------------------------------------------------------------------
# binary codec for dump/load (length-prefixed records)
# ----------------------------------------------------------------------
_LEN = struct.Struct("<I")


def encode_records(items: Iterable[tuple[bytes, bytes]]) -> bytes:
    """Serialize (key, value) pairs to a flat byte string."""
    chunks: list[bytes] = []
    for key, value in items:
        chunks.append(_LEN.pack(len(key)))
        chunks.append(key)
        chunks.append(_LEN.pack(len(value)))
        chunks.append(value)
    return b"".join(chunks)


def decode_records(data: bytes) -> list[tuple[bytes, bytes]]:
    """Inverse of :func:`encode_records`."""
    items: list[tuple[bytes, bytes]] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _LEN.size > total:
            raise YokanError("truncated record stream (key length)")
        (klen,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        key = data[offset : offset + klen]
        if len(key) != klen:
            raise YokanError("truncated record stream (key body)")
        offset += klen
        if offset + _LEN.size > total:
            raise YokanError("truncated record stream (value length)")
        (vlen,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        value = data[offset : offset + vlen]
        if len(value) != vlen:
            raise YokanError("truncated record stream (value body)")
        offset += vlen
        items.append((key, value))
    return items


# ----------------------------------------------------------------------
# the abstract interface
# ----------------------------------------------------------------------
class KVBackend:
    """Interface all Yokan backends implement."""

    #: Set by subclasses; used in configs ({"database": {"type": ...}}).
    type_name: str = "abstract"

    def put(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def get(self, key: bytes) -> bytes:
        raise NotImplementedError

    # ---- batch operations ---------------------------------------------
    # Backends override these when they can do better than a per-key
    # loop; the provider's multi_put/multi_get RPCs call them so a bulk
    # workload pays one backend crossing per batch, not one per record.
    def put_multi(self, pairs: Iterable[tuple[bytes, bytes]]) -> None:
        """Store every (key, value) pair in one call."""
        for key, value in pairs:
            self.put(key, value)

    def get_multi(self, keys: Iterable[bytes]) -> list[bytes]:
        """Values for ``keys``, in order; raises on the first missing key."""
        return [self.get(key) for key in keys]

    def erase(self, key: bytes) -> None:
        raise NotImplementedError

    def exists(self, key: bytes) -> bool:
        raise NotImplementedError

    def count(self) -> int:
        raise NotImplementedError

    def list_keys(
        self,
        prefix: bytes = b"",
        start_after: Optional[bytes] = None,
        max_keys: int = 0,
    ) -> list[bytes]:
        """Keys with ``prefix``, after ``start_after``, up to ``max_keys``
        (0 = unlimited).  Ordered backends return sorted keys."""
        raise NotImplementedError

    def items(self) -> Iterable[tuple[bytes, bytes]]:
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Approximate stored size (keys + values)."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    # ---- persistence ---------------------------------------------------
    def dump(self) -> bytes:
        """Serialize the whole database."""
        return encode_records(sorted(self.items()))

    def load(self, data: bytes) -> None:
        """Replace contents with a previous :meth:`dump`."""
        self.clear()
        for key, value in decode_records(data):
            self.put(key, value)


# ----------------------------------------------------------------------
# factory
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[[dict], KVBackend]] = {}


def register_backend(type_name: str, factory: Callable[[dict], KVBackend]) -> None:
    if type_name in _REGISTRY:
        raise ValueError(f"backend type {type_name!r} already registered")
    _REGISTRY[type_name] = factory


def create_backend(type_name: str, config: Optional[dict] = None) -> KVBackend:
    try:
        factory = _REGISTRY[type_name]
    except KeyError as err:
        raise UnknownBackendError(
            f"unknown backend type {type_name!r}; known: {sorted(_REGISTRY)}"
        ) from err
    return factory(config or {})


def backend_types() -> list[str]:
    return sorted(_REGISTRY)
