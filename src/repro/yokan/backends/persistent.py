"""Persistent backend: ordered map mirrored to node-local files.

"Most data managed by Mochi components resides in files stored in a
local storage device" (paper section 6).  This backend keeps the working
set in memory (like an LSM memtable + block cache) and persists it as a
file in a :class:`~repro.storage.local.LocalStore` under a configured
``path``.  The file is what REMI migrates and what survives a process
crash (transient failure).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...storage.local import LocalStore
from ..backend import KVBackend, NoSuchKeyError, YokanError, register_backend
from .ordered import OrderedBackend

__all__ = ["PersistentBackend"]


class PersistentBackend(KVBackend):
    """Ordered in-memory map with an on-"disk" image.

    Config keys:

    * ``path`` -- file path inside the local store (required);
    * ``store`` -- the :class:`LocalStore` instance (injected by the
      provider, which knows its node);
    * ``sync_on_put`` -- if true, every mutation rewrites the image
      (slow, durable); default false (call :meth:`flush`).
    """

    type_name = "persistent"

    def __init__(self, config: Optional[dict] = None) -> None:
        config = config or {}
        store = config.get("store")
        if not isinstance(store, LocalStore):
            raise YokanError(
                "persistent backend requires a 'store' (LocalStore) in its config"
            )
        path = config.get("path")
        if not path:
            raise YokanError("persistent backend requires a 'path' in its config")
        self.store: LocalStore = store
        self.path: str = path
        self.sync_on_put: bool = bool(config.get("sync_on_put", False))
        self._mem = OrderedBackend()
        self.dirty = False
        if self.store.exists(self.path):
            self._mem.load(self.store.read(self.path))

    # ---- mutations -------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        self._mem.put(key, value)
        self._after_mutation()

    def put_multi(self, pairs: Iterable[tuple[bytes, bytes]]) -> None:
        # One image rewrite per batch under sync_on_put, not one per key.
        self._mem.put_multi(pairs)
        self._after_mutation()

    def erase(self, key: bytes) -> None:
        self._mem.erase(key)
        self._after_mutation()

    def clear(self) -> None:
        self._mem.clear()
        self._after_mutation()

    def _after_mutation(self) -> None:
        self.dirty = True
        if self.sync_on_put:
            self.flush()

    # ---- reads -------------------------------------------------------
    def get(self, key: bytes) -> bytes:
        return self._mem.get(key)

    def get_multi(self, keys: Iterable[bytes]) -> list[bytes]:
        return self._mem.get_multi(keys)

    def exists(self, key: bytes) -> bool:
        return self._mem.exists(key)

    def count(self) -> int:
        return self._mem.count()

    def list_keys(
        self,
        prefix: bytes = b"",
        start_after: Optional[bytes] = None,
        max_keys: int = 0,
    ) -> list[bytes]:
        return self._mem.list_keys(prefix, start_after, max_keys)

    def items(self) -> Iterable[tuple[bytes, bytes]]:
        return self._mem.items()

    def size_bytes(self) -> int:
        return self._mem.size_bytes()

    # ---- persistence ---------------------------------------------------
    def flush(self) -> int:
        """Write the current image to the local store; returns its size."""
        image = self._mem.dump()
        self.store.write(self.path, image)
        self.dirty = False
        return len(image)

    def reload(self) -> None:
        """Discard memory state and reload from the on-disk image."""
        if self.store.exists(self.path):
            self._mem.load(self.store.read(self.path))
        else:
            self._mem.clear()
        self.dirty = False

    def files(self) -> list[str]:
        """Paths (in the local store) holding this database's state."""
        return [self.path] if self.store.exists(self.path) else []

    def dump(self) -> bytes:
        return self._mem.dump()

    def load(self, data: bytes) -> None:
        self._mem.load(data)
        self.flush()


register_backend("persistent", PersistentBackend)
