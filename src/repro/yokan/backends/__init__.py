"""Yokan backends; importing this package registers all built-in types."""

from .map import MapBackend
from .ordered import OrderedBackend
from .persistent import PersistentBackend

__all__ = ["MapBackend", "OrderedBackend", "PersistentBackend"]
