"""Hash-map backend: unordered, O(1) point operations."""

from __future__ import annotations

from typing import Iterable, Optional

from ..backend import KVBackend, NoSuchKeyError, register_backend

__all__ = ["MapBackend"]


class MapBackend(KVBackend):
    """A plain dict; ``list_keys`` sorts on demand."""

    type_name = "map"

    def __init__(self, config: Optional[dict] = None) -> None:
        self._data: dict[bytes, bytes] = {}
        self._bytes = 0

    def put(self, key: bytes, value: bytes) -> None:
        old = self._data.get(key)
        if old is not None:
            self._bytes -= len(key) + len(old)
        self._data[key] = value
        self._bytes += len(key) + len(value)

    def get(self, key: bytes) -> bytes:
        try:
            return self._data[key]
        except KeyError:
            raise NoSuchKeyError(key) from None

    def put_multi(self, pairs: Iterable[tuple[bytes, bytes]]) -> None:
        # One pass over a local dict reference: no per-key method dispatch.
        data = self._data
        nbytes = self._bytes
        for key, value in pairs:
            old = data.get(key)
            if old is not None:
                nbytes -= len(key) + len(old)
            data[key] = value
            nbytes += len(key) + len(value)
        self._bytes = nbytes

    def get_multi(self, keys: Iterable[bytes]) -> list[bytes]:
        data = self._data
        try:
            return [data[key] for key in keys]
        except KeyError as err:
            raise NoSuchKeyError(err.args[0]) from None

    def erase(self, key: bytes) -> None:
        value = self._data.pop(key, None)
        if value is None:
            raise NoSuchKeyError(key)
        self._bytes -= len(key) + len(value)

    def exists(self, key: bytes) -> bool:
        return key in self._data

    def count(self) -> int:
        return len(self._data)

    def list_keys(
        self,
        prefix: bytes = b"",
        start_after: Optional[bytes] = None,
        max_keys: int = 0,
    ) -> list[bytes]:
        keys = sorted(k for k in self._data if k.startswith(prefix))
        if start_after is not None:
            keys = [k for k in keys if k > start_after]
        if max_keys:
            keys = keys[:max_keys]
        return keys

    def items(self) -> Iterable[tuple[bytes, bytes]]:
        return self._data.items()

    def size_bytes(self) -> int:
        return self._bytes

    def clear(self) -> None:
        self._data.clear()
        self._bytes = 0


register_backend("map", MapBackend)
