"""Ordered backend: sorted keys, efficient prefix/range listing.

Models the LevelDB/RocksDB-style sorted backends Yokan supports; the
sorted key array is maintained with :mod:`bisect`.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional

from ..backend import KVBackend, NoSuchKeyError, register_backend

__all__ = ["OrderedBackend"]


class OrderedBackend(KVBackend):
    """dict + sorted key list; O(log n) ordered scans."""

    type_name = "ordered"

    def __init__(self, config: Optional[dict] = None) -> None:
        self._data: dict[bytes, bytes] = {}
        self._keys: list[bytes] = []
        self._bytes = 0

    def put(self, key: bytes, value: bytes) -> None:
        old = self._data.get(key)
        if old is None:
            bisect.insort(self._keys, key)
        else:
            self._bytes -= len(key) + len(old)
        self._data[key] = value
        self._bytes += len(key) + len(value)

    def get(self, key: bytes) -> bytes:
        try:
            return self._data[key]
        except KeyError:
            raise NoSuchKeyError(key) from None

    def put_multi(self, pairs: Iterable[tuple[bytes, bytes]]) -> None:
        # Insert into the dict first, then re-sort the key array once per
        # batch instead of paying an insort per key.
        data = self._data
        nbytes = self._bytes
        fresh = False
        for key, value in pairs:
            old = data.get(key)
            if old is None:
                fresh = True
            else:
                nbytes -= len(key) + len(old)
            data[key] = value
            nbytes += len(key) + len(value)
        if fresh:
            self._keys = sorted(data)
        self._bytes = nbytes

    def get_multi(self, keys: Iterable[bytes]) -> list[bytes]:
        data = self._data
        try:
            return [data[key] for key in keys]
        except KeyError as err:
            raise NoSuchKeyError(err.args[0]) from None

    def erase(self, key: bytes) -> None:
        value = self._data.pop(key, None)
        if value is None:
            raise NoSuchKeyError(key)
        index = bisect.bisect_left(self._keys, key)
        del self._keys[index]
        self._bytes -= len(key) + len(value)

    def exists(self, key: bytes) -> bool:
        return key in self._data

    def count(self) -> int:
        return len(self._data)

    def list_keys(
        self,
        prefix: bytes = b"",
        start_after: Optional[bytes] = None,
        max_keys: int = 0,
    ) -> list[bytes]:
        lower = start_after if (start_after is not None and start_after >= prefix) else None
        if lower is not None:
            start = bisect.bisect_right(self._keys, lower)
        else:
            start = bisect.bisect_left(self._keys, prefix)
        out: list[bytes] = []
        for index in range(start, len(self._keys)):
            key = self._keys[index]
            if prefix and not key.startswith(prefix):
                break
            out.append(key)
            if max_keys and len(out) >= max_keys:
                break
        return out

    def items(self) -> Iterable[tuple[bytes, bytes]]:
        return ((k, self._data[k]) for k in self._keys)

    def size_bytes(self) -> int:
        return self._bytes

    def clear(self) -> None:
        self._data.clear()
        self._keys.clear()
        self._bytes = 0


register_backend("ordered", OrderedBackend)
