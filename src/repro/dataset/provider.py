"""The paper's composition example: a "dataset" component.

Section 3.2: "one can imagine a Mochi component M managing 'datasets'
by storing their metadata in a key-value store (managed by the Yokan
component) and their data in a blob storage target (managed by the
Warabi component).  This component M could be further composed with
Mochi's embedded language interpreter component (Poesie), to execute
scripts on datasets."

:class:`DatasetProvider` is that component M.  It owns no storage of its
own: its resource is the *composition* -- handles to a Yokan database
(metadata), a Warabi target (data), and optionally a Poesie interpreter
(server-side queries over dataset metadata).  Bedrock wires those in as
dependencies, which exercises the dependency-injection machinery end to
end.
"""

from __future__ import annotations

import json
from typing import Any, Generator, Optional

from ..core.component import Provider
from ..margo.runtime import MargoInstance, RequestContext
from ..margo.ult import Compute
from ..mercury import BulkHandle
from ..poesie.provider import InterpreterHandle
from ..warabi.client import TargetHandle
from ..yokan.client import DatabaseHandle

__all__ = ["DatasetProvider", "DatasetError"]

OP_COST = 400e-9


class DatasetError(RuntimeError):
    """Dataset-level failure."""


def _meta_key(name: str) -> bytes:
    if not name or "/" in name:
        raise DatasetError(f"bad dataset name {name!r}")
    return f"dataset/{name}".encode()


class DatasetProvider(Provider):
    """Component M: named datasets = metadata (Yokan) + blob (Warabi).

    Dependencies (resolved by Bedrock from the provider's
    ``dependencies`` section, or passed directly):

    * ``metadata`` -- a Yokan :class:`DatabaseHandle`;
    * ``data`` -- a Warabi :class:`TargetHandle`;
    * ``interpreter`` -- optional Poesie :class:`InterpreterHandle`.
    """

    component_type = "dataset"

    def __init__(
        self,
        margo: MargoInstance,
        name: str,
        provider_id: int,
        pool: Any = None,
        config: Optional[dict[str, Any]] = None,
        dependencies: Optional[dict[str, Any]] = None,
    ) -> None:
        super().__init__(margo, name, provider_id, pool=pool, config=config)
        dependencies = dependencies or {}
        metadata = dependencies.get("metadata")
        data = dependencies.get("data")
        if not isinstance(metadata, DatabaseHandle):
            raise DatasetError(
                "dataset provider needs a 'metadata' dependency (Yokan handle)"
            )
        if not isinstance(data, TargetHandle):
            raise DatasetError(
                "dataset provider needs a 'data' dependency (Warabi handle)"
            )
        interpreter = dependencies.get("interpreter")
        if interpreter is not None and not isinstance(interpreter, InterpreterHandle):
            raise DatasetError("'interpreter' dependency must be a Poesie handle")
        self.metadata = metadata
        self.data = data
        self.interpreter = interpreter

        self.register_rpc("create", self._on_create)
        self.register_rpc("write", self._on_write)
        self.register_rpc("read", self._on_read)
        self.register_rpc("describe", self._on_describe)
        self.register_rpc("list", self._on_list)
        self.register_rpc("drop", self._on_drop)
        self.register_rpc("compute", self._on_compute)

    # ------------------------------------------------------------------
    def _load_meta(self, name: str) -> Generator:
        raw = yield from self.metadata.get(_meta_key(name))
        return json.loads(raw.decode())

    def _store_meta(self, name: str, meta: dict) -> Generator:
        yield from self.metadata.put(_meta_key(name), json.dumps(meta).encode())
        return None

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _on_create(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        name = args["name"]
        yield Compute(OP_COST)
        exists = yield from self.metadata.exists(_meta_key(name))
        if exists:
            raise DatasetError(f"dataset {name!r} already exists")
        blob_id = yield from self.data.create()
        meta = {
            "name": name,
            "blob_id": blob_id,
            "size": 0,
            "attributes": dict(args.get("attributes") or {}),
        }
        yield from self._store_meta(name, meta)
        return meta

    def _on_write(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        name = args["name"]
        offset = int(args.get("offset", 0))
        bulk = args.get("bulk")
        if bulk is not None:
            yield from self.margo.bulk_transfer(ctx.source, bulk.size, op="pull")
            payload = bulk.data
        else:
            payload = args["payload"]
        meta = yield from self._load_meta(name)
        written = yield from self.data.write(meta["blob_id"], payload, offset=offset)
        meta["size"] = max(meta["size"], offset + written)
        yield from self._store_meta(name, meta)
        return written

    def _on_read(self, ctx: RequestContext) -> Generator:
        args = ctx.args
        meta = yield from self._load_meta(args["name"])
        offset = int(args.get("offset", 0))
        size = args.get("size")
        payload = yield from self.data.read(meta["blob_id"], offset=offset, size=size)
        if len(payload) >= 8192:
            yield from self.margo.bulk_transfer(ctx.source, len(payload), op="push")
            return BulkHandle(self.margo.address, len(payload), payload)
        return payload

    def _on_describe(self, ctx: RequestContext) -> Generator:
        meta = yield from self._load_meta(ctx.args["name"])
        return meta

    def _on_list(self, ctx: RequestContext) -> Generator:
        keys = yield from self.metadata.list_keys(prefix=b"dataset/")
        return [k.decode().split("/", 1)[1] for k in keys]

    def _on_drop(self, ctx: RequestContext) -> Generator:
        name = ctx.args["name"]
        meta = yield from self._load_meta(name)
        yield from self.data.erase(meta["blob_id"])
        yield from self.metadata.erase(_meta_key(name))
        return None

    def _on_compute(self, ctx: RequestContext) -> Generator:
        """Run a Poesie script server-side over a dataset's metadata
        (the paper's M+Poesie composition)."""
        if self.interpreter is None:
            raise DatasetError("this dataset provider has no interpreter dependency")
        args = ctx.args
        meta = yield from self._load_meta(args["name"])
        result = yield from self.interpreter.execute(
            args["script"], session=f"dataset:{args['name']}", env={"meta": meta}
        )
        return result

    # ------------------------------------------------------------------
    def get_config(self) -> dict[str, Any]:
        doc = dict(self.config)
        doc["composed_of"] = {
            "metadata": {"address": self.metadata.address,
                         "provider_id": self.metadata.provider_id},
            "data": {"address": self.data.address,
                     "provider_id": self.data.provider_id},
            "interpreter": (
                {"address": self.interpreter.address,
                 "provider_id": self.interpreter.provider_id}
                if self.interpreter is not None
                else None
            ),
        }
        return doc
