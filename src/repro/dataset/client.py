"""Client library of the dataset component."""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..core.component import Client, ResourceHandle
from ..mercury import BulkHandle

__all__ = ["DatasetClient", "DatasetHandle"]

BULK_THRESHOLD = 8192


class DatasetHandle(ResourceHandle):
    """Handle to a remote dataset provider."""

    def create(self, name: str, attributes: Optional[dict] = None) -> Generator:
        meta = yield from self._forward(
            "create", {"name": name, "attributes": attributes or {}}
        )
        return meta

    def write(self, name: str, payload: bytes, offset: int = 0) -> Generator:
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        if len(payload) >= BULK_THRESHOLD:
            args: dict[str, Any] = {
                "name": name,
                "offset": offset,
                "bulk": BulkHandle(self.client.margo.address, len(payload), bytes(payload)),
            }
        else:
            args = {"name": name, "offset": offset, "payload": bytes(payload)}
        written = yield from self._forward("write", args)
        return written

    def read(self, name: str, offset: int = 0, size: Optional[int] = None) -> Generator:
        result = yield from self._forward(
            "read", {"name": name, "offset": offset, "size": size}
        )
        if isinstance(result, BulkHandle):
            return result.data
        return result

    def describe(self, name: str) -> Generator:
        meta = yield from self._forward("describe", {"name": name})
        return meta

    def list(self) -> Generator:
        names = yield from self._forward("list")
        return names

    def drop(self, name: str) -> Generator:
        yield from self._forward("drop", {"name": name})
        return None

    def compute(self, name: str, script: str) -> Generator:
        """Execute a Poesie script server-side with ``meta`` bound to the
        dataset's metadata."""
        result = yield from self._forward("compute", {"name": name, "script": script})
        return result


class DatasetClient(Client):
    """Client library of the dataset component."""

    component_type = "dataset"
    handle_cls = DatasetHandle

    def make_handle(self, address: str, provider_id: int) -> DatasetHandle:
        return DatasetHandle(self, address, provider_id)
