"""The dataset component (paper section 3.2's component "M")."""

from ..bedrock.module import BedrockModule, register_library
from .client import DatasetClient, DatasetHandle
from .provider import DatasetError, DatasetProvider

__all__ = ["DatasetProvider", "DatasetClient", "DatasetHandle", "DatasetError"]


def _dataset_factory(margo, name, provider_id, pool, config, dependencies):
    """Bedrock factory: local Provider dependencies become handles to the
    same process (composition within one process is still RPC-addressed,
    which Margo turns into direct calls -- paper section 3.2)."""
    from ..core.component import Provider
    from ..poesie.provider import PoesieClient
    from ..warabi.client import WarabiClient
    from ..yokan.client import YokanClient

    clients = {
        "yokan": YokanClient,
        "warabi": WarabiClient,
        "poesie": PoesieClient,
    }
    resolved = {}
    for dep_name, dep in (dependencies or {}).items():
        if isinstance(dep, Provider):
            client_cls = clients.get(dep.component_type)
            if client_cls is None:
                raise DatasetError(
                    f"cannot derive a handle for dependency {dep_name!r} "
                    f"of type {dep.component_type!r}"
                )
            dep = client_cls(margo).make_handle(dep.margo.address, dep.provider_id)
        resolved[dep_name] = dep
    return DatasetProvider(
        margo, name, provider_id, pool=pool, config=config, dependencies=resolved
    )


def _dataset_client(margo):
    return DatasetClient(margo)


register_library(
    "libdataset.so",
    BedrockModule(
        type_name="dataset",
        provider_factory=_dataset_factory,
        client_factory=_dataset_client,
        required_dependencies=("metadata", "data"),
    ),
)
